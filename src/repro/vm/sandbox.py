"""Sandboxed execution environments for shipped code.

Each TAX virtual machine is responsible for executing agent code *safely*
(paper section 3.3) using whatever mechanism suits its language — the
paper names sand-boxing, PCC, SFI and code signing.  ``vm_python`` and
``vm_source`` use this module's sandbox: shipped code is executed in a
namespace with

- a **whitelisted builtins** table (no ``open``, ``eval``, ``exec``,
  ``input``, ``__import__`` escape hatches), and
- an **import whitelist** limited to side-effect-free stdlib modules.

``vm_bin`` deliberately bypasses the sandbox for *trusted, signed* code —
the paper's point that "if sufficient trust can be achieved, an agent
should have all the capabilities of a regular process" — which in this
simulation means executing with this process's real builtins.

An optional cooperative **step budget** (`run_limited`) bounds the number
of traced lines a callable may execute; tests use it for runaway-agent
containment.
"""

from __future__ import annotations

import builtins as _builtins
import importlib
import sys
from typing import Any, Callable, Dict, Iterable, Optional, Set

from repro.core.errors import SandboxViolation

#: Modules shipped agent code may import: pure-computation stdlib only.
DEFAULT_ALLOWED_IMPORTS = frozenset({
    "re", "json", "math", "html", "string", "textwrap", "collections",
    "itertools", "functools", "dataclasses", "typing", "heapq", "bisect",
    "copy", "enum", "abc", "statistics", "operator",
})

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "callable", "chr", "classmethod", "complex", "dict", "dir", "divmod",
    "enumerate", "filter", "float", "format", "frozenset", "getattr",
    "hasattr", "hash", "hex", "id", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object", "oct",
    "ord", "pow", "print", "property", "range", "repr", "reversed",
    "round", "set", "setattr", "slice", "sorted", "staticmethod", "str",
    "sum", "super", "tuple", "type", "vars", "zip",
    # Exceptions agent code legitimately raises/catches.
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "GeneratorExit", "IndexError", "KeyError", "KeyboardInterrupt",
    "LookupError", "NotImplementedError", "OverflowError", "RuntimeError",
    "StopIteration", "TypeError", "ValueError", "ZeroDivisionError",
    "NotImplemented",
)


def _denied(name: str) -> Callable:
    def guard(*_args: Any, **_kwargs: Any) -> None:
        raise SandboxViolation(f"builtin {name!r} is not available "
                               "to sandboxed agent code")
    guard.__name__ = f"denied_{name}"
    return guard


class Sandbox:
    """A reusable factory for restricted global namespaces."""

    def __init__(self,
                 allowed_imports: Iterable[str] = DEFAULT_ALLOWED_IMPORTS,
                 extra_globals: Optional[Dict[str, Any]] = None):
        self.allowed_imports: Set[str] = set(allowed_imports)
        self.extra_globals = dict(extra_globals or {})

    # -- namespace construction ---------------------------------------------------

    def _restricted_import(self, name: str, globals=None, locals=None,
                           fromlist=(), level: int = 0):
        if level != 0:
            raise SandboxViolation("relative imports are not allowed "
                                   "in shipped code")
        root = name.split(".", 1)[0]
        if root not in self.allowed_imports:
            raise SandboxViolation(
                f"import of {name!r} denied (whitelist: "
                f"{sorted(self.allowed_imports)})")
        return importlib.import_module(name) if not fromlist else \
            importlib.import_module(name)

    def make_builtins(self) -> Dict[str, Any]:
        table: Dict[str, Any] = {}
        for name in _SAFE_BUILTIN_NAMES:
            table[name] = getattr(_builtins, name)
        # Class definition support.
        table["__build_class__"] = _builtins.__build_class__
        table["__import__"] = self._restricted_import
        for name in ("open", "eval", "exec", "input", "compile",
                     "globals", "locals", "breakpoint", "memoryview",
                     "exit", "quit"):
            table[name] = _denied(name)
        return table

    def make_globals(self, module_name: str = "tax_agent") -> Dict[str, Any]:
        namespace: Dict[str, Any] = {
            "__builtins__": self.make_builtins(),
            "__name__": module_name,
            "__doc__": None,
        }
        namespace.update(self.extra_globals)
        return namespace

    # -- execution ------------------------------------------------------------------

    def exec_code(self, code, module_name: str = "tax_agent"
                  ) -> Dict[str, Any]:
        """Execute a compiled module code object; returns its namespace."""
        namespace = self.make_globals(module_name)
        exec(code, namespace)  # noqa: S102 - the namespace is the sandbox
        return namespace

    def exec_source(self, source: str, filename: str = "<shipped>",
                    module_name: str = "tax_agent") -> Dict[str, Any]:
        try:
            code = compile(source, filename, "exec")
        except SyntaxError as exc:
            raise SandboxViolation(f"shipped source does not compile: {exc}"
                                   ) from exc
        return self.exec_code(code, module_name)


class TrustedSandbox(Sandbox):
    """A non-restricting "sandbox" for code whose signer is trusted.

    Implements the paper's position that *"if sufficient trust can be
    achieved, an agent should have all the capabilities of a regular
    process"*: vm_bin runs verified binaries with the real builtins and
    unrestricted imports.
    """

    def make_builtins(self) -> Dict[str, Any]:
        return {name: getattr(_builtins, name) for name in dir(_builtins)
                if not name.startswith("_")} | {
                    "__build_class__": _builtins.__build_class__,
                    "__import__": _builtins.__import__,
                }


def run_limited(func: Callable, args: tuple = (), kwargs: Optional[dict] = None,
                max_lines: int = 1_000_000) -> Any:
    """Run ``func`` under a traced line budget.

    Raises :class:`SandboxViolation` when the budget is exhausted.  This
    is a cooperative guard (it costs tracing overhead), used where a VM
    wants runaway protection for untrusted synchronous code.
    """
    kwargs = kwargs or {}
    executed = 0

    def tracer(frame, event, arg):
        nonlocal executed
        if event == "line":
            executed += 1
            if executed > max_lines:
                raise SandboxViolation(
                    f"step budget of {max_lines} lines exhausted")
        return tracer

    old = sys.gettrace()
    sys.settrace(tracer)
    try:
        return func(*args, **kwargs)
    finally:
        sys.settrace(old)
