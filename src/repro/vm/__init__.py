"""Virtual machines and code shipping.

- :mod:`repro.vm.loader` — payload kinds and pack/unpack (by-ref,
  by-value marshal, source text, signed binary lists);
- :mod:`repro.vm.sandbox` — restricted execution namespaces;
- :mod:`repro.vm.base` — the VM-as-agent launch protocol;
- :mod:`repro.vm.vm_python` / :mod:`repro.vm.vm_source` /
  :mod:`repro.vm.vm_bin` — the three standard engines.
"""

from repro.vm import loader
from repro.vm.base import VirtualMachine
from repro.vm.sandbox import (
    DEFAULT_ALLOWED_IMPORTS,
    Sandbox,
    TrustedSandbox,
    run_limited,
)
from repro.vm.vm_bin import VmBin
from repro.vm.vm_pickle import VmPickle
from repro.vm.vm_python import VmPython
from repro.vm.vm_source import VmSource

__all__ = [
    "loader",
    "VirtualMachine", "VmBin", "VmPickle", "VmPython", "VmSource",
    "DEFAULT_ALLOWED_IMPORTS", "Sandbox", "TrustedSandbox", "run_limited",
]
