"""vm_bin: executes signed "native binaries" at full speed.

Paper section 3.3: *"the trivial virtual machine vm_bin executes
binaries directly on top of the operating system, provided the binary is
signed by a trusted principal.  In this way, the virtual machine allows
the agent to execute in an efficient way once sufficient trust has been
established."*

Here a "binary" is a ``binary`` payload: per-architecture signed
``py-marshal`` blobs.  vm_bin selects the blob matching the host's
architecture, verifies the signature against the site trust store
(requiring a *trusted*, not merely known, signer), and executes it with
an unrestricted namespace (:class:`~repro.vm.sandbox.TrustedSandbox`) —
all the capabilities of a regular process.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import VMError
from repro.firewall.message import Message
from repro.vm import loader
from repro.vm.base import VirtualMachine
from repro.vm.sandbox import Sandbox, TrustedSandbox


class VmBin(VirtualMachine):
    """Signed-code VM: maximal capability after maximal scrutiny."""

    name = "vm_bin"
    accepts = (loader.KIND_BINARY,)

    def __init__(self, node, sandbox: Optional[Sandbox] = None):
        super().__init__(node, sandbox or TrustedSandbox())

    def prepare_entry(self, message: Message,
                      payload: loader.Payload) -> Callable:
        binary = loader.select_binary(payload, self.node.host.arch)
        signer = loader.verify_binary(binary, self.firewall.trust_store)
        self.firewall.log(
            f"vm_bin verified binary signed by {signer!r} "
            f"for arch {binary.arch}")
        if binary.payload.kind != loader.KIND_MARSHAL:
            raise VMError(
                f"binary blob has kind {binary.payload.kind!r}; "
                "expected py-marshal")
        entry = loader.materialize_marshal(binary.payload, self.sandbox)
        yield self.kernel.timeout(0)
        return entry
