"""vm_python: executes Python agents shipped by reference or by value.

By-reference payloads (``py-ref``) resolve to software already installed
at the site — the moral equivalent of the original system's locally
present service agents.  By-value payloads (``py-marshal``) are
reconstructed inside the sandbox: shipped code sees whitelisted builtins
and imports only (see :mod:`repro.vm.sandbox`).
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import VMError
from repro.firewall.message import Message
from repro.vm import loader
from repro.vm.base import VirtualMachine


class VmPython(VirtualMachine):
    """The workhorse VM for Python agents."""

    name = "vm_python"
    accepts = (loader.KIND_REF, loader.KIND_MARSHAL)

    #: Refuse by-reference launches from unauthenticated remote senders?
    #: py-ref resolves to *installed* code, so the risk is invoking local
    #: software with attacker-chosen config; default matches the paper's
    #: open intra-organisation deployment.
    require_auth_for_ref = False

    def prepare_entry(self, message: Message,
                      payload: loader.Payload) -> Callable:
        if payload.kind == loader.KIND_REF:
            if self.require_auth_for_ref and not message.sender.authenticated:
                raise VMError("py-ref launch requires an authenticated sender")
            entry = loader.materialize_ref(payload)
        else:
            entry = loader.materialize_marshal(payload, self.sandbox)
        if not callable(entry):
            raise VMError(f"payload resolved to non-callable {entry!r}")
        yield self.kernel.timeout(0)
        return entry
