"""vm_source: the Figure-3 compile-at-destination VM (the paper's vm_c).

An agent arrives as *source text* and goes through the activation chain
of paper Figure 3:

1. the briefcase is delivered to vm_source (vm_c);
2. vm_source activates **ag_cc**, which extracts the code;
3. ag_cc activates **ag_exec** with the code and the compiler;
4. ag_exec runs the compiler;
5. the "binary" is returned to ag_cc, which
6. returns it to vm_source;
7. vm_source uses **vm_bin** to activate the now-compiled agent.

The local site signs the compiler's output with its system key before
handing it to vm_bin — compilation happened under local control, which
is the trust vm_bin's signature check encodes.  The original sender's
``go`` ack comes from vm_bin once the agent is actually running.
"""

from __future__ import annotations

from typing import Callable

from repro.core.briefcase import Briefcase
from repro.core.errors import TaxError, VMError
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.message import Message
from repro.vm import loader
from repro.vm.base import (
    LAUNCH_OVERHEAD_SECONDS,
    LAUNCH_PER_BYTE_SECONDS,
    VirtualMachine,
)


class VmSource(VirtualMachine):
    """Source-carrying agents, compiled on the landing pad."""

    name = "vm_source"
    accepts = (loader.KIND_SOURCE,)

    def handle_launch_message(self, message: Message):
        try:
            if not self.firewall.policy.can_launch(message.sender, self.name):
                raise VMError(
                    f"policy denies launch by {message.sender.principal!r}")
            payload = loader.read_payload(message.briefcase)
            if payload.kind not in self.accepts:
                raise VMError(
                    f"{self.name} executes source agents only, "
                    f"got {payload.kind!r}")
            yield from self.node.host.compute(
                LAUNCH_OVERHEAD_SECONDS +
                payload.size * LAUNCH_PER_BYTE_SECONDS)

            # Steps 2-6: ag_cc -> ag_exec -> compiled payload.
            request = Briefcase()
            loader.install_payload(request, payload)
            response = yield from self.ctx.call_service(
                "ag_cc", "compile", request)
            compiled = loader.read_payload(response)

            # Local signature: the site vouches for its own compiler output.
            signed = loader.pack_binary_list(
                [(self.node.host.arch, compiled)],
                self.node.keychain, SYSTEM_PRINCIPAL)
        except TaxError as exc:
            self.launch_failures += 1
            yield from self._nack(message, str(exc))
            return

        # Step 7: hand the rewritten briefcase to vm_bin, which launches
        # the agent and acks the original sender (REPLY-TO is preserved).
        # The original source payload is stashed so the launched agent
        # keeps carrying source on its next hop (Figure 3 repeats at
        # every landing pad).
        transport = message.briefcase.snapshot()
        transport.folder(wellknown.CODE_ORIG).replace([payload.blob])
        transport.put(wellknown.CODE_KIND_ORIG, payload.kind)
        loader.install_payload(transport, signed)
        self.launched += 1
        ok = yield from self.ctx.send(
            AgentUri.for_agent("vm_bin"), transport)
        if not ok:
            yield from self._nack(message, "vm_bin unavailable")

    def prepare_entry(self, message: Message,
                      payload: loader.Payload) -> Callable:
        raise VMError("vm_source delegates launching to vm_bin")
        yield  # pragma: no cover
