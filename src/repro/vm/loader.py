"""Code shipping: packing executable payloads into briefcases.

The paper's briefcases carry *"the transportable state of a mobile agent
(code, arguments, results)"*.  This module defines the payload kinds the
Python VMs understand and the pack/unpack machinery:

``py-ref``
    A module-path reference (``package.module:qualname``).  The code is
    *not* shipped — the destination must already have it installed.  Used
    for system/service agents and for wrappers that are part of the TAX
    distribution itself.

``py-marshal``
    A function or module shipped **by value**: the marshalled CPython
    code object plus a JSON dict of constant globals.  This is the
    "compiled binary" of the Python world — opaque bytes that only a
    matching VM can execute — and the output format of the ag_cc
    compilation chain.

``py-source``
    Source text plus an entry-point name.  The Figure-3 flow: a
    ``vm_source`` agent arrives as source and is compiled on the landing
    pad via ag_cc/ag_exec before execution.

``binary``
    A list of per-architecture, per-principal **signed** ``py-marshal``
    blobs — what ``vm_bin`` and ``ag_exec`` consume: *"an agent may
    submit a list of binaries matching different architectures"*; the one
    matching the local machine is verified and executed.

Payload bytes are what travels in the CODE folder; their length is what
the network model charges, so shipping a 40 KB module really costs 40 KB
on the wire.
"""

from __future__ import annotations

import base64
import importlib
import inspect
import io
import json
import marshal
import pickle
import textwrap
import types
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.briefcase import Briefcase
from repro.core.errors import UnsupportedPayloadError, VMError
from repro.core import wellknown
from repro.firewall.auth import KeyChain, Signature, TrustStore
from repro.vm.sandbox import Sandbox

KIND_REF = "py-ref"
KIND_MARSHAL = "py-marshal"
KIND_SOURCE = "py-source"
KIND_BINARY = "binary"
KIND_PICKLE = "py-pickle"

ALL_KINDS = (KIND_REF, KIND_MARSHAL, KIND_SOURCE, KIND_BINARY, KIND_PICKLE)

STYLE_FUNCTION = "func"
STYLE_MODULE = "module"


@dataclass(frozen=True)
class Payload:
    """A packed executable: its kind tag and opaque bytes."""

    kind: str
    blob: bytes

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise UnsupportedPayloadError(f"unknown payload kind {self.kind!r}")

    @property
    def size(self) -> int:
        return len(self.blob)


# -- packing -------------------------------------------------------------------------


def pack_ref(obj_or_path) -> Payload:
    """Pack a by-reference payload from a callable or ``module:qualname``."""
    if isinstance(obj_or_path, str):
        path = obj_or_path
        if ":" not in path:
            raise VMError(f"py-ref path needs 'module:qualname', got {path!r}")
    else:
        module = getattr(obj_or_path, "__module__", None)
        qualname = getattr(obj_or_path, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise VMError(
                f"{obj_or_path!r} is not addressable by module path")
        path = f"{module}:{qualname}"
    blob = json.dumps({"path": path}).encode("utf-8")
    return Payload(KIND_REF, blob)


def pack_function(func: Callable,
                  shipped_globals: Optional[Dict[str, Any]] = None) -> Payload:
    """Ship a plain function by value (marshalled code object).

    The function must be closure-free; any module-level names it uses
    must be passed as JSON-constant ``shipped_globals``.
    """
    if not isinstance(func, types.FunctionType):
        raise VMError(f"can only ship plain functions, got {func!r}")
    if func.__closure__:
        raise VMError(f"{func.__name__} has a closure and cannot be shipped "
                      "by value; lift captured values into shipped_globals")
    payload = {
        "style": STYLE_FUNCTION,
        "entry": func.__name__,
        "code_b64": base64.b64encode(
            marshal.dumps(func.__code__)).decode("ascii"),
        "globals": shipped_globals or {},
    }
    return Payload(KIND_MARSHAL, json.dumps(payload).encode("utf-8"))


def pack_module_code(code: types.CodeType, entry: str) -> Payload:
    """Ship a compiled module: executed at the destination, then ``entry``
    is looked up in the resulting namespace.  (ag_cc's output format.)"""
    payload = {
        "style": STYLE_MODULE,
        "entry": entry,
        "code_b64": base64.b64encode(marshal.dumps(code)).decode("ascii"),
        "globals": {},
    }
    return Payload(KIND_MARSHAL, json.dumps(payload).encode("utf-8"))


def pack_source(source: str, entry: str,
                origin: str = "<shipped>") -> Payload:
    """Ship raw source text with a named entry point."""
    payload = {"source": source, "entry": entry, "origin": origin}
    return Payload(KIND_SOURCE, json.dumps(payload).encode("utf-8"))


def pack_module_source(module, entry: str) -> Payload:
    """Ship an imported module's *source text* by value.

    This is how the mobility wrapper carries the Webbot: the module's
    real source is read, travels in the briefcase, and is compiled and
    executed at the destination.
    """
    source = inspect.getsource(module)
    return pack_source(source, entry, origin=module.__name__)


def pack_function_source(func: Callable) -> Payload:
    """Ship a single function's source text (dedented) by value."""
    source = textwrap.dedent(inspect.getsource(func))
    return pack_source(source, func.__name__,
                       origin=f"{func.__module__}:{func.__qualname__}")


#: Module prefixes a restricted unpickle may resolve classes from, by
#: default: the TAX distribution itself plus a few stdlib value types.
DEFAULT_PICKLE_ALLOWED = (
    "repro.", "builtins", "collections", "datetime", "decimal",
)


def pack_pickle(obj: Any) -> Payload:
    """Ship an *object agent* by pickling it.

    Pickle ships the instance state by value and the class by reference
    (module + qualname), so the destination must have the class
    installed — the classic stateful-agent model.  The destination VM
    unpickles through :class:`RestrictedUnpickler`, which refuses any
    class outside its module whitelist.
    """
    try:
        blob = pickle.dumps(obj, protocol=4)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise VMError(f"object cannot be pickled: {exc}") from exc
    return Payload(KIND_PICKLE, blob)


class RestrictedUnpickler(pickle.Unpickler):
    """An unpickler that only resolves whitelisted classes.

    This is the safety mechanism of ``vm_pickle``: hostile pickles
    naming ``os.system``, ``subprocess.*`` and the like are rejected at
    resolution time, before any object is constructed.
    """

    def __init__(self, data: bytes,
                 allowed_prefixes: Iterable[str] = DEFAULT_PICKLE_ALLOWED):
        super().__init__(io.BytesIO(data))
        self.allowed_prefixes = tuple(allowed_prefixes)

    def find_class(self, module: str, name: str):
        allowed = any(
            module == prefix.rstrip(".") or module.startswith(prefix)
            for prefix in self.allowed_prefixes)
        if not allowed:
            raise UnsupportedPayloadError(
                f"pickle references {module}.{name}, which is outside "
                f"the allowed modules {list(self.allowed_prefixes)}")
        return super().find_class(module, name)


def materialize_pickle(payload: Payload,
                       allowed_prefixes: Iterable[str] =
                       DEFAULT_PICKLE_ALLOWED) -> Any:
    """Reconstruct a pickled object agent under the class whitelist."""
    if payload.kind != KIND_PICKLE:
        raise UnsupportedPayloadError(
            f"expected {KIND_PICKLE}, got {payload.kind}")
    try:
        return RestrictedUnpickler(payload.blob, allowed_prefixes).load()
    except UnsupportedPayloadError:
        raise
    except Exception as exc:  # noqa: BLE001 - hostile pickle formats
        raise UnsupportedPayloadError(
            f"corrupt pickle payload: {exc}") from exc


def pack_binary_list(entries: Iterable[Tuple[str, Payload]],
                     keychain: KeyChain, principal: str) -> Payload:
    """Sign per-architecture payloads into a ``binary`` list."""
    binaries: List[Dict[str, str]] = []
    for arch, payload in entries:
        signature = keychain.sign(principal, payload.blob)
        binaries.append({
            "arch": arch,
            "kind": payload.kind,
            "blob_b64": base64.b64encode(payload.blob).decode("ascii"),
            "signature": signature.to_text(),
        })
    if not binaries:
        raise VMError("binary list needs at least one entry")
    return Payload(KIND_BINARY,
                   json.dumps({"binaries": binaries}).encode("utf-8"))


# -- briefcase integration ---------------------------------------------------------------


def install_payload(briefcase: Briefcase, payload: Payload,
                    agent_name: Optional[str] = None) -> None:
    """Write a payload into the CODE/CODE-KIND system folders."""
    briefcase.put(wellknown.CODE_KIND, payload.kind)
    briefcase.folder(wellknown.CODE).replace([payload.blob])
    if agent_name is not None:
        briefcase.put(wellknown.AGENT_NAME, agent_name)


def read_payload(briefcase: Briefcase) -> Payload:
    """Extract the payload carried by a briefcase."""
    kind = briefcase.get_text(wellknown.CODE_KIND)
    code = briefcase.get_first(wellknown.CODE)
    if kind is None or code is None:
        raise UnsupportedPayloadError(
            "briefcase carries no CODE/CODE-KIND payload")
    return Payload(kind, code.data)


# -- unpacking ------------------------------------------------------------------------------


def _parse_json(blob: bytes, kind: str) -> dict:
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise UnsupportedPayloadError(
            f"malformed {kind} payload") from exc


def materialize_ref(payload: Payload) -> Callable:
    """Resolve a by-reference payload to the installed object."""
    if payload.kind != KIND_REF:
        raise UnsupportedPayloadError(f"expected {KIND_REF}, got {payload.kind}")
    data = _parse_json(payload.blob, KIND_REF)
    module_name, _, qualname = data.get("path", "").partition(":")
    if not module_name or not qualname:
        raise UnsupportedPayloadError("py-ref payload missing path")
    try:
        obj = importlib.import_module(module_name)
    except ImportError as exc:
        raise UnsupportedPayloadError(
            f"referenced module {module_name!r} is not installed") from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise UnsupportedPayloadError(
                f"{qualname!r} not found in {module_name!r}") from exc
    return obj


def materialize_marshal(payload: Payload,
                        sandbox: Optional[Sandbox] = None) -> Callable:
    """Reconstruct a by-value function inside a sandboxed namespace."""
    if payload.kind != KIND_MARSHAL:
        raise UnsupportedPayloadError(
            f"expected {KIND_MARSHAL}, got {payload.kind}")
    data = _parse_json(payload.blob, KIND_MARSHAL)
    try:
        code = marshal.loads(base64.b64decode(data["code_b64"]))
    except (KeyError, ValueError, EOFError, TypeError) as exc:
        raise UnsupportedPayloadError("corrupt marshalled code") from exc
    sandbox = sandbox or Sandbox()
    namespace = sandbox.make_globals()
    namespace.update(data.get("globals", {}))
    style = data.get("style", STYLE_FUNCTION)
    entry = data.get("entry")
    if style == STYLE_FUNCTION:
        func = types.FunctionType(code, namespace, entry or "agent_main")
        return func
    if style == STYLE_MODULE:
        exec(code, namespace)  # noqa: S102 - sandboxed namespace
        try:
            return namespace[entry]
        except KeyError as exc:
            raise UnsupportedPayloadError(
                f"entry {entry!r} not defined by shipped module") from exc
    raise UnsupportedPayloadError(f"unknown marshal style {style!r}")


def parse_source(payload: Payload) -> "tuple[str, str, str]":
    """(source, entry, origin) of a py-source payload."""
    if payload.kind != KIND_SOURCE:
        raise UnsupportedPayloadError(
            f"expected {KIND_SOURCE}, got {payload.kind}")
    data = _parse_json(payload.blob, KIND_SOURCE)
    if "source" not in data or "entry" not in data:
        raise UnsupportedPayloadError("py-source payload missing fields")
    return data["source"], data["entry"], data.get("origin", "<shipped>")


def compile_source(payload: Payload) -> Payload:
    """The "compiler": py-source → py-marshal (module style).

    This is the function ag_exec runs on ag_cc's behalf in the Figure-3
    chain; the output is the opaque "binary" handed on to vm_bin.
    """
    source, entry, origin = parse_source(payload)
    try:
        code = compile(source, f"<compiled {origin}>", "exec")
    except SyntaxError as exc:
        raise VMError(f"compilation failed: {exc}") from exc
    return pack_module_code(code, entry)


def materialize_source(payload: Payload,
                       sandbox: Optional[Sandbox] = None) -> Callable:
    """One-step compile-and-load of a py-source payload."""
    return materialize_marshal(compile_source(payload), sandbox)


@dataclass(frozen=True)
class SignedBinary:
    """One architecture's entry from a ``binary`` payload."""

    arch: str
    payload: Payload
    signature: Signature


def list_binaries(payload: Payload) -> List[SignedBinary]:
    if payload.kind != KIND_BINARY:
        raise UnsupportedPayloadError(
            f"expected {KIND_BINARY}, got {payload.kind}")
    data = _parse_json(payload.blob, KIND_BINARY)
    entries = []
    for item in data.get("binaries", ()):
        try:
            entries.append(SignedBinary(
                arch=item["arch"],
                payload=Payload(item["kind"],
                                base64.b64decode(item["blob_b64"])),
                signature=Signature.from_text(item["signature"])))
        except (KeyError, ValueError) as exc:
            raise UnsupportedPayloadError("corrupt binary list entry") from exc
    if not entries:
        raise UnsupportedPayloadError("empty binary list")
    return entries


def select_binary(payload: Payload, arch: str) -> SignedBinary:
    """The entry matching the local architecture (ag_exec's selection)."""
    entries = list_binaries(payload)
    for entry in entries:
        if entry.arch == arch:
            return entry
    raise UnsupportedPayloadError(
        f"no binary for architecture {arch!r} "
        f"(offered: {[e.arch for e in entries]})")


def verify_binary(binary: SignedBinary, trust_store: TrustStore) -> str:
    """Verify the signature and trust requirement; returns the signer."""
    return trust_store.verify_trusted(binary.signature, binary.payload.blob)
