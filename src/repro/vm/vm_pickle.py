"""vm_pickle: executes pickled object agents.

The Python-native agent style: the agent is a class instance whose
attributes carry the state; migration re-pickles the instance (see
:mod:`repro.agent.objagent`).  Safety comes from
:class:`~repro.vm.loader.RestrictedUnpickler` — the pickle may only
resolve classes from whitelisted module prefixes, so a briefcase cannot
smuggle in ``os.system`` or friends.  The class itself is by-reference
software that must already be installed at the landing pad.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.errors import VMError
from repro.firewall.message import Message
from repro.vm import loader
from repro.vm.base import VirtualMachine


class VmPickle(VirtualMachine):
    """Object-agent VM with restricted unpickling."""

    name = "vm_pickle"
    accepts = (loader.KIND_PICKLE,)

    def __init__(self, node,
                 allowed_prefixes: Iterable[str] =
                 loader.DEFAULT_PICKLE_ALLOWED):
        super().__init__(node)
        self.allowed_prefixes = tuple(allowed_prefixes)

    def prepare_entry(self, message: Message,
                      payload: loader.Payload) -> Callable:
        agent = loader.materialize_pickle(payload, self.allowed_prefixes)
        run = getattr(agent, "run", None)
        if not callable(run):
            raise VMError(
                f"pickled object {type(agent).__name__!r} has no "
                "callable run(ctx, briefcase) method")
        yield self.kernel.timeout(0)
        return run
