"""Virtual machine base: the landing pad's execution engines.

Paper section 3.3: VMs are the component that makes TAX language
independent.  Each VM is responsible for executing agent code *safely*
by whatever mechanism suits its payload kind; the firewall simply trusts
it to do so.  VMs must (a) speak briefcases, and (b) respond to firewall
commands — both fall out of the fact that **a VM is itself a registered
agent**: agents migrate by ``meet``-ing the destination VM with their
transport briefcase (which is why the paper's example address
``tacoma://cl2.cs.uit.no:27017//vm_c:933821661`` names a VM).

The launch protocol implemented here:

1. a transport briefcase (CODE, CODE-KIND, WRAPPERS, AGENT-NAME, user
   folders) arrives addressed to the VM;
2. the VM charges launch CPU, materialises the entry point
   (subclass-specific: sandbox, signature check, or compile chain);
3. it rebuilds the wrapper stack, registers the agent with the firewall
   (which flushes any messages queued ahead of the agent's arrival), and
   spawns the agent process;
4. it acks the ``go``/``spawn`` with STATUS=ok and the new agent's URI,
   or STATUS=error and a reason.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Tuple

from repro.core.briefcase import Briefcase
from repro.core.errors import TaxError, VMError
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core.retry import RetryPolicy
from repro.core import wellknown
from repro.agent.context import AgentContext
from repro.agent.mailbox import Mailbox
from repro.firewall.message import Message
from repro.obs.propagation import link_args, span_args
from repro.sim.errors import Interrupt, StopProcess
from repro.vm import loader
from repro.vm.sandbox import Sandbox
from repro.wrappers.stack import WrapperStack, build_stack, read_wrapper_specs

#: Launch cost model: fixed overhead + per-payload-byte deserialisation.
LAUNCH_OVERHEAD_SECONDS = 0.002
LAUNCH_PER_BYTE_SECONDS = 2e-8

#: How often a launch handler re-checks a landing id another delivery of
#: the same transport is currently resolving.
LANDING_POLL_SECONDS = 0.005


class VirtualMachine:
    """Common machinery; subclasses define ``accepts`` and entry prep."""

    #: Agent name the VM registers under (e.g. "vm_python").
    name = "vm_base"
    #: Payload kinds this VM can launch.
    accepts: Tuple[str, ...] = ()

    def __init__(self, node, sandbox: Optional[Sandbox] = None):
        self.node = node
        self.sandbox = sandbox or Sandbox()
        self.ctx: Optional[AgentContext] = None
        self.launched = 0
        self.launch_failures = 0

    # -- wiring --------------------------------------------------------------------

    @property
    def kernel(self):
        return self.node.kernel

    @property
    def firewall(self):
        return self.node.firewall

    def boot(self) -> None:
        """Register the VM as a system agent and start its accept loop."""
        mailbox = Mailbox(self.kernel)
        self.ctx = AgentContext(self.node, vm_name=self.name,
                                briefcase=Briefcase(),
                                principal=SYSTEM_PRINCIPAL)
        registration = self.firewall.register_agent(
            name=self.name, principal=SYSTEM_PRINCIPAL, vm_name=self.name,
            deliver_fn=mailbox.deliver)
        self.ctx.attach(registration, mailbox)
        process = self.kernel.spawn(self._accept_loop(),
                                    name=f"{self.name}@{self.node.host.name}")
        registration.process = process

    def _accept_loop(self):
        # The exclusion predicate keeps the loop from stealing replies to
        # meets issued by concurrently running launch handlers.
        while True:
            message = yield from self.ctx.recv(
                match=lambda m: not self.ctx.is_pending_reply(m))
            self.kernel.spawn(
                self.handle_launch_message(message),
                name=f"{self.name}-launch@{self.node.host.name}")

    # -- the launch path -------------------------------------------------------------

    def handle_launch_message(self, message: Message):
        """Process one arriving agent briefcase (overridable)."""
        telemetry = self.kernel.telemetry
        host_name = self.node.host.name
        span = telemetry.tracer.begin(
            "vm.launch", category="vm", track=f"vm:{host_name}",
            vm=self.name, sender=message.sender.principal,
            **link_args(message.trace))
        landing = message.landing_id
        if landing is not None:
            state, info = self.firewall.landings.acquire(landing)
            while state == "pending":
                # Another delivery of the same transport is mid-launch;
                # wait for it to resolve rather than racing it.
                yield self.kernel.timeout(LANDING_POLL_SECONDS)
                state, info = self.firewall.landings.acquire(landing)
            if state == "launched":
                # Duplicate transport of an already-landed agent: re-ack
                # with the existing instance instead of hatching a twin.
                span.end(outcome="duplicate", agent=info)
                if telemetry.enabled:
                    telemetry.metrics.inc("vm.duplicate_landings",
                                          host=host_name, vm=self.name)
                yield from self._ack(message, info)
                return
            if state == "tombstoned":
                span.end(outcome="tombstoned", error=info)
                yield from self._nack(
                    message, f"landing refused ({info}): the origin "
                    "aborted this migration or the host crashed after "
                    "it landed")
                return
            # state == "new": this launch holds the pending slot and
            # must resolve it below (record_launch / release).
        try:
            if not self.firewall.policy.can_launch(message.sender, self.name):
                raise VMError(
                    f"policy denies launch by {message.sender.principal!r}")
            payload = loader.read_payload(message.briefcase)
            if payload.kind not in self.accepts:
                raise VMError(
                    f"{self.name} cannot execute {payload.kind!r} payloads "
                    f"(accepts {list(self.accepts)})")
            yield from self.node.host.compute(
                LAUNCH_OVERHEAD_SECONDS +
                payload.size * LAUNCH_PER_BYTE_SECONDS)
            entry = yield from self.prepare_entry(message, payload)
            # Inside the try: register_agent may raise the transient
            # QuotaExceededError (resident-agent quota), which must nack
            # the go/spawn so the sender can back off, not kill this
            # launch process.
            uri = self.launch_agent(message, entry)
        except TaxError as exc:
            self.launch_failures += 1
            if landing is not None:
                # Nothing launched: free the slot so a retry (or a
                # duplicate still in flight) may try again.
                self.firewall.landings.release(landing)
            if telemetry.enabled:
                telemetry.metrics.inc("vm.launch_failures",
                                      host=host_name, vm=self.name)
            span.end(outcome="error", error=str(exc))
            yield from self._nack(message, str(exc))
            return
        if landing is not None:
            self.firewall.landings.record_launch(landing, uri)
        span.end(outcome="ok", agent=uri)
        if telemetry.enabled and span.duration is not None:
            telemetry.metrics.observe(
                "vm.launch_seconds", span.duration,
                host=host_name, vm=self.name)
        yield from self._ack(message, uri)

    def prepare_entry(self, message: Message,
                      payload: loader.Payload) -> Callable:
        """Materialise the agent's entry callable (generator method)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator template

    def launch_agent(self, message: Message, entry: Callable) -> str:
        """Register and start the agent; returns its URI string."""
        briefcase = message.briefcase.snapshot()
        for folder in (wellknown.MEET_TOKEN, wellknown.REPLY_TO,
                       wellknown.OP):
            briefcase.drop(folder)
        if briefcase.has(wellknown.CODE_ORIG):
            # Compile-at-destination launch: the agent keeps carrying its
            # original (source) payload, not the site-local binary.
            briefcase.folder(wellknown.CODE).replace(
                [e.data for e in briefcase.get(wellknown.CODE_ORIG)])
            briefcase.put(wellknown.CODE_KIND,
                          briefcase.get_text(wellknown.CODE_KIND_ORIG))
            briefcase.drop(wellknown.CODE_ORIG)
            briefcase.drop(wellknown.CODE_KIND_ORIG)
        name = briefcase.get_text(wellknown.AGENT_NAME) or \
            getattr(entry, "__name__", "agent")
        principal = message.sender.principal
        wrappers = build_stack(read_wrapper_specs(briefcase),
                               sandbox=self.sandbox)
        ctx = AgentContext(self.node, vm_name=self.name,
                           briefcase=briefcase, principal=principal,
                           wrappers=wrappers)
        mailbox = Mailbox(self.kernel)

        def deliver(inbound: Message) -> bool:
            filtered = wrappers.apply_receive(ctx, inbound)
            if filtered is None:
                return True  # consumed by a wrapper layer
            return mailbox.deliver(filtered)

        registration = self.firewall.register_agent(
            name=name, principal=principal, vm_name=self.name,
            deliver_fn=deliver)
        ctx.attach(registration, mailbox)
        # Durable hosts journal the cleaned arrival blob: this exact
        # briefcase (itinerary position included) is what replay
        # relaunches if the host crashes while the agent is resident.
        self.firewall.journal_arrival(registration, briefcase,
                                      landing=message.landing_id,
                                      vm_name=self.name)
        retry_config = briefcase.get_json(wellknown.RETRY)
        if retry_config is not None:
            # The policy travels with the agent; the jitter stream is
            # re-derived per instance, so retry schedules stay
            # deterministic across hops without shipping RNG state.
            from repro.sim.rng import RandomStream
            ctx.configure_retry(
                RetryPolicy.from_config(retry_config),
                RandomStream(int(retry_config.get("seed", 0)),
                             name=f"retry/{registration.instance}"))
        process = self.kernel.spawn(
            self._run_agent(ctx, entry),
            name=f"{name}:{registration.instance}@{self.node.host.name}")
        registration.process = process
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("vm.activations",
                                  host=self.node.host.name, vm=self.name)
            # A new residency: descend from the transport message's
            # causal node (hop count advances across the host boundary),
            # or root a fresh itinerary for untraced launches.
            ctx.trace = telemetry.child_context(message.trace,
                                                advance_hop=True)
        ctx.run_span = telemetry.tracer.begin(
            f"run:{name}", category="agent",
            track=f"host:{self.node.host.name}",
            agent=name, instance=registration.instance,
            vm=self.name, principal=principal, **span_args(ctx.trace))
        wrappers.on_attach(ctx)
        wrappers.on_arrive(ctx)
        self.launched += 1
        return str(self.firewall.uri_for(registration))

    def _run_agent(self, ctx: AgentContext, entry: Callable):
        outcome = "done"
        try:
            result = entry(ctx, ctx.briefcase)
            if inspect.isgenerator(result):
                result = yield from result
            return result
        except StopProcess:
            # The agent moved away with go(); cleanup already happened.
            outcome = "moved"
            return "moved"
        except Interrupt as interrupt:
            ctx.log(f"interrupted: {interrupt.cause}")
            outcome = "killed"
            return "killed"
        except TaxError as exc:
            ctx.log(f"agent failed: {exc}")
            outcome = "failed"
            raise
        finally:
            ctx.finished = True
            if ctx.run_span is not None:
                ctx.run_span.end(outcome=outcome)
            if not ctx.moved:
                ctx.wrappers.on_detach(ctx)
                self.firewall.unregister_agent(ctx.registration.agent_id)
                if ctx.mailbox is not None:
                    ctx.mailbox.close()

    # -- acks ----------------------------------------------------------------------------

    def _ack(self, message: Message, agent_uri: str):
        if message.briefcase.get_text(wellknown.REPLY_TO) is None:
            return
        response = Briefcase()
        response.put(wellknown.STATUS, "ok")
        response.put("AGENT-URI", agent_uri)
        yield from self.ctx.reply(message, response)

    def _nack(self, message: Message, error: str):
        self.firewall.log(f"{self.name} launch failed: {error}")
        if message.briefcase.get_text(wellknown.REPLY_TO) is None:
            return
        response = Briefcase()
        response.put(wellknown.STATUS, "error")
        response.put(wellknown.ERROR, error)
        yield from self.ctx.reply(message, response)
