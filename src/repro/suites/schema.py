"""The declarative suite schema: YAML/JSON in, expanded cells out.

A suite file names scenario plugins and parameter matrices; loading it
produces a :class:`SuiteSpec` whose cells are fully expanded, validated
against each plugin's parameter domain, and stamped with a canonical
**cell id** — the identity the deterministic per-cell seed derives from.

Schema (top level)::

    suite: smoke                    # required name
    description: ...                # optional
    seed: 7                         # default suite seed (CLI overrides)
    early_stop: never|first-failure # default never
    cells:                          # required, non-empty
      - plugin: chaos               # required per entry
        params: {plan: mid-crash}   # fixed parameters
        matrix:                     # cross-product axes (optional)
          plan: [none, mid-crash]
          seed: [7, 11]             # 'seed' is a reserved axis
        checks: [...]               # REPLACE the plugin defaults
        expect: [...]               # ADD to the effective checks

Matrix expansion is deterministic: axes are taken in sorted-name order
and values in their listed order, so the cell sequence of a suite file
is a pure function of its contents.  The reserved ``seed`` parameter
pins a cell's seed explicitly; otherwise the runner derives it from the
suite seed and the cell id (see :func:`repro.sim.rng.derive_seed`), so
an identical cell gets an identical seed **regardless of matrix
position** — the property that makes standalone re-runs of one cell
byte-identical to its in-matrix document.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.suites.registry import SuiteError, get_plugin

EARLY_STOP_POLICIES = ("never", "first-failure")

#: Characters a string parameter value may use (cell ids embed values).
_SAFE_VALUE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789._:/+-")

_TOP_LEVEL_KEYS = frozenset(
    {"suite", "description", "seed", "early_stop", "cells"})
_ENTRY_KEYS = frozenset({"plugin", "params", "matrix", "checks", "expect"})


class SuiteConfigError(SuiteError):
    """A suite file failed validation; the message carries the path."""


@dataclass(frozen=True)
class CellSpec:
    """One fully expanded, validated matrix cell."""

    plugin: str
    params: Tuple[Tuple[str, object], ...]  # canonical sorted items
    checks: Tuple[str, ...]
    explicit_seed: Optional[int] = None

    @property
    def cell_id(self) -> str:
        """The canonical identity: plugin plus sorted ``k=v`` params
        (and the explicit seed when one was pinned)."""
        parts = [f"{key}={_canon_value(value)}"
                 for key, value in self.params]
        if self.explicit_seed is not None:
            parts.append(f"seed={self.explicit_seed}")
        return f"{self.plugin}[{','.join(parts)}]"

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class SuiteSpec:
    """A loaded, validated suite: name, seed, policy, expanded cells."""

    name: str
    description: str
    seed: int
    early_stop: str
    cells: Tuple[CellSpec, ...]
    source: str = "<memory>"


def _canon_value(value: object) -> str:
    """Cell-id rendering of a scalar (JSON-ish, lowercase booleans)."""
    if isinstance(value, str):
        return value
    return json.dumps(value)


def _fail(source: str, where: str, message: str) -> "SuiteConfigError":
    return SuiteConfigError(f"{source}: {where}: {message}")


def _validate_scalar(source: str, where: str, value: object) -> object:
    if isinstance(value, bool) or isinstance(value, int) \
            or isinstance(value, float):
        return value
    if isinstance(value, str):
        if not value or not set(value) <= _SAFE_VALUE:
            raise _fail(source, where,
                        f"string value {value!r} may only use "
                        f"[A-Za-z0-9._:/+-] (cell ids embed it)")
        return value
    raise _fail(source, where,
                f"parameter values must be scalars, got "
                f"{type(value).__name__}")


def _parse_entry(source: str, index: int, entry: object
                 ) -> List[CellSpec]:
    where = f"cells[{index}]"
    if not isinstance(entry, dict):
        raise _fail(source, where, "each cell entry must be a mapping")
    unknown = set(entry) - _ENTRY_KEYS
    if unknown:
        raise _fail(source, where,
                    f"unknown key(s) {sorted(unknown)} "
                    f"(have {sorted(_ENTRY_KEYS)})")
    plugin_name = entry.get("plugin")
    if not isinstance(plugin_name, str) or not plugin_name:
        raise _fail(source, where, "'plugin' (a string) is required")
    plugin = get_plugin(plugin_name)  # raises UnknownPluginError

    fixed = entry.get("params") or {}
    if not isinstance(fixed, dict):
        raise _fail(source, where, "'params' must be a mapping")
    matrix = entry.get("matrix") or {}
    if not isinstance(matrix, dict):
        raise _fail(source, where, "'matrix' must be a mapping of "
                                   "parameter -> list of values")
    overlap = set(fixed) & set(matrix)
    if overlap:
        raise _fail(source, where,
                    f"parameter(s) {sorted(overlap)} appear in both "
                    f"'params' and 'matrix'")

    from repro.suites.runner import parse_check  # cycle-free at runtime
    checks_override = entry.get("checks")
    if checks_override is not None:
        if not isinstance(checks_override, list):
            raise _fail(source, where, "'checks' must be a list")
        checks: Tuple[str, ...] = tuple(checks_override)
    else:
        checks = tuple(plugin.checks)
    extra = entry.get("expect") or []
    if not isinstance(extra, list):
        raise _fail(source, where, "'expect' must be a list")
    checks = checks + tuple(extra)
    for check in checks:
        if not isinstance(check, str):
            raise _fail(source, where,
                        f"checks must be strings, got {check!r}")
        try:
            parse_check(check)
        except SuiteError as exc:
            raise _fail(source, where, str(exc))

    axes: List[Tuple[str, List[object]]] = []
    for name in sorted(matrix):
        values = matrix[name]
        if not isinstance(values, list) or not values:
            raise _fail(source, where,
                        f"matrix axis {name!r} must be a non-empty list")
        axes.append((name, [
            _validate_scalar(source, f"{where}.matrix.{name}", v)
            for v in values]))
    for name, value in fixed.items():
        _validate_scalar(source, f"{where}.params.{name}", value)

    cells: List[CellSpec] = []
    for combo in itertools.product(*(values for _, values in axes)) \
            if axes else [()]:
        params = dict(fixed)
        params.update({name: value for (name, _), value
                       in zip(axes, combo)})
        explicit_seed = params.pop("seed", None)
        if explicit_seed is not None and (
                isinstance(explicit_seed, bool)
                or not isinstance(explicit_seed, int)):
            raise _fail(source, where,
                        f"'seed' must be an int, got {explicit_seed!r}")
        try:
            validated = plugin.validate_params(params)
        except SuiteError as exc:
            raise _fail(source, where, str(exc))
        cells.append(CellSpec(
            plugin=plugin.name,
            params=tuple(sorted(validated.items())),
            checks=checks,
            explicit_seed=explicit_seed))
    return cells


def parse_suite(data: object, source: str = "<memory>") -> SuiteSpec:
    """Validate a decoded suite document into a :class:`SuiteSpec`."""
    if not isinstance(data, dict):
        raise _fail(source, "top level", "the suite must be a mapping")
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        raise _fail(source, "top level",
                    f"unknown key(s) {sorted(unknown)} "
                    f"(have {sorted(_TOP_LEVEL_KEYS)})")
    name = data.get("suite")
    if not isinstance(name, str) or not name:
        raise _fail(source, "top level", "'suite' (a string) is required")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise _fail(source, "top level", "'description' must be a string")
    seed = data.get("seed", 7)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise _fail(source, "top level", f"'seed' must be an int, "
                                         f"got {seed!r}")
    early_stop = data.get("early_stop", "never")
    if early_stop not in EARLY_STOP_POLICIES:
        raise _fail(source, "top level",
                    f"'early_stop' must be one of "
                    f"{list(EARLY_STOP_POLICIES)}, got {early_stop!r}")
    entries = data.get("cells")
    if not isinstance(entries, list) or not entries:
        raise _fail(source, "top level",
                    "'cells' must be a non-empty list")
    cells: List[CellSpec] = []
    for index, entry in enumerate(entries):
        cells.extend(_parse_entry(source, index, entry))
    return SuiteSpec(name=name, description=description, seed=seed,
                     early_stop=early_stop, cells=tuple(cells),
                     source=source)


def _decode(text: str, path: str) -> object:
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise SuiteConfigError(
                f"{path}: PyYAML is not installed in this environment; "
                f"use a .json suite file instead") from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SuiteConfigError(f"{path}: invalid YAML: {exc}") \
                from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SuiteConfigError(f"{path}: invalid JSON: {exc}") from None


def load_suite(path: str) -> SuiteSpec:
    """Load and validate a suite file (``.yaml``/``.yml``/``.json``)."""
    if not os.path.isfile(path):
        raise SuiteConfigError(f"{path}: no such suite file")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_suite(_decode(text, path), source=path)
