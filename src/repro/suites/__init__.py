"""Declarative experiment suites: scenario plugins plus a matrix runner.

``repro.suites`` turns the repo's bespoke scenario drivers (chaos,
partition, crashtest, overload, the paper experiments) into registered
:class:`ScenarioPlugin`\\ s and executes YAML/JSON-declared parameter
matrices over them deterministically — per-cell seeds derive from the
suite seed and the cell identity, so every suite document is a pure
function of ``(suite file, seed)``.  See ``docs/experiments.md``.
"""

from repro.suites.registry import (ParamSpec, ScenarioPlugin, SuiteError,
                                   UnknownPluginError, ensure_builtin_plugins,
                                   get_plugin, plugin_descriptions,
                                   plugin_names, register_plugin)
from repro.suites.runner import (SUITE_SCHEMA, cell_seed, document_digest,
                                 evaluate_check, parse_check, render_suite_json,
                                 run_cell, run_suite, suite_ok)
from repro.suites.schema import (EARLY_STOP_POLICIES, CellSpec,
                                 SuiteConfigError, SuiteSpec, load_suite,
                                 parse_suite)

__all__ = [
    "ParamSpec", "ScenarioPlugin", "SuiteError", "UnknownPluginError",
    "ensure_builtin_plugins", "get_plugin", "plugin_descriptions",
    "plugin_names", "register_plugin",
    "SUITE_SCHEMA", "cell_seed", "document_digest", "evaluate_check",
    "parse_check", "render_suite_json", "run_cell", "run_suite",
    "suite_ok",
    "EARLY_STOP_POLICIES", "CellSpec", "SuiteConfigError", "SuiteSpec",
    "load_suite", "parse_suite",
]
