"""The scenario-plugin registry behind ``repro.suites``.

Every named workload of the reproduction — the chaos/partition/
crashtest fault scenarios, the overload flood, the paper experiments —
is registered here as a :class:`ScenarioPlugin`: a named, parameterised
driver that takes one integer seed plus validated keyword parameters
and returns a canonical JSON-able document.  The suite matrix runner
(:mod:`repro.suites.runner`) composes cells entirely out of plugins, so
a new workload becomes *config plus one registration* instead of a new
bespoke CLI subcommand.

Contracts every plugin must honour (recorded in
``docs/experiments.md`` and regression-tested in
``tests/test_suites.py``):

1. **Fresh registry per run** — the driver constructs its own
   :class:`~repro.obs.telemetry.Telemetry` (or calls
   ``telemetry.reset()``) for every invocation.  Cumulative registry
   state — ``Gauge.set_max`` peak watermarks, counter totals, flight
   recorder dumps — must never survive from one in-process run into the
   next, or later matrix cells report the earlier cells' peaks.  Lint
   rule OBS002 flags module-global telemetry state structurally.
2. **Seeds come in, streams are named** — all randomness must derive
   from the single ``seed`` argument through named
   :class:`~repro.sim.rng.RandomStream`\\ s (use
   :func:`repro.sim.rng.retry_stream` /
   :func:`~repro.sim.rng.derive_seed`); never seed arithmetic like
   ``seed + index``, which couples supposedly independent cells.
3. **Pure function of its inputs** — the returned document must be
   byte-for-byte identical (after :meth:`ScenarioPlugin.render`) across
   runs with the same seed and parameters, in any process, at any
   matrix position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Mapping, Optional, Tuple,
                    Type)


class SuiteError(ValueError):
    """Base class of every suite-layer configuration failure."""


class UnknownPluginError(SuiteError):
    """A suite (or CLI) named a scenario plugin that is not registered."""


@dataclass(frozen=True)
class ParamSpec:
    """One allowed parameter of a plugin.

    ``choices`` (when given) enumerates the legal values — the
    *variant* axis a ``--list`` style listing shows; ``kind`` is the
    required Python type of a supplied value.
    """

    default: object
    kind: Type[object] = str
    choices: Optional[Tuple[object, ...]] = None
    help: str = ""

    def validate(self, plugin: str, name: str, value: object) -> object:
        if self.kind is int and isinstance(value, bool):
            raise SuiteError(
                f"plugin {plugin!r}: parameter {name!r} must be an "
                f"int, got {value!r}")
        if not isinstance(value, self.kind):
            raise SuiteError(
                f"plugin {plugin!r}: parameter {name!r} must be "
                f"{self.kind.__name__}, got {type(value).__name__} "
                f"{value!r}")
        if self.choices is not None and value not in self.choices:
            raise SuiteError(
                f"plugin {plugin!r}: parameter {name!r} must be one of "
                f"{list(self.choices)}, got {value!r}")
        return value


@dataclass(frozen=True)
class ScenarioPlugin:
    """One registered scenario driver sharing the suite envelope.

    ``run(seed=..., **params)`` returns the raw scenario document;
    ``render`` is its canonical serialisation; ``checks`` are the
    default invariant expressions the matrix runner evaluates against
    the document (see :func:`repro.suites.runner.evaluate_check`);
    ``variant_param`` names the parameter that distinguishes the
    plugin's named variants in listings.
    """

    name: str
    description: str
    run: Callable[..., Dict[str, Any]]
    render: Callable[[Dict[str, Any]], str]
    params: Mapping[str, ParamSpec] = \
        field(default_factory=dict)
    checks: Tuple[str, ...] = ()
    variant_param: Optional[str] = None

    def variants(self) -> Tuple[object, ...]:
        """The named variants (choices of ``variant_param``), if any."""
        if self.variant_param is None:
            return ()
        return self.params[self.variant_param].choices or ()

    def validate_params(self, params: Mapping[str, object]
                        ) -> Dict[str, object]:
        """Merge ``params`` over the defaults; reject unknown keys and
        out-of-domain values.  Returns the full, canonical param dict."""
        merged: Dict[str, object] = {
            name: spec.default for name, spec in self.params.items()}
        for name, value in params.items():
            spec = self.params.get(name)
            if spec is None:
                raise SuiteError(
                    f"plugin {self.name!r} has no parameter {name!r} "
                    f"(have {sorted(self.params)})")
            merged[name] = spec.validate(self.name, name, value)
        return merged

    def run_cell(self, seed: int,
                 params: Mapping[str, object]) -> Dict[str, Any]:
        """Validate ``params`` and run the driver once."""
        return self.run(seed=seed, **self.validate_params(params))


_REGISTRY: Dict[str, ScenarioPlugin] = {}


def register_plugin(plugin: ScenarioPlugin) -> ScenarioPlugin:
    """Register (or replace) a plugin under its name."""
    if plugin.variant_param is not None \
            and plugin.variant_param not in plugin.params:
        raise SuiteError(
            f"plugin {plugin.name!r}: variant_param "
            f"{plugin.variant_param!r} is not a declared parameter")
    _REGISTRY[plugin.name] = plugin
    return plugin


def get_plugin(name: str) -> ScenarioPlugin:
    ensure_builtin_plugins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPluginError(
            f"unknown scenario plugin {name!r} "
            f"(have {plugin_names()})") from None


def plugin_names() -> Tuple[str, ...]:
    ensure_builtin_plugins()
    return tuple(sorted(_REGISTRY))


def plugin_descriptions() -> Dict[str, str]:
    ensure_builtin_plugins()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


_builtins_loaded = False


def ensure_builtin_plugins() -> None:
    """Import :mod:`repro.suites.plugins` once (it registers on import)."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.suites.plugins  # noqa: F401  (registration side effect)
