"""The built-in scenario plugins: every bespoke driver, registered.

This module is the refactor that retires the six bespoke entrypoints:
``run_chaos`` / ``run_partition`` / ``run_crashtest`` / ``run_overload``
and the paper-experiment drivers all become registered
:class:`~repro.suites.registry.ScenarioPlugin`\\ s sharing one result
envelope, so the matrix runner (and any future harness) composes them
uniformly.  The CLI subcommands (``repro chaos`` …) keep working and
keep their exact output — they now merely exercise the same drivers the
plugins wrap.

Each plugin declares its parameter domain (the matrix axes: named fault
plan / scenario / mode, topology ``workers``, governor mode) and its
default invariant checks — the expressions the runner evaluates against
the returned document to decide the cell verdict.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.suites.registry import (ParamSpec, ScenarioPlugin,
                                   register_plugin)


def _run_chaos(seed: int, plan: str, recovery: bool,
               workers: int) -> Dict[str, Any]:
    from repro.chaos.scenario import run_chaos
    return run_chaos(seed=seed, plan=plan, recovery=recovery,
                     workers=workers)


def _render_chaos(document: Dict[str, Any]) -> str:
    from repro.chaos.scenario import render_chaos_json
    return render_chaos_json(document)


def _run_partition(seed: int, scenario: str, workers: int) -> Dict[str, Any]:
    from repro.chaos.partition import run_partition
    return run_partition(seed=seed, scenario=scenario, workers=workers)


def _render_partition(document: Dict[str, Any]) -> str:
    from repro.chaos.partition import render_partition_json
    return render_partition_json(document)


def _run_crashtest(seed: int, scenario: str, workers: int) -> Dict[str, Any]:
    from repro.chaos.crashtest import run_crashtest
    return run_crashtest(seed=seed, scenario=scenario, workers=workers)


def _render_crashtest(document: Dict[str, Any]) -> str:
    from repro.chaos.crashtest import render_crashtest_json
    return render_crashtest_json(document)


def _run_overload(seed: int, mode: str) -> Dict[str, Any]:
    from repro.bench.overload import run_overload_mode
    return run_overload_mode(seed=seed, mode=mode)


def _render_overload(document: Dict[str, Any]) -> str:
    from repro.bench.overload import render_overload_json
    return render_overload_json(document)


def _run_experiment(seed: int, id: str) -> Dict[str, Any]:
    from repro.bench.experiments import SEEDED_EXPERIMENTS, run_experiment
    from repro.bench.runner import report_to_dict
    kwargs: Dict[str, int] = \
        {"seed": seed} if id in SEEDED_EXPERIMENTS else {}
    return report_to_dict(run_experiment(id, **kwargs))


def _render_experiment(document: Dict[str, Any]) -> str:
    import json
    return json.dumps(document, sort_keys=True, indent=2)


def _experiment_ids() -> Tuple[str, ...]:
    from repro.bench.experiments import EXPERIMENTS
    return tuple(sorted(EXPERIMENTS))


def _chaos_plans() -> Tuple[str, ...]:
    from repro.chaos.scenario import PLAN_NAMES
    return tuple(PLAN_NAMES)


def _partition_scenarios() -> Tuple[str, ...]:
    from repro.chaos.partition import SCENARIO_NAMES
    return tuple(SCENARIO_NAMES)


def _crashtest_scenarios() -> Tuple[str, ...]:
    from repro.chaos.crashtest import SCENARIO_NAMES
    return tuple(SCENARIO_NAMES)


def _overload_modes() -> Tuple[str, ...]:
    from repro.bench.overload import MODE_NAMES
    return tuple(MODE_NAMES)


register_plugin(ScenarioPlugin(
    name="chaos",
    description="the survey itinerary under a named fault plan "
                "(crashes, restarts, link flaps)",
    run=_run_chaos,
    render=_render_chaos,
    params={
        "plan": ParamSpec("mid-crash", str, _chaos_plans(),
                          "fault plan name"),
        "recovery": ParamSpec(True, bool,
                              help="carry the recovery kit (monitor/"
                                   "checkpoint/retry/rear-guard)"),
        "workers": ParamSpec(3, int, help="worker-host count (topology)"),
    },
    # The agent reported at least one site and was not silently lost.
    checks=("agent.sites_visited>=1", "!agent.timed_out"),
    variant_param="plan",
))

register_plugin(ScenarioPlugin(
    name="partition",
    description="exactly-once delivery under partition storms, "
                "split brain and asymmetric ack loss",
    run=_run_partition,
    render=_render_partition,
    params={
        "scenario": ParamSpec("partition-storm", str,
                              _partition_scenarios(), "scenario name"),
        "workers": ParamSpec(3, int, help="worker-host count (topology)"),
    },
    checks=("exactly_once.holds",),
    variant_param="scenario",
))

register_plugin(ScenarioPlugin(
    name="crashtest",
    description="journal replay resurrects bare agents through host "
                "crashes, torn tails and crash loops",
    run=_run_crashtest,
    render=_render_crashtest,
    params={
        "scenario": ParamSpec("kill-during-migration", str,
                              _crashtest_scenarios(), "scenario name"),
        "workers": ParamSpec(3, int, help="worker-host count (topology)"),
    },
    checks=("exactly_once.holds", "conservation.holds"),
    variant_param="scenario",
))

register_plugin(ScenarioPlugin(
    name="overload",
    description="N greedy principals flood one host with or without "
                "the firewall governor (the governor-config axis)",
    run=_run_overload,
    render=_render_overload,
    params={
        "mode": ParamSpec("governed", str, _overload_modes(),
                          "governed or ungoverned"),
    },
    checks=("flood.completion_rate>=0.9",),
    variant_param="mode",
))

register_plugin(ScenarioPlugin(
    name="experiment",
    description="one paper-reproduction experiment (E1, E2, ...) as a "
                "suite cell; the check is its paper-vs-measured verdict",
    run=_run_experiment,
    render=_render_experiment,
    params={
        "id": ParamSpec("E1", str, _experiment_ids(), "experiment id"),
    },
    checks=("reproduced",),
    variant_param="id",
))
