"""The deterministic matrix executor behind ``repro suite run``.

Executes a :class:`~repro.suites.schema.SuiteSpec` cell by cell, in the
fixed expansion order, and produces **one canonical suite document**:
for every cell an envelope with its id, resolved parameters, derived
seed, check verdicts, a sha256 digest of the raw scenario document, and
(optionally) the document itself.  Because every plugin is a pure
function of ``(seed, params)`` and per-cell seeds derive from the cell
*identity* rather than its position, re-running a suite — or running
one of its cells standalone — reproduces the same bytes.

Check expressions (the cell verdict language)::

    exactly_once.holds          # truthy value at the dotted path
    !agent.timed_out            # falsy value at the dotted path
    flood.completion_rate>=0.9  # comparison; ==, !=, >=, <=, >, <
                                # the right side is a JSON literal

A missing path fails the check (and reports the value as ``null``).
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.rng import derive_seed
from repro.suites.registry import SuiteError, get_plugin
from repro.suites.schema import CellSpec, SuiteSpec

SUITE_SCHEMA = "repro.suite/1"

_COMPARATORS = ("==", "!=", ">=", "<=", ">", "<")
_PATH_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*$")


class CheckSyntaxError(SuiteError):
    """A check expression failed to parse."""


def parse_check(expression: str) -> Tuple[str, Optional[str], Any]:
    """Parse a check into ``(path, op, literal)``.

    ``op`` is ``None`` for a bare truthy check, ``"!"`` for a negated
    one, or one of the comparison operators with a JSON ``literal``.
    """
    text = expression.strip()
    if not text:
        raise CheckSyntaxError("empty check expression")
    for op in _COMPARATORS:
        if op in text:
            path, _, literal = text.partition(op)
            path = path.strip()
            literal = literal.strip()
            if not _PATH_RE.match(path):
                raise CheckSyntaxError(
                    f"bad path {path!r} in check {expression!r}")
            try:
                value = json.loads(literal)
            except json.JSONDecodeError:
                raise CheckSyntaxError(
                    f"right side of {expression!r} must be a JSON "
                    f"literal, got {literal!r}") from None
            return path, op, value
    negate = text.startswith("!")
    path = text[1:].strip() if negate else text
    if not _PATH_RE.match(path):
        raise CheckSyntaxError(f"bad path {path!r} in check "
                               f"{expression!r}")
    return path, ("!" if negate else None), None


def _lookup(document: Dict[str, Any], path: str) -> Tuple[bool, Any]:
    node: object = document
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def evaluate_check(expression: str,
                   document: Dict[str, Any]) -> Tuple[bool, Any]:
    """Evaluate one check; returns ``(ok, observed_value)``."""
    path, op, literal = parse_check(expression)
    found, value = _lookup(document, path)
    if not found:
        return False, None
    if op is None:
        return bool(value), value
    if op == "!":
        return not value, value
    try:
        if op == "==":
            return value == literal, value
        if op == "!=":
            return value != literal, value
        if op == ">=":
            return value >= literal, value
        if op == "<=":
            return value <= literal, value
        if op == ">":
            return value > literal, value
        return value < literal, value
    except TypeError:
        return False, value


def document_digest(document: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON serialisation of ``document``."""
    canonical = json.dumps(document, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cell_seed(suite_seed: int, cell: CellSpec) -> int:
    """The cell's seed: explicit when pinned, else derived from the
    suite seed and the cell *identity* (not its matrix position)."""
    if cell.explicit_seed is not None:
        return cell.explicit_seed
    return derive_seed(suite_seed, f"cell/{cell.cell_id}")


def run_cell(cell: CellSpec, suite_seed: int, index: int = 0,
             include_document: bool = True) -> Dict[str, Any]:
    """Run one cell and wrap the result in the shared envelope."""
    plugin = get_plugin(cell.plugin)
    seed = cell_seed(suite_seed, cell)
    document = plugin.run_cell(seed, cell.params_dict())
    results = []
    failed = 0
    for check in cell.checks:
        ok, value = evaluate_check(check, document)
        if not ok:
            failed += 1
        results.append({"check": check, "ok": ok, "value": value})
    envelope: Dict[str, Any] = {
        "id": cell.cell_id,
        "index": index,
        "plugin": cell.plugin,
        "params": cell.params_dict(),
        "seed": seed,
        "status": "failed" if failed else "passed",
        "checks": results,
        "digest": document_digest(document),
    }
    if include_document:
        envelope["document"] = document
    return envelope


def _skipped_cell(cell: CellSpec, index: int) -> Dict[str, Any]:
    return {
        "id": cell.cell_id,
        "index": index,
        "plugin": cell.plugin,
        "params": cell.params_dict(),
        "seed": None,
        "status": "skipped",
        "checks": [],
        "digest": None,
    }


def run_suite(spec: SuiteSpec, seed: Optional[int] = None,
              include_documents: bool = True) -> Dict[str, Any]:
    """Execute every cell in order; produce the canonical suite document.

    ``seed`` overrides the suite file's default seed.  Under the
    ``first-failure`` early-stop policy, cells after the first failed
    one are recorded as ``skipped`` and never executed.
    """
    suite_seed = spec.seed if seed is None else seed
    cells: List[Dict[str, Any]] = []
    passed = failed = skipped = 0
    stop = False
    for index, cell in enumerate(spec.cells):
        if stop:
            cells.append(_skipped_cell(cell, index))
            skipped += 1
            continue
        envelope = run_cell(cell, suite_seed, index,
                            include_document=include_documents)
        cells.append(envelope)
        if envelope["status"] == "failed":
            failed += 1
            if spec.early_stop == "first-failure":
                stop = True
        else:
            passed += 1
    return {
        "schema": SUITE_SCHEMA,
        "suite": spec.name,
        "description": spec.description,
        "seed": suite_seed,
        "early_stop": spec.early_stop,
        "cells": cells,
        "summary": {
            "planned": len(spec.cells),
            "executed": passed + failed,
            "passed": passed,
            "failed": failed,
            "skipped": skipped,
            "ok": failed == 0,
        },
    }


def render_suite_json(document: Dict[str, Any]) -> str:
    """Canonical serialisation of a suite document (CI diffs this)."""
    return json.dumps(document, sort_keys=True, indent=2)


def suite_ok(document: Dict[str, Any]) -> bool:
    return bool(document["summary"]["ok"])
