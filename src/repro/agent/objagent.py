"""Object agents: class-based agents shipped by pickling.

Most TAX agents keep all transportable state in their briefcase (the
paper's model).  Object agents are the complementary style several
contemporary systems used: the agent is an *instance* whose attributes
are the state, moved between hosts by pickling.  The class itself moves
by reference (it must be installed at the destination and pass the
vm_pickle whitelist), the state by value.

Subclass :class:`ObjectAgent` and implement :meth:`run` as a generator
taking the context and the launch briefcase::

    class Counter(ObjectAgent):
        def __init__(self):
            self.visits = []

        def run(self, ctx, bc):
            self.visits.append(ctx.host_name)
            nxt = bc.folder("HOSTS").pop_first()
            if nxt is None:
                yield from ctx.send(bc.get_text("HOME"),
                                    Briefcase({"VISITS": self.visits}))
                return
            yield from self.go_with_state(ctx, nxt.as_text())

Because ``go`` ships only the briefcase, :meth:`go_with_state`
re-pickles the (possibly mutated) instance into the CODE folder before
moving, so the object state survives the hop.
"""

from __future__ import annotations

from repro.core import wellknown
from repro.vm import loader


class ObjectAgent:
    """Base class for pickled, stateful agents."""

    def run(self, ctx, briefcase):
        """The agent body (a generator).  Must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover - generator template

    def go_with_state(self, ctx, vm_target, timeout: float = 60.0):
        """Re-pack this instance (with its current attribute state) into
        the briefcase and migrate.  Does not return on success."""
        payload = loader.pack_pickle(self)
        ctx.briefcase.put(wellknown.CODE_KIND, payload.kind)
        ctx.briefcase.folder(wellknown.CODE).replace([payload.blob])
        yield from ctx.go(vm_target, timeout=timeout)

    def spawn_with_state(self, ctx, vm_target, timeout: float = 60.0):
        """Clone this instance (state included) onto another VM."""
        payload = loader.pack_pickle(self)
        ctx.briefcase.put(wellknown.CODE_KIND, payload.kind)
        ctx.briefcase.folder(wellknown.CODE).replace([payload.blob])
        clone_uri = yield from ctx.spawn_to(vm_target, timeout=timeout)
        return clone_uri


def launch_briefcase(agent: ObjectAgent, agent_name: str = "objagent"):
    """A launch-ready briefcase carrying a pickled object agent."""
    from repro.core.briefcase import Briefcase
    briefcase = Briefcase()
    loader.install_payload(briefcase, loader.pack_pickle(agent),
                           agent_name=agent_name)
    return briefcase
