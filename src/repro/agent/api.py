"""The TAX library under its original names (paper section 3.1).

The paper's C library exposes ``bcSend()``/``bcRecv()`` and, on top of
them, ``activate()``, ``await()``, ``meet()``, ``go()`` and ``spawn()``.
:class:`~repro.agent.context.AgentContext` provides the same operations
with Pythonic names; this module re-exports them as free functions with
the paper's names, so code transliterated from TACOMA examples reads
like the original::

    def ag_main(ctx, bc):
        yield from activate(ctx, "ag_exec", request)
        reply = yield from await_bc(ctx)
        yield from go(ctx, "tacoma://cl2.cs.uit.no/vm_python")

All functions are generators and must be driven with ``yield from``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.briefcase import Briefcase
from repro.agent.context import AgentContext, Target


def bc_send(ctx: AgentContext, target: Target, briefcase: Briefcase):
    """The basic send primitive: one briefcase to the firewall."""
    return ctx.send(target, briefcase)


def bc_recv(ctx: AgentContext, timeout: Optional[float] = None):
    """The basic receive primitive: the next message for this agent."""
    return ctx.recv(timeout=timeout)


def activate(ctx: AgentContext, target: Target, briefcase: Briefcase):
    """Asynchronous send ("equivalent to a send")."""
    return ctx.send(target, briefcase)


def await_bc(ctx: AgentContext, timeout: Optional[float] = None):
    """Blocking receive returning the briefcase ("a blocking receive").

    Named ``await_bc`` because ``await`` is a Python keyword.
    """
    return ctx.await_bc(timeout=timeout)


def meet(ctx: AgentContext, target: Target, briefcase: Briefcase,
         timeout: float = 60.0):
    """Request/response ("meet() is a RPC")."""
    return ctx.meet(target, briefcase, timeout=timeout)


def go(ctx: AgentContext, vm_target: Target, timeout: float = 60.0):
    """Move to another VM; "terminates the current instance if the move
    is successful" — i.e. this call does not return on success."""
    return ctx.go(vm_target, timeout=timeout)


def spawn(ctx: AgentContext, vm_target: Target, timeout: float = 60.0):
    """Clone onto another VM; the new instance number "is then reported
    back to the calling agent" (returned as an AgentUri).  "This
    resembles the Unix fork() system call."""
    return ctx.spawn_to(vm_target, timeout=timeout)


__all__ = ["bc_send", "bc_recv", "activate", "await_bc", "meet", "go",
           "spawn"]
