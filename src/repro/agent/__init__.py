"""Agent-side runtime: mailboxes, the TAX library context, the
paper-named API, and object agents."""

from repro.agent import api, streams
from repro.agent.context import (
    DEFAULT_MEET_TIMEOUT,
    AgentContext,
)
from repro.agent.mailbox import Mailbox
from repro.agent.objagent import ObjectAgent, launch_briefcase

__all__ = ["api", "streams", "AgentContext", "DEFAULT_MEET_TIMEOUT",
           "Mailbox", "ObjectAgent", "launch_briefcase"]
