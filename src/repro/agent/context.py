"""AgentContext: the TAX library, bound to one running agent.

This is the per-agent instance of the shared library of paper section
3.1: state management (the live briefcase), communication
(``activate``/``await``/``meet`` built on ``bcSend``/``bcRecv``), and
mobility (``go``/``spawn``).  Every blocking operation is a generator
that agent code drives with ``yield from``.

The context also owns the agent's wrapper stack: outbound briefcases are
filtered innermost→outermost before reaching the firewall, mirroring the
inbound interception the VM wires into the delivery path.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Union

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    CommTimeoutError,
    MigrationError,
    OverloadError,
    TaxError,
    is_transient,
)
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.agent.mailbox import Mailbox
from repro.firewall.auth import sign_request
from repro.firewall.message import DEFAULT_QUEUE_TIMEOUT, Message, SenderInfo
from repro.obs.propagation import link_args, span_args
from repro.sim.errors import StopProcess
from repro.sim.ledger import CostLedger
from repro.sim.network import NetworkError

Target = Union[str, AgentUri]

#: Default patience for meet() round trips.
DEFAULT_MEET_TIMEOUT = 60.0

#: System folders the VM strips from a transport briefcase before launch.
TRANSPORT_FOLDERS = (wellknown.MEET_TOKEN, wellknown.REPLY_TO, wellknown.OP)

#: Cost of one wrapper layer observing one message.  Wrappers are agents
#: in TAX; colocated interception is a cheap same-VM hop rather than a
#: full firewall dispatch.
WRAPPER_LAYER_SECONDS = 2e-5


class AgentContext:
    """Execution context handed to every agent's main generator."""

    def __init__(self, node, vm_name: str, briefcase: Briefcase,
                 principal: str, wrappers=None):
        if wrappers is None:
            # Imported lazily: wrappers depend on the VM loader, which
            # depends on this module (wrapper stacks travel in briefcases).
            from repro.wrappers.stack import WrapperStack
            wrappers = WrapperStack()
        self.node = node
        self.vm_name = vm_name
        self.briefcase = briefcase
        self.principal = principal
        self.wrappers = wrappers
        self.registration = None
        self.mailbox: Optional[Mailbox] = None
        self.moved = False
        self.finished = False
        self._pending_tokens: set = set()
        #: Lifecycle span opened by the launching VM (None for drivers
        #: and service contexts, which are never launched).
        self.run_span = None
        #: Causal trace node for this residency (a
        #: :class:`~repro.obs.propagation.TraceContext`).  Set by the VM
        #: at launch from the transport message's context; rooted lazily
        #: for driver/service contexts; always None when telemetry is
        #: disabled.
        self.trace = None
        #: Trace node outbound messages should carry instead of a fresh
        #: per-send child — set for the duration of a go/spawn meet (and
        #: its retries) so every transport attempt of one hop shares the
        #: hop's causal node.
        self._outbound_trace = None
        #: Landing id outbound messages should carry — set for the
        #: duration of a go/spawn meet (and its retries) so every
        #: transport attempt of one hop presents the same landing id to
        #: the destination's :class:`~repro.firewall.dedup.LandingRegistry`.
        self._outbound_landing = None
        #: Per-context landing-id counter (envelope metadata only, so —
        #: unlike meet tokens — uniqueness per (host, instance) is all
        #: that matters).
        self._landing_counter = itertools.count(1)
        #: Transport retry configuration (None: fail on first error,
        #: the pre-resilience behaviour).  See :meth:`configure_retry`.
        self.retry_policy = None
        self.retry_rng = None
        #: Keychain for sender authentication of outbound codeless
        #: requests (None: sends stay unsigned and arrive remotely as
        #: unauthenticated).  See :meth:`configure_signing`.
        self.keychain = None
        #: Per-context meet-token counter.  Deliberately *not* shared
        #: process-wide: token strings ride in briefcases, so a global
        #: counter would make wire sizes (and thus virtual timings)
        #: depend on how many meets earlier runs in the same process
        #: happened to issue.  Tokens stay unique per mailbox because
        #: they embed the instance id.
        self._token_counter = itertools.count(1)
        self._sanitize(briefcase, "attach")

    def _sanitize(self, briefcase: Optional[Briefcase], op: str) -> None:
        """Present ``briefcase`` to the ambient sanitizer, if one is
        installed (see :mod:`repro.analysis.sanitizer`).  One attribute
        read + None check when sanitizing is off."""
        sanitizer = getattr(self.node.kernel, "sanitizer", None)
        if sanitizer is not None and briefcase is not None:
            sanitizer.observe_briefcase(self, briefcase, op=op)

    def configure_retry(self, policy, rng=None) -> None:
        """Enable transport retries on ``send``/``meet`` (and therefore
        ``go``/``spawn_to``/``call_service``, which ride on ``meet``).

        ``policy`` is a :class:`repro.core.retry.RetryPolicy` (or None
        to disable); ``rng`` an optional seeded stream for jitter —
        without one delays are deterministic midpoints.
        """
        self.retry_policy = policy
        self.retry_rng = rng

    def configure_signing(self, keychain) -> None:
        """Sign outbound codeless requests with this context's principal.

        Remote firewalls authenticate arrivals by signature; without one
        the claimed principal stays unauthenticated and admin-gated ops
        (``kill``, ``tombstone``) are refused.  Rear guards and
        migration origins — anything running a cross-host control plane
        — need this; plain data traffic does not.
        """
        self.keychain = keychain

    def attach(self, registration, mailbox: Mailbox) -> None:
        self.registration = registration
        self.mailbox = mailbox

    # -- introspection ----------------------------------------------------------------

    @property
    def kernel(self):
        return self.node.kernel

    @property
    def firewall(self):
        return self.node.firewall

    @property
    def host_name(self) -> str:
        return self.node.host.name

    @property
    def name(self) -> str:
        return self.registration.name

    @property
    def instance(self) -> str:
        return self.registration.instance

    @property
    def uri(self) -> AgentUri:
        """This agent's full, remotely-usable address."""
        return self.firewall.uri_for(self.registration)

    @property
    def now(self) -> float:
        return self.kernel.now

    def log(self, text: str) -> None:
        self.firewall.log(f"[{self.name}:{self.instance}] {text}")

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _resolve(target: Target) -> AgentUri:
        if isinstance(target, AgentUri):
            return target
        return AgentUri.parse(target)

    def _sender_info(self) -> SenderInfo:
        return SenderInfo(principal=self.principal, host=self.host_name,
                          uri=self.uri, authenticated=True)

    def _count_retry(self, op: str) -> None:
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            labels = {"op": op}
            if self.registration is not None:
                labels["agent"] = self.name
            telemetry.metrics.inc("transport.retries", **labels)

    def _current_trace(self):
        """This context's causal node, rooted lazily for contexts that
        were never launched from a traced message (drivers, services).
        None whenever telemetry is disabled."""
        telemetry = self.kernel.telemetry
        if not telemetry.enabled:
            return None
        if self.trace is None:
            self.trace = telemetry.new_trace()
        return self.trace

    def _retry_wait(self, op: str, retry_index: int):
        """Spend the backoff before retry ``retry_index`` (a generator)."""
        delay = self.retry_policy.delay(retry_index, self.retry_rng)
        self._count_retry(op)
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            trace = self._outbound_trace or self.trace
            track = f"agent:{self.name}" \
                if self.registration is not None else "agent:unattached"
            telemetry.tracer.instant(
                "transport.retry", category="agent", track=track,
                op=op, attempt=retry_index + 1, **link_args(trace))
        self.log(f"{op} retry #{retry_index + 1} in {delay:.3f}s")
        yield self.kernel.timeout(delay)

    # -- communication primitives ------------------------------------------------------

    def send(self, target: Target, briefcase: Optional[Briefcase] = None,
             queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
             priority: int = 0):
        """``activate``: fire-and-forget send of a briefcase snapshot.

        ``ok = yield from ctx.send(target, bc)``.  The wrapper stack may
        rewrite or swallow the send (swallowed sends return False).
        ``priority`` matters only under a receiver's ``shed-priority``
        overflow policy: higher-priority messages may evict parked
        lower-priority ones when its queue is full.
        """
        target = self._resolve(target)
        briefcase = briefcase if briefcase is not None else Briefcase()
        if self.wrappers.depth:
            yield self.kernel.timeout(
                self.wrappers.depth * WRAPPER_LAYER_SECONDS)
        filtered = self.wrappers.apply_send(self, target, briefcase)
        if filtered is None:
            yield self.kernel.timeout(0)
            return False
        target, briefcase = filtered
        if self.keychain is not None:
            sign_request(briefcase, self.keychain, self.principal)
        self._sanitize(briefcase, "send")
        self._sanitize(self.briefcase, "send-self")
        telemetry = self.kernel.telemetry
        trace = None
        if telemetry.enabled:
            # A hop in progress pins every transport attempt to the hop's
            # causal node; ordinary sends each get a child node of this
            # residency.  Envelope-only: zero wire bytes either way.
            trace = self._outbound_trace or \
                telemetry.child_context(self._current_trace())
        message = Message(target=target, briefcase=briefcase.snapshot(),
                          sender=self._sender_info(),
                          queue_timeout=queue_timeout,
                          priority=priority, trace=trace,
                          landing_id=self._outbound_landing)
        retries = 0
        while True:
            try:
                ok = yield from self.firewall.submit(message)
                break
            except (TaxError, NetworkError) as exc:
                if isinstance(exc, OverloadError):
                    telemetry = self.kernel.telemetry
                    if telemetry.enabled:
                        telemetry.metrics.inc(
                            "transport.overload_rejections", op="send")
                policy = self.retry_policy
                if policy is None or retries >= policy.retries or \
                        not is_transient(exc):
                    raise
                yield from self._retry_wait("send", retries)
                retries += 1
        if ok and telemetry.enabled and self.registration is not None:
            telemetry.metrics.inc("agent.messages_out", agent=self.name)
        return ok

    def post(self, target: Target, briefcase: Optional[Briefcase] = None):
        """Asynchronous send: runs in its own process, returns immediately.

        Usable from non-process code (wrapper hooks); errors are logged
        rather than raised.
        """
        def _poster():
            try:
                yield from self.send(target, briefcase)
            except (TaxError, NetworkError) as exc:
                self.log(f"async send to {target} failed: {exc}")
        return self.kernel.spawn(_poster(), name=f"post:{target}")

    def recv(self, timeout: Optional[float] = None,
             match: Optional[Callable[[Message], bool]] = None) -> Message:
        """``await``: blocking receive.  ``msg = yield from ctx.recv()``."""
        if self.mailbox is None:
            raise TaxError("agent has no mailbox (not yet attached)")
        message = yield from self.mailbox.receive(timeout=timeout,
                                                  match=match)
        if self.wrappers.depth:
            # Inbound interception already happened at delivery; the
            # layers' work is charged to the receiving agent here.
            yield self.kernel.timeout(
                self.wrappers.depth * WRAPPER_LAYER_SECONDS)
        self._sanitize(message.briefcase, "recv")
        return message

    def await_bc(self, timeout: Optional[float] = None) -> Briefcase:
        """The paper-shaped ``await``: returns just the briefcase."""
        message = yield from self.recv(timeout=timeout)
        return message.briefcase

    def meet(self, target: Target, briefcase: Briefcase,
             timeout: float = DEFAULT_MEET_TIMEOUT) -> Briefcase:
        """RPC: send a briefcase, await the correlated reply briefcase.

        With a retry policy configured, a reply that never arrives
        (receiver crashed, request or reply lost) re-sends the request —
        the token makes duplicate replies harmless — with exponential
        backoff between rounds.  Transient *send* failures retry inside
        :meth:`send` itself.
        """
        token = f"mt-{self.instance}-{next(self._token_counter)}"
        briefcase.put(wellknown.MEET_TOKEN, token)
        briefcase.put(wellknown.REPLY_TO, str(self.uri))
        self._pending_tokens.add(token)
        retries = 0
        try:
            while True:
                ok = yield from self.send(target, briefcase)
                if not ok:
                    raise CommTimeoutError(
                        f"meet with {target}: send was dropped")
                try:
                    reply = yield from self.recv(
                        timeout=timeout,
                        match=lambda m: m.briefcase.get_text(
                            wellknown.MEET_TOKEN) == token)
                    break
                except CommTimeoutError:
                    policy = self.retry_policy
                    if policy is None or retries >= policy.retries:
                        raise
                    yield from self._retry_wait("meet", retries)
                    retries += 1
        finally:
            self._pending_tokens.discard(token)
        return reply.briefcase

    def is_pending_reply(self, message: Message) -> bool:
        """True when ``message`` answers one of this context's in-flight
        meets.  Loops sharing a mailbox with concurrent meets use this to
        avoid stealing replies: ``recv(match=lambda m: not
        ctx.is_pending_reply(m))``."""
        token = message.briefcase.get_text(wellknown.MEET_TOKEN)
        return token is not None and token in self._pending_tokens

    def reply(self, request: Union[Message, Briefcase],
              response: Briefcase):
        """Answer a meet(): route ``response`` back to the requester."""
        request_bc = request.briefcase if isinstance(request, Message) \
            else request
        reply_to = request_bc.get_text(wellknown.REPLY_TO)
        if reply_to is None:
            raise TaxError("request carries no REPLY-TO; cannot reply")
        token = request_bc.get_text(wellknown.MEET_TOKEN)
        if token is not None:
            response.put(wellknown.MEET_TOKEN, token)
        # Replies continue the *requester's* causal chain, so service and
        # VM acks do not root stray traces of their own.
        telemetry = self.kernel.telemetry
        previous = self._outbound_trace
        if telemetry.enabled and isinstance(request, Message) and \
                request.trace is not None:
            self._outbound_trace = telemetry.child_context(request.trace)
        try:
            return (yield from self.send(AgentUri.parse(reply_to),
                                         response))
        finally:
            self._outbound_trace = previous

    def call_service(self, service_name: str, op: str,
                     briefcase: Optional[Briefcase] = None,
                     timeout: float = DEFAULT_MEET_TIMEOUT) -> Briefcase:
        """meet() a local service agent with an OP folder set."""
        briefcase = briefcase if briefcase is not None else Briefcase()
        briefcase.put(wellknown.OP, op)
        target = AgentUri.for_agent(service_name)
        response = yield from self.meet(target, briefcase, timeout=timeout)
        status = response.get_text(wellknown.STATUS, "error")
        if status != "ok":
            error = response.get_text(wellknown.ERROR, "unknown error")
            raise TaxError(f"{service_name}.{op} failed: {error}")
        return response

    # -- mobility -------------------------------------------------------------------------

    def _transport_briefcase(self) -> Briefcase:
        self._sanitize(self.briefcase, "go")
        transport = self.briefcase.snapshot()
        transport.put(wellknown.AGENT_NAME, self.name)
        transport.put(wellknown.PRINCIPAL, self.principal)
        return transport

    def _new_landing_id(self) -> str:
        """Mint a landing id for one migration.

        The ``host:instance:`` prefix doubles as a capability: the
        destination's firewall lets the *minting host* tombstone the id
        without full admin rights (see ``FirewallAdmin.op_tombstone``).
        """
        return f"{self.host_name}:{self.instance}:" \
               f"{next(self._landing_counter)}"

    def _abort_landing(self, target: AgentUri, landing_id: str,
                       op: str) -> None:
        """Best-effort: tombstone an ambiguous landing at the destination.

        A go/spawn meet that *failed* may still have launched the agent —
        the ack, not the launch, may be what the partition ate.  The
        origin cannot tell, so it posts a tombstone to the destination
        firewall: if the landing ran, the twin is killed; if the
        transport never arrives, the id is poisoned against late
        duplicates.  Fire-and-forget — an unreachable destination just
        logs the failure.
        """
        if target.host is None or target.host == self.host_name:
            return
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("agent.landing_aborts", op=op)
        request = Briefcase()
        request.put(wellknown.OP, "tombstone")
        request.put(wellknown.ARGS, {"landing_id": landing_id,
                                     "reason": f"{op}-abandoned"})
        self.post(AgentUri(host=target.host, name="firewall"), request)

    def go(self, vm_target: Target, timeout: float = DEFAULT_MEET_TIMEOUT):
        """Move this agent to the VM at ``vm_target``.

        On success the current instance terminates (the call never
        returns); on failure :class:`MigrationError` is raised and the
        agent continues here — the Figure-4 ``if (go(...)) { ... }``
        pattern becomes ``try: yield from ctx.go(...) except
        MigrationError``.
        """
        target = self._resolve(vm_target)
        transport = self._transport_briefcase()
        telemetry = self.kernel.telemetry
        # The hop's causal node: a child of this residency that every
        # transport attempt (including retries) of this go carries.
        hop_trace = telemetry.child_context(self._current_trace()) \
            if telemetry.enabled else None
        span = telemetry.tracer.begin(
            "go", category="agent", track=f"agent:{self.name}",
            agent=self.name, src=self.host_name, dst=str(target),
            dst_host=target.host, **span_args(hop_trace))
        self.wrappers.on_depart(self, target)
        landing = self._new_landing_id()
        self._outbound_trace = hop_trace
        self._outbound_landing = landing
        # Journal the intent before the transport leaves: if this host
        # crashes mid-hop, replay knows the agent's fate is ambiguous
        # (it may already be running at the destination) and must not
        # resurrect a twin here.
        self.firewall.journal_depart_intent(self.registration, landing)
        try:
            reply = yield from self.meet(target, transport, timeout=timeout)
        except (TaxError, NetworkError) as exc:
            span.end(outcome="failed", error=str(exc))
            if telemetry.enabled:
                telemetry.metrics.inc("agent.migration_failures", op="go")
            # The transport may have landed with only the ack lost:
            # poison the landing so no twin survives, then stay here.
            self._abort_landing(target, landing, "go")
            self.firewall.journal_depart_failed(self.registration)
            raise MigrationError(f"go({target}) failed: {exc}") from exc
        finally:
            self._outbound_trace = None
            self._outbound_landing = None
        status = reply.get_text(wellknown.STATUS, "error")
        if status != "ok":
            error = reply.get_text(wellknown.ERROR, "launch failed")
            span.end(outcome="rejected", error=error)
            if telemetry.enabled:
                telemetry.metrics.inc("agent.migration_failures", op="go")
            self.firewall.journal_depart_failed(self.registration)
            raise MigrationError(f"go({target}) rejected: {error}")
        # The move succeeded: terminate this instance.
        self.moved = True
        span.end(outcome="ok")
        if telemetry.enabled:
            telemetry.metrics.inc("agent.migrations", op="go")
            telemetry.metrics.inc("agent.hops", agent=self.name)
            if span.duration is not None:
                telemetry.metrics.observe(
                    "agent.hop_seconds", span.duration,
                    agent=self.name, op="go")
            telemetry.flight.record(self.host_name, "hop",
                                    agent=self.name, op="go",
                                    dst=target.host)
        self.firewall.unregister_agent(self.registration.agent_id,
                                       reason="moved")
        if self.mailbox is not None:
            self.mailbox.close()
        self.log(f"moved to {reply.get_text('AGENT-URI', str(target))}")
        raise StopProcess("moved")

    def spawn_to(self, vm_target: Target,
                 timeout: float = DEFAULT_MEET_TIMEOUT) -> AgentUri:
        """Clone this agent onto ``vm_target`` (Unix ``fork`` analogue).

        The clone gets a fresh instance number at the destination; its
        URI is returned to this (continuing) agent.
        """
        target = self._resolve(vm_target)
        transport = self._transport_briefcase()
        telemetry = self.kernel.telemetry
        hop_trace = telemetry.child_context(self._current_trace()) \
            if telemetry.enabled else None
        span = telemetry.tracer.begin(
            "spawn", category="agent", track=f"agent:{self.name}",
            agent=self.name, src=self.host_name, dst=str(target),
            dst_host=target.host, **span_args(hop_trace))
        landing = self._new_landing_id()
        self._outbound_trace = hop_trace
        self._outbound_landing = landing
        try:
            reply = yield from self.meet(target, transport, timeout=timeout)
        except (TaxError, NetworkError) as exc:
            span.end(outcome="failed", error=str(exc))
            if telemetry.enabled:
                telemetry.metrics.inc("agent.migration_failures",
                                      op="spawn")
            self._abort_landing(target, landing, "spawn")
            raise MigrationError(f"spawn({target}) failed: {exc}") from exc
        finally:
            self._outbound_trace = None
            self._outbound_landing = None
        status = reply.get_text(wellknown.STATUS, "error")
        if status != "ok":
            error = reply.get_text(wellknown.ERROR, "launch failed")
            span.end(outcome="rejected", error=error)
            if telemetry.enabled:
                telemetry.metrics.inc("agent.migration_failures",
                                      op="spawn")
            raise MigrationError(f"spawn({target}) rejected: {error}")
        clone_uri = reply.get_text("AGENT-URI")
        if clone_uri is None:
            span.end(outcome="failed", error="no clone URI")
            raise MigrationError("destination VM returned no clone URI")
        span.end(outcome="ok", clone=clone_uri)
        if telemetry.enabled:
            telemetry.metrics.inc("agent.migrations", op="spawn")
            telemetry.metrics.inc("agent.hops", agent=self.name)
            if span.duration is not None:
                telemetry.metrics.observe(
                    "agent.hop_seconds", span.duration,
                    agent=self.name, op="spawn")
            telemetry.flight.record(self.host_name, "hop",
                                    agent=self.name, op="spawn",
                                    dst=target.host)
        return AgentUri.parse(clone_uri)

    # -- time ------------------------------------------------------------------------------

    def sleep(self, seconds: float):
        yield self.kernel.timeout(seconds)

    def charge(self, cost: Union[CostLedger, float]):
        """Spend the virtual time a synchronous computation accumulated.

        A :class:`CostLedger` is flushed into the metrics registry and
        the tracer (per-category ``cost.seconds`` series and cost spans)
        before the sleep, so synchronous Webbot costs appear in traces
        instead of vanishing with the discarded ledger.
        """
        if isinstance(cost, CostLedger):
            labels = {"host": self.host_name}
            if self.registration is not None:
                labels["agent"] = self.name
            seconds = self.kernel.telemetry.flush_ledger(
                cost, track=f"cost:{self.host_name}",
                start=self.kernel.now, **labels)
        else:
            seconds = float(cost)
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        yield self.kernel.timeout(seconds)
        return seconds
