"""Agent mailboxes: where the firewall parks delivered briefcases.

A mailbox decouples delivery (which happens inside whatever process the
sender or the firewall is running) from consumption (the owning agent's
blocking ``await``).  Receives support an optional *match predicate* —
``meet`` uses it to wait for the reply carrying its correlation token
without disturbing other queued messages — and an optional timeout.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.errors import CommTimeoutError
from repro.firewall.message import Message
from repro.sim.eventloop import Kernel

MatchFn = Callable[[Message], bool]


class Mailbox:
    """FIFO of messages with predicate-based blocking receive."""

    def __init__(self, kernel: Kernel, capacity: Optional[int] = None):
        self.kernel = kernel
        self.capacity = capacity
        self._queue: List[Message] = []
        self._waiters: List[Tuple[Optional[MatchFn], object]] = []
        self.delivered_count = 0
        self.dropped_count = 0
        self.closed = False

    def __len__(self) -> int:
        return len(self._queue)

    # -- delivery (called by the firewall / wrapper machinery) --------------------

    def deliver(self, message: Message) -> bool:
        """Hand a message to this mailbox; returns False if dropped."""
        if self.closed:
            self.dropped_count += 1
            return False
        # Wake the first waiter whose predicate accepts the message.
        for i, (match, event) in enumerate(self._waiters):
            if match is None or match(message):
                del self._waiters[i]
                self.delivered_count += 1
                event.succeed(message)
                return True
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.dropped_count += 1
            return False
        self._queue.append(message)
        self.delivered_count += 1
        return True

    # -- consumption (yield from inside the owning agent's process) ----------------

    def receive(self, timeout: Optional[float] = None,
                match: Optional[MatchFn] = None):
        """Blocking receive: ``message = yield from mailbox.receive()``.

        Raises :class:`CommTimeoutError` when ``timeout`` elapses first.
        """
        message = self._take_queued(match)
        if message is not None:
            yield self.kernel.timeout(0)
            return message
        waiter = self.kernel.event()
        entry = (match, waiter)
        self._waiters.append(entry)
        if timeout is None:
            message = yield waiter
            return message
        expiry = self.kernel.timeout(timeout)
        fired = yield self.kernel.any_of([waiter, expiry])
        if waiter in fired:
            return fired[waiter]
        # Timed out: withdraw the waiter so a late message queues instead.
        if entry in self._waiters:
            self._waiters.remove(entry)
        raise CommTimeoutError(
            f"no matching message within {timeout:g}s")

    def try_receive(self, match: Optional[MatchFn] = None
                    ) -> Optional[Message]:
        """Non-blocking receive; None when nothing matches."""
        return self._take_queued(match)

    def _take_queued(self, match: Optional[MatchFn]) -> Optional[Message]:
        for i, message in enumerate(self._queue):
            if match is None or match(message):
                return self._queue.pop(i)
        return None

    def close(self) -> None:
        """Stop accepting deliveries and fail all pending waiters."""
        self.closed = True
        waiters, self._waiters = self._waiters, []
        for _match, event in waiters:
            event.fail(CommTimeoutError("mailbox closed"))
        self.dropped_count += len(self._queue)
        self._queue.clear()
