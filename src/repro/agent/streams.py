"""Streamed communication between agents (paper section 4).

Multi-hop agents "may need combinations of streamed, group and/or
location independent communication".  This module provides the streamed
part: an ordered, flow-controlled byte channel between two agents,
built entirely on the one primitive the system offers (briefcase
messages), so it needs nothing from the landing pad.

Protocol (folders ``ST-*``):

- the sender opens with ``ST-KIND=open`` carrying a channel id and the
  receiver replies ``ST-KIND=grant`` with its window size;
- data chunks carry ``ST-SEQ``; the receiver acks with the highest
  contiguous sequence (``ST-ACK``), which slides the sender's window;
- ``ST-KIND=close`` carries the total chunk count; the receiver
  finishes when it has everything.

The receiver reorders out-of-order chunks, drops duplicates, and
delivers exactly the bytes that were written — properties the tests
drive through real multi-hop channels.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import CommTimeoutError, TaxError
from repro.core.uri import AgentUri
from repro.core import wellknown

KIND = "ST-KIND"
CHANNEL = "ST-CHANNEL"
SEQ = "ST-SEQ"
ACK = "ST-ACK"
DATA = "ST-DATA"
WINDOW = "ST-WINDOW"
TOTAL = "ST-TOTAL"

KIND_OPEN = "open"
KIND_GRANT = "grant"
KIND_DATA = "data"
KIND_ACK = "ack"
KIND_CLOSE = "close"

DEFAULT_CHUNK_BYTES = 8 * 1024
DEFAULT_WINDOW = 4

_channel_ids = itertools.count(1)


def _is_stream(message, channel: Optional[str] = None,
               kind: Optional[str] = None) -> bool:
    briefcase = message.briefcase
    if briefcase.get_text(KIND) is None:
        return False
    if channel is not None and briefcase.get_text(CHANNEL) != channel:
        return False
    if kind is not None and briefcase.get_text(KIND) != kind:
        return False
    return True


def send_stream(ctx, target, data: bytes,
                chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                timeout: float = 60.0) -> str:
    """Stream ``data`` to ``target`` (generator); returns the channel id.

    Blocks (in virtual time) until every chunk is acknowledged.
    """
    if isinstance(target, str):
        target = AgentUri.parse(target)
    channel = f"ch-{ctx.instance}-{next(_channel_ids)}"
    chunks = [data[i:i + chunk_bytes]
              for i in range(0, len(data), chunk_bytes)] or [b""]

    # Handshake: open -> grant(window).
    opening = Briefcase()
    opening.put(KIND, KIND_OPEN)
    opening.put(CHANNEL, channel)
    opening.put(TOTAL, len(chunks))
    grant = yield from ctx.meet(target, opening, timeout=timeout)
    if grant.get_text(KIND) != KIND_GRANT:
        raise TaxError(f"stream open to {target} rejected")
    window = int(grant.get_json(WINDOW, DEFAULT_WINDOW))

    acked = 0
    next_seq = 0
    while acked < len(chunks):
        while next_seq < len(chunks) and next_seq - acked < window:
            chunk_bc = Briefcase()
            chunk_bc.put(KIND, KIND_DATA)
            chunk_bc.put(CHANNEL, channel)
            chunk_bc.put(SEQ, next_seq)
            chunk_bc.folder(DATA).replace([chunks[next_seq]])
            yield from ctx.send(target, chunk_bc)
            next_seq += 1
        ack_message = yield from ctx.recv(
            timeout=timeout,
            match=lambda m: _is_stream(m, channel, KIND_ACK))
        acked = max(acked, int(ack_message.briefcase.get_json(ACK)) + 1)

    closing = Briefcase()
    closing.put(KIND, KIND_CLOSE)
    closing.put(CHANNEL, channel)
    closing.put(TOTAL, len(chunks))
    yield from ctx.send(target, closing)
    return channel


def recv_stream(ctx, window: int = DEFAULT_WINDOW,
                timeout: float = 60.0,
                ack_every: int = 1) -> bytes:
    """Accept one inbound stream (generator); returns the full payload.

    Handles the open handshake, reorders chunks, suppresses duplicates,
    and acknowledges the highest contiguous sequence.
    """
    open_message = yield from ctx.recv(
        timeout=timeout, match=lambda m: _is_stream(m, kind=KIND_OPEN))
    channel = open_message.briefcase.get_text(CHANNEL)
    total = int(open_message.briefcase.get_json(TOTAL))
    sender = open_message.briefcase.get_text(wellknown.REPLY_TO)
    grant = Briefcase()
    grant.put(KIND, KIND_GRANT)
    grant.put(CHANNEL, channel)
    grant.put(WINDOW, window)
    yield from ctx.reply(open_message, grant)

    received = {}
    contiguous = -1
    since_ack = 0
    while len(received) < total:
        message = yield from ctx.recv(
            timeout=timeout, match=lambda m: _is_stream(m, channel))
        kind = message.briefcase.get_text(KIND)
        if kind == KIND_CLOSE:
            continue  # the close may race ahead of a retransmit window
        if kind != KIND_DATA:
            continue
        seq = int(message.briefcase.get_json(SEQ))
        if seq not in received:
            received[seq] = message.briefcase.get_first(DATA).data
            while contiguous + 1 in received:
                contiguous += 1
        since_ack += 1
        if since_ack >= ack_every or len(received) == total:
            since_ack = 0
            ack_bc = Briefcase()
            ack_bc.put(KIND, KIND_ACK)
            ack_bc.put(CHANNEL, channel)
            ack_bc.put(ACK, contiguous)
            yield from ctx.send(AgentUri.parse(sender), ack_bc)
    # Consume the close if it has not arrived yet.
    try:
        yield from ctx.recv(
            timeout=1.0, match=lambda m: _is_stream(m, channel, KIND_CLOSE))
    except CommTimeoutError:
        pass
    return b"".join(received[i] for i in range(total))
