"""Synthetic web-site generator.

Stands in for the paper's real workload — the University of Tromsø CS
department web server: *"the Webbot scanned 917 html pages containing 3
MBytes on our web-server"*, with the assumption *"that all pages can
eventually be reached from the topmost index page"*.

The generator builds a site with:

- a **tree backbone** rooted at ``/index.html`` guaranteeing reachability,
  plus random cross links, giving a controllable depth profile;
- **lognormal page sizes** scaled so the total hits a byte budget;
- injected **dead internal links** (hrefs to paths that do not exist —
  what the link checker is mining for);
- **external links** to other hosts, a fraction of them dead (these are
  the links Webbot logs as *rejected* under a prefix constraint and that
  the mwWebbot wrapper validates in its second pass).

Everything is driven by a :class:`~repro.sim.rng.RandomStream`, so a site
is a pure function of its spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStream, stream_from
from repro.web.page import Page, make_filler, render_page


@dataclass(frozen=True)
class SiteSpec:
    """Parameters for one generated site.

    Beyond the basic page/link structure, two realism knobs exercise the
    robot's full feature set:

    - ``redirect_fraction``: a fraction of links point at 301-redirect
      paths (``redirect_dead_fraction`` of those redirect to a missing
      target — dead links hiding behind a redirect);
    - ``robots_disallow`` + ``private_pages``: extra pages under
      disallowed prefixes, linked from public pages; a compliant robot
      must reject (not fetch) them.
    """

    host: str = "www.cs.example.edu"
    n_pages: int = 100
    total_bytes: int = 330_000
    links_per_page: float = 8.0
    dead_internal_fraction: float = 0.03
    external_link_fraction: float = 0.10
    external_hosts: Tuple[str, ...] = ()
    external_dead_fraction: float = 0.25
    size_sigma: float = 0.6
    cross_link_factor: float = 0.5
    redirect_fraction: float = 0.0
    redirect_dead_fraction: float = 0.3
    robots_disallow: Tuple[str, ...] = ()
    private_pages: int = 0
    asset_fraction: float = 0.0
    max_age_days: float = 1000.0
    seed: int = 0

    def __post_init__(self):
        if self.n_pages < 1:
            raise ValueError("a site needs at least one page")
        if self.total_bytes < self.n_pages * 64:
            raise ValueError("total_bytes too small for n_pages")
        for name in ("dead_internal_fraction", "external_link_fraction",
                     "external_dead_fraction", "redirect_fraction",
                     "redirect_dead_fraction", "asset_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.private_pages and not self.robots_disallow:
            raise ValueError("private_pages need robots_disallow prefixes")
        if self.private_pages < 0:
            raise ValueError("private_pages must be non-negative")


@dataclass
class SiteTruth:
    """Ground truth about the generated link structure."""

    dead_internal: List[Tuple[str, str]] = field(default_factory=list)
    external: List[Tuple[str, str]] = field(default_factory=list)
    dead_external: List[Tuple[str, str]] = field(default_factory=list)
    redirect_alive: List[Tuple[str, str]] = field(default_factory=list)
    redirect_dead: List[Tuple[str, str]] = field(default_factory=list)
    robots_blocked: List[Tuple[str, str]] = field(default_factory=list)
    depth_of: Dict[str, int] = field(default_factory=dict)

    @property
    def dead_total(self) -> int:
        return len(self.dead_internal) + len(self.dead_external) + \
            len(self.redirect_dead)

    def pages_within_depth(self, depth: int) -> int:
        return sum(1 for d in self.depth_of.values() if d <= depth)


@dataclass
class Site:
    """A generated site: host name, page map, redirects, robots policy,
    and ground truth."""

    host: str
    pages: Dict[str, Page]
    root_path: str
    truth: SiteTruth
    redirects: Dict[str, str] = field(default_factory=dict)
    robots_txt: Optional[str] = None

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def total_bytes(self) -> int:
        return sum(page.size for page in self.pages.values())

    @property
    def root_url(self) -> str:
        return f"http://{self.host}{self.root_path}"

    def has_path(self, path: str) -> bool:
        return path in self.pages


def _page_paths(n_pages: int, rng: RandomStream) -> List[str]:
    """Paths arranged into a few directories, root first."""
    paths = ["/index.html"]
    n_dirs = max(1, n_pages // 25)
    dir_names = [f"/d{d:02d}" for d in range(n_dirs)]
    for i in range(1, n_pages):
        directory = dir_names[rng.zipf_index(n_dirs, skew=0.8)]
        paths.append(f"{directory}/p{i:05d}.html")
    return paths


def _page_sizes(spec: SiteSpec, rng: RandomStream) -> List[int]:
    """Lognormal sizes rescaled to sum exactly to the byte budget."""
    raws = [rng.bounded_lognormal(0.0, spec.size_sigma, 0.05, 20.0)
            for _ in range(spec.n_pages)]
    scale = spec.total_bytes / sum(raws)
    sizes = [max(200, int(raw * scale)) for raw in raws]
    # Nudge the first page to absorb rounding drift.
    sizes[0] = max(200, sizes[0] + spec.total_bytes - sum(sizes))
    return sizes


def generate_site(spec: SiteSpec,
                  rng: Optional[RandomStream] = None) -> Site:
    """Build a site deterministically from its spec."""
    rng = stream_from(rng if rng is not None else spec.seed, "site")
    structure_rng = rng.fork("structure")
    paths = _page_paths(spec.n_pages, structure_rng)
    sizes = _page_sizes(spec, rng.fork("sizes"))
    truth = SiteTruth()

    # Tree backbone: each page's parent is a random earlier page, biased
    # toward low indices so the tree stays broad near the root.
    children: Dict[int, List[int]] = {i: [] for i in range(spec.n_pages)}
    depth = {0: 0}
    for i in range(1, spec.n_pages):
        parent = structure_rng.zipf_index(i, skew=0.7)
        children[parent].append(i)
        depth[i] = depth[parent] + 1
    truth.depth_of = {paths[i]: d for i, d in depth.items()}

    link_rng = rng.fork("links")
    outgoing: Dict[int, List[str]] = {i: [] for i in range(spec.n_pages)}
    for i in range(spec.n_pages):
        outgoing[i].extend(paths[c] for c in children[i])

    # Cross links between random page pairs, on top of the backbone.
    n_cross = int(spec.n_pages * spec.links_per_page *
                  spec.cross_link_factor)
    for _ in range(n_cross):
        src = link_rng.randint(0, spec.n_pages - 1)
        dst = link_rng.randint(0, spec.n_pages - 1)
        outgoing[src].append(paths[dst])

    # Dead internal links: hrefs to paths nothing generates.
    n_links_planned = sum(len(v) for v in outgoing.values())
    n_dead = int(n_links_planned * spec.dead_internal_fraction)
    for d in range(n_dead):
        src = link_rng.randint(0, spec.n_pages - 1)
        href = f"/missing/gone{d:04d}.html"
        outgoing[src].append(href)
        truth.dead_internal.append((paths[src], href))

    # Redirect links: hrefs to /moved/* paths that 301 elsewhere; a
    # fraction of the redirect targets do not exist (dead-behind-301).
    redirects: Dict[str, str] = {}
    n_redirects = int(n_links_planned * spec.redirect_fraction)
    for r in range(n_redirects):
        src = link_rng.randint(0, spec.n_pages - 1)
        redirect_path = f"/moved/r{r:04d}.html"
        if link_rng.chance(spec.redirect_dead_fraction):
            redirects[redirect_path] = f"/missing/rt{r:04d}.html"
            truth.redirect_dead.append((paths[src], redirect_path))
        else:
            target = paths[link_rng.randint(0, spec.n_pages - 1)]
            redirects[redirect_path] = target
            truth.redirect_alive.append((paths[src], redirect_path))
        outgoing[src].append(redirect_path)

    # Assets (images/stylesheets): fetched, typed, but never parsed for
    # links — they exercise the robot's content-type statistics.
    asset_specs: List[Tuple[str, str]] = []
    n_assets = int(spec.n_pages * spec.asset_fraction)
    for a in range(n_assets):
        kind = ("/img/pic{:03d}.gif", "image/gif") if a % 2 == 0 else \
            ("/style/s{:03d}.css", "text/css")
        asset_path = kind[0].format(a)
        asset_specs.append((asset_path, kind[1]))
        src = link_rng.randint(0, spec.n_pages - 1)
        outgoing[src].append(asset_path)

    # Robots-disallowed pages: alive, linked, but off limits.
    private_paths: List[str] = []
    robots_txt: Optional[str] = None
    if spec.robots_disallow:
        robots_txt = "User-agent: *\n" + "".join(
            f"Disallow: {prefix}\n" for prefix in spec.robots_disallow)
        base = spec.robots_disallow[0].rstrip("/")
        for k in range(spec.private_pages):
            private_path = f"{base}/s{k:03d}.html"
            private_paths.append(private_path)
            src = link_rng.randint(0, spec.n_pages - 1)
            outgoing[src].append(private_path)
            truth.robots_blocked.append((paths[src], private_path))

    # External links (absolute URLs to other hosts).
    if spec.external_hosts:
        n_external = int(n_links_planned * spec.external_link_fraction)
        for e in range(n_external):
            src = link_rng.randint(0, spec.n_pages - 1)
            ext_host = spec.external_hosts[
                link_rng.zipf_index(len(spec.external_hosts), skew=0.5)]
            if link_rng.chance(spec.external_dead_fraction):
                href = f"http://{ext_host}/missing/ext{e:04d}.html"
                truth.dead_external.append((paths[src], href))
            else:
                href = f"http://{ext_host}/index.html"
            outgoing[src].append(href)
            truth.external.append((paths[src], href))

    shuffle_rng = rng.fork("shuffle")
    age_rng = rng.fork("ages")
    pages: Dict[str, Page] = {}
    for i, path in enumerate(paths):
        links = list(outgoing[i])
        shuffle_rng.shuffle(links)
        anchors = [f"ref {j}" for j in range(len(links))]
        page = render_page(
            path, title=f"{spec.host}{path}", links=links,
            anchor_texts=anchors, target_bytes=sizes[i])
        page.age_days = age_rng.uniform(0.0, spec.max_age_days)
        pages[path] = page
    for private_path in private_paths:
        page = render_page(
            private_path, title=f"private {private_path}", links=[],
            anchor_texts=[], target_bytes=400)
        page.age_days = age_rng.uniform(0.0, spec.max_age_days)
        pages[private_path] = page
    for asset_path, content_type in asset_specs:
        body = make_filler(600, salt=len(asset_path))
        pages[asset_path] = Page(
            path=asset_path, html=body, links=[],
            age_days=age_rng.uniform(0.0, spec.max_age_days),
            content_type=content_type)
    return Site(host=spec.host, pages=pages, root_path=paths[0],
                truth=truth, redirects=redirects, robots_txt=robots_txt)


def external_stub_site(host: str, n_pages: int = 1,
                       page_bytes: int = 2_000) -> Site:
    """A minimal site for an external host (just enough to answer HEADs)."""
    spec = SiteSpec(host=host, n_pages=n_pages,
                    total_bytes=max(page_bytes * n_pages, n_pages * 64 + 64),
                    links_per_page=0.0, dead_internal_fraction=0.0,
                    external_link_fraction=0.0, seed=hash(host) & 0xFFFF)
    return generate_site(spec)


# -- the paper's workload ------------------------------------------------------

#: Page count from section 5: "the Webbot scanned 917 html pages".
PAPER_N_PAGES = 917
#: Volume from section 5: "containing 3 MBytes".
PAPER_TOTAL_BYTES = 3_000_000
#: Webbot "became unstable with a search tree deeper than 4".
PAPER_MAX_DEPTH = 4


def paper_site_spec(external_hosts: Sequence[str] = ("www.w3.org",
                                                     "www.cornell.edu"),
                    seed: int = 2000) -> SiteSpec:
    """The E1 workload: 917 pages / 3 MB with external + dead links."""
    return SiteSpec(
        host="www.cs.uit.no",
        n_pages=PAPER_N_PAGES,
        total_bytes=PAPER_TOTAL_BYTES,
        links_per_page=8.0,
        dead_internal_fraction=0.03,
        external_link_fraction=0.08,
        external_hosts=tuple(external_hosts),
        external_dead_fraction=0.12,
        seed=seed,
    )
