"""Minimal URL handling for the simulated web.

The simulated web only speaks ``http`` URLs of the form
``http://host[:port]/path``; this module parses, joins, and normalises
them.  It is intentionally small: scheme-relative URLs, query strings,
and userinfo are out of scope for the paper's workload (a 1999 intranet
link checker), but fragments are handled because real pages contain
``#section`` anchors that a link checker must strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class UrlError(ValueError):
    """A string could not be interpreted as a supported URL."""


DEFAULT_HTTP_PORT = 80


@dataclass(frozen=True)
class Url:
    """An absolute http URL, normalised."""

    host: str
    port: int
    path: str

    def __str__(self) -> str:
        port = "" if self.port == DEFAULT_HTTP_PORT else f":{self.port}"
        return f"http://{self.host}{port}{self.path}"

    @property
    def site(self) -> str:
        """The host[:port] part identifying the server."""
        port = "" if self.port == DEFAULT_HTTP_PORT else f":{self.port}"
        return f"{self.host}{port}"

    def with_path(self, path: str) -> "Url":
        return Url(self.host, self.port, normalize_path(path))


def normalize_path(path: str) -> str:
    """Resolve ``.``/``..`` segments and collapse ``//``; strip fragments."""
    path = path.split("#", 1)[0]
    if not path.startswith("/"):
        path = "/" + path
    segments = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def parse(text: str) -> Url:
    """Parse an absolute http URL."""
    if not isinstance(text, str):
        raise UrlError(f"not a URL: {text!r}")
    stripped = text.strip()
    if not stripped.lower().startswith("http://"):
        raise UrlError(f"unsupported or relative URL: {text!r}")
    rest = stripped[len("http://"):]
    netloc, slash, path = rest.partition("/")
    if not netloc:
        raise UrlError(f"missing host in URL: {text!r}")
    host, colon, port_text = netloc.partition(":")
    if colon:
        try:
            port = int(port_text)
        except ValueError:
            raise UrlError(f"invalid port in URL: {text!r}") from None
        if not 0 < port < 65536:
            raise UrlError(f"port out of range in URL: {text!r}")
    else:
        port = DEFAULT_HTTP_PORT
    full_path = "/" + path if slash else "/"
    return Url(host.lower(), port, normalize_path(full_path))


def is_absolute(text: str) -> bool:
    """True if the string names a scheme (``http://...``)."""
    return "://" in text


def join(base: Url, reference: str) -> Url:
    """Resolve ``reference`` (absolute or relative) against ``base``.

    Mirrors the subset of RFC 3986 resolution a link checker needs:
    absolute URLs replace the base; root-relative paths replace the path;
    other relative paths resolve against the base path's directory.
    """
    reference = reference.strip()
    if not reference or reference.startswith("#"):
        return base
    if is_absolute(reference):
        return parse(reference)
    if reference.startswith("/"):
        return base.with_path(reference)
    directory = base.path.rsplit("/", 1)[0] + "/"
    return base.with_path(directory + reference)


def same_site(a: Url, b: Url) -> bool:
    return a.host == b.host and a.port == b.port


def has_prefix(url: Url, prefix: str) -> bool:
    """True when the URL string starts with ``prefix`` (Webbot's -prefix
    constraint compares plain string prefixes of the normalised URL)."""
    return str(url).startswith(prefix)
