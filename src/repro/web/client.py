"""Simulated HTTP client.

This is the seam that lets *unmodified synchronous programs* (the Webbot)
run inside the virtual-time simulation: every request's network transfer,
server service time, and client-side processing is charged to a
:class:`~repro.sim.ledger.CostLedger` instead of blocking.  The hosting
agent later sleeps for the accumulated total (see
:mod:`repro.sim.ledger` for why this is exact here).

The same client class serves both deployment styles in the paper's
experiment:

- the **stationary** robot runs on the client workstation, so every page
  crosses the LAN/WAN link;
- the **mobile** robot runs on the web-server host itself, so requests
  traverse only the loopback link.

The only difference is ``origin_host``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.host import SimHost
from repro.sim.ledger import CostLedger
from repro.sim.network import LinkDownError, Network
from repro.web import urls
from repro.web.server import HttpRequest, WebDeployment


@dataclass(frozen=True)
class ClientModel:
    """Client-side timing model (reference CPU seconds).

    ``per_byte_cpu`` covers receiving and handling response data on the
    client host (protocol handling, copying, parsing by the caller);
    ``connect_fail_seconds`` is the timeout burned on a host that does
    not resolve or answer; ``handshake_rtts`` models HTTP/1.0's
    connection-per-request behaviour (one TCP setup round trip before
    each request, paid in link latency).
    """

    per_request_cpu: float = 0.0005
    per_byte_cpu: float = 1.5e-6
    connect_fail_seconds: float = 0.25
    handshake_rtts: int = 1


@dataclass(frozen=True)
class ClientResponse:
    """What the caller of the HTTP client sees."""

    url: str
    status: int
    body: str = ""
    location: Optional[str] = None
    content_type: str = "text/html"
    age_days: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def failed_to_connect(self) -> bool:
        return self.status == 0


class SimHttpClient:
    """A synchronous, cost-accounting HTTP client bound to one host."""

    def __init__(self, origin_host: SimHost, network: Network,
                 deployment: WebDeployment, ledger: Optional[CostLedger] = None,
                 model: Optional[ClientModel] = None):
        self.origin_host = origin_host
        self.network = network
        self.deployment = deployment
        self.ledger = ledger if ledger is not None else CostLedger()
        self.model = model or ClientModel()
        self.requests_made = 0

    # -- public API --------------------------------------------------------------

    def get(self, url: str) -> ClientResponse:
        return self.request("GET", url)

    def head(self, url: str) -> ClientResponse:
        return self.request("HEAD", url)

    def request(self, method: str, url: str) -> ClientResponse:
        """Perform a request, charging all costs to the ledger."""
        self.requests_made += 1
        try:
            parsed = urls.parse(url)
        except urls.UrlError:
            return ClientResponse(url=url, status=0)
        server = self.deployment.resolve(parsed)
        if server is None:
            self.ledger.add("connect-fail", self.model.connect_fail_seconds)
            return ClientResponse(url=str(parsed), status=0)

        request = HttpRequest(method=method, path=parsed.path)
        src = self.origin_host.name
        dst = server.host.name
        try:
            for _ in range(self.model.handshake_rtts):
                # TCP setup: two latency-only crossings (SYN / SYN-ACK).
                self.ledger.add_network(self.network.charge(src, dst, 0), 0)
                self.ledger.add_network(self.network.charge(dst, src, 0), 0)
            seconds_out = self.network.charge(src, dst, request.wire_bytes)
        except LinkDownError:
            self.ledger.add("connect-fail", self.model.connect_fail_seconds)
            return ClientResponse(url=str(parsed), status=0)
        self.ledger.add_network(seconds_out, request.wire_bytes)

        response, service_seconds = server.handle(request)
        self.ledger.add_server(service_seconds)

        seconds_back = self.network.charge(dst, src, response.wire_bytes)
        self.ledger.add_network(seconds_back, response.wire_bytes)

        handling = self.origin_host.charge_compute(
            self.model.per_request_cpu +
            len(response.body.encode("utf-8")) * self.model.per_byte_cpu)
        self.ledger.add_cpu(handling)

        return ClientResponse(url=str(parsed), status=response.status,
                              body=response.body,
                              location=response.location,
                              content_type=response.content_type,
                              age_days=response.age_days)

    @property
    def is_local_to(self) -> str:
        """Name of the host this client issues requests from."""
        return self.origin_host.name
