"""Simulated web servers.

A :class:`WebServer` binds a generated :class:`~repro.web.site.Site` to a
:class:`~repro.sim.host.SimHost` and answers GET/HEAD requests with the
page bodies and status codes a real 1999 HTTP server would.  Service time
is charged per request through the host's CPU model.

A :class:`WebDeployment` is the "DNS + internet" of a simulation: the
registry mapping ``host[:port]`` to servers, shared by all HTTP clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.sim.host import SimHost
from repro.web import urls
from repro.web.site import Site

#: Approximate HTTP/1.0 header overheads, used for wire accounting.
REQUEST_OVERHEAD_BYTES = 80
RESPONSE_OVERHEAD_BYTES = 160

STATUS_REASONS = {
    200: "OK",
    301: "Moved Permanently",
    404: "Not Found",
    501: "Not Implemented",
}


@dataclass(frozen=True)
class HttpRequest:
    """A parsed request as the server sees it."""

    method: str
    path: str

    @property
    def wire_bytes(self) -> int:
        return REQUEST_OVERHEAD_BYTES + len(self.method) + len(self.path)


@dataclass(frozen=True)
class HttpResponse:
    """A server response; ``body`` is empty for HEAD and error statuses.

    ``location`` carries the absolute redirect target for 3xx statuses
    (1999-era servers sent absolute Location URLs).
    """

    status: int
    body: str = ""
    content_length: int = 0
    location: Optional[str] = None
    content_type: str = "text/html"
    age_days: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return 300 <= self.status < 400 and self.location is not None

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def wire_bytes(self) -> int:
        return RESPONSE_OVERHEAD_BYTES + len(self.body.encode("utf-8"))


@dataclass(frozen=True)
class ServerModel:
    """Timing model for request handling (reference CPU seconds)."""

    per_request_cpu: float = 0.003
    per_kilobyte_cpu: float = 0.0002

    def service_seconds(self, response: HttpResponse) -> float:
        size_kb = len(response.body.encode("utf-8")) / 1024.0
        return self.per_request_cpu + size_kb * self.per_kilobyte_cpu


class WebServer:
    """One site served from one simulated host."""

    def __init__(self, host: SimHost, site: Site,
                 model: Optional[ServerModel] = None):
        self.host = host
        self.site = site
        self.model = model or ServerModel()
        self.requests_served = 0
        self.bytes_served = 0

    @property
    def site_key(self) -> str:
        return self.site.host

    def handle(self, request: HttpRequest) -> "tuple[HttpResponse, float]":
        """Process a request; returns (response, service_seconds)."""
        self.requests_served += 1
        if request.method not in ("GET", "HEAD"):
            response = HttpResponse(501)
        else:
            path = urls.normalize_path(request.path)
            if path == "/robots.txt" and self.site.robots_txt is not None:
                body = "" if request.method == "HEAD" else \
                    self.site.robots_txt
                response = HttpResponse(
                    200, body, content_length=len(self.site.robots_txt))
            elif path in self.site.redirects:
                target = self.site.redirects[path]
                location = target if "://" in target else \
                    f"http://{self.site.host}{target}"
                response = HttpResponse(301, location=location)
            else:
                page = self.site.pages.get(path)
                if page is None:
                    body = "" if request.method == "HEAD" else \
                        f"<html><body>404 Not Found: {path}</body></html>"
                    response = HttpResponse(404, body,
                                            content_length=len(body))
                else:
                    body = "" if request.method == "HEAD" else page.html
                    response = HttpResponse(
                        200, body, content_length=page.size,
                        content_type=page.content_type,
                        age_days=page.age_days)
        self.bytes_served += len(response.body.encode("utf-8"))
        seconds = self.host.charge_compute(
            self.model.service_seconds(response))
        return response, seconds


class WebDeployment:
    """All the web servers of a simulated internet, keyed by site."""

    def __init__(self, servers: Iterable[WebServer] = ()):
        self._servers: Dict[str, WebServer] = {}
        for server in servers:
            self.add(server)

    def add(self, server: WebServer) -> WebServer:
        key = server.site_key
        if key in self._servers:
            raise ValueError(f"duplicate web server for {key!r}")
        self._servers[key] = server
        return server

    def resolve(self, url: urls.Url) -> Optional[WebServer]:
        """The server answering for this URL, or None (host unknown)."""
        return self._servers.get(url.site)

    def servers(self) -> Iterable[WebServer]:
        return self._servers.values()

    def __contains__(self, site_key: str) -> bool:
        return site_key in self._servers

    def __len__(self) -> int:
        return len(self._servers)
