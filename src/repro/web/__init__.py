"""Simulated web substrate: URLs, pages, sites, servers, HTTP clients.

Replaces the paper's real workload (the Tromsø CS department web server)
with a parameterised synthetic equivalent; ``paper_site_spec()`` is the
exact E1 configuration (917 pages, 3 MB).
"""

from repro.web import urls
from repro.web.client import ClientModel, ClientResponse, SimHttpClient
from repro.web.page import Page, make_filler, render_page
from repro.web.server import (
    HttpRequest,
    HttpResponse,
    ServerModel,
    WebDeployment,
    WebServer,
)
from repro.web.site import (
    PAPER_MAX_DEPTH,
    PAPER_N_PAGES,
    PAPER_TOTAL_BYTES,
    Site,
    SiteSpec,
    SiteTruth,
    external_stub_site,
    generate_site,
    paper_site_spec,
)

__all__ = [
    "urls",
    "ClientModel", "ClientResponse", "SimHttpClient",
    "Page", "make_filler", "render_page",
    "HttpRequest", "HttpResponse", "ServerModel", "WebDeployment",
    "WebServer",
    "PAPER_MAX_DEPTH", "PAPER_N_PAGES", "PAPER_TOTAL_BYTES",
    "Site", "SiteSpec", "SiteTruth", "external_stub_site", "generate_site",
    "paper_site_spec",
]
