"""HTML page model for the synthetic web.

Pages are real HTML text: the Webbot clone extracts links from the markup
with its own parser, exactly as the original C Webbot parsed real pages,
so the site generator and the robot never share a data structure — only
bytes.  Each :class:`Page` also remembers the links it embedded, which
gives tests a ground truth to compare the robot's extraction against.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import List


@dataclass
class Page:
    """One generated web resource (HTML document or asset).

    ``age_days`` models the Last-Modified header a 1999 server would
    send; ``content_type`` distinguishes documents from assets — both
    feed the Webbot's "age and type of web pages encountered" stats.
    """

    path: str
    html: str
    links: List[str] = field(default_factory=list)
    age_days: float = 0.0
    content_type: str = "text/html"

    @property
    def size(self) -> int:
        """Body size in bytes (UTF-8)."""
        return len(self.html.encode("utf-8"))

    @property
    def is_html(self) -> bool:
        return self.content_type.startswith("text/html")


_FILLER_WORDS = (
    "network agent mobile briefcase firewall virtual machine wrapper "
    "itinerant mining bandwidth latency server crawl link validation "
    "tromso cornell distributed system prototype language independent "
    "code state snapshot folder element principal instance"
).split()


def make_filler(nbytes: int, salt: int = 0) -> str:
    """Deterministic prose filler of approximately ``nbytes`` bytes."""
    if nbytes <= 0:
        return ""
    words = []
    size = 0
    i = salt
    while size < nbytes:
        word = _FILLER_WORDS[i % len(_FILLER_WORDS)]
        words.append(word)
        size += len(word) + 1
        i += 7
    return " ".join(words)[:nbytes]


def render_page(path: str, title: str, links: List[str],
                anchor_texts: List[str], target_bytes: int) -> Page:
    """Render a page containing the given hrefs, padded to ~target size.

    The returned page is at least large enough to hold its own structure;
    ``target_bytes`` below that minimum yields the unpadded page.
    """
    if len(links) != len(anchor_texts):
        raise ValueError("links and anchor_texts must align")
    items = "\n".join(
        f'  <li><a href="{_html.escape(href, quote=True)}">'
        f"{_html.escape(text)}</a></li>"
        for href, text in zip(links, anchor_texts))
    skeleton = (
        "<!DOCTYPE html>\n"
        f"<html>\n<head><title>{_html.escape(title)}</title></head>\n"
        "<body>\n"
        f"<h1>{_html.escape(title)}</h1>\n"
        "<p>{filler}</p>\n"
        "<ul>\n"
        f"{items}\n"
        "</ul>\n"
        "</body>\n</html>\n")
    overhead = len(skeleton.format(filler="").encode("utf-8"))
    filler = make_filler(max(0, target_bytes - overhead), salt=len(path))
    return Page(path=path, html=skeleton.format(filler=filler),
                links=list(links))
