"""Named partition scenarios: exactly-once delivery under split-brain.

This is the workload behind ``repro partition``: the same home + workers
LAN and mobility-wrapped survey agent as :mod:`repro.chaos.scenario`,
but the fault plans aim squarely at the *exactly-once* machinery —
group partitions that heal, duplicate/reorder/corrupt delivery storms,
and asymmetric link failures that eat acks while transports get through.

The survey briefcase carries an :data:`~repro.core.wellknown.INCARNATION`
stamp and the rear guard tracks it, so a split brain that produces two
live copies of the agent ends with the stale incarnation detected and
killed.  Every node makes the chaos principal a site owner — the rear
guard is the application's control plane and needs ``kill`` rights on
the landing pads it guards.

The returned document is **byte-for-byte identical** across runs with
the same seed and scenario (everything is virtual-time and seeded);
``repro partition`` run twice is the CI determinism check.  Its
``exactly_once`` block is the acceptance evidence: per-host dedup
conservation (``offered == accepted + duplicates + rejected``),
suppressed duplicate landings, tombstone refusals, and no site visited
twice in the winning report.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.errors import CommTimeoutError, TaxError
from repro.core.retry import install_retry
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.chaos.engine import ChaosEngine
from repro.chaos.rearguard import RearGuard
from repro.chaos.scenario import (
    AGENT_NAME,
    CHAOS_PRINCIPAL,
    CHAOS_RETRY,
    DRAWER,
    HEARTBEAT_SECONDS,
    HEARTBEAT_TIMEOUT,
    HOME_HOST,
    POLL_SECONDS,
    STOP_WORK_SECONDS,
    _counter_total,
    build_chaos_cluster,
    build_survey_program,
)
from repro.sim.faults import FaultPlan
from repro.sim.rng import retry_stream
from repro.wrappers.fault import CheckpointWrapper
from repro.wrappers.mobility import make_task_briefcase
from repro.wrappers.monitor import MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers

SCENARIO_NAMES = ("partition-storm", "split-brain", "asym-ack-loss")

#: Per-hop ack patience carried in the survey briefcase.  Short enough
#: that a lost ack triggers a re-send within the scenario (exercising
#: the landing handshake) instead of stalling out the whole run on the
#: default meet timeout.
HOP_TIMEOUTS = {
    "partition-storm": 5.0,
    "split-brain": 5.0,
    "asym-ack-loss": 1.5,
}

SCENARIO_DESCRIPTIONS = {
    "partition-storm":
        "duplicate/reorder/corrupt storm + a group partition that "
        "heals mid-itinerary; the flagship exactly-once run",
    "split-brain":
        "home is cut off from every worker; the rear guard relaunches "
        "from checkpoint, the heal resurrects the orphan twin, the "
        "guard detects the stale incarnation and kills it",
    "asym-ack-loss":
        "one-way link failure eats acks while transports land, so "
        "retried migrations must be re-acked, not re-launched",
}


def named_partition_plan(name: str, workers: List[str]) -> FaultPlan:
    """The built-in plans ``repro partition --scenario`` accepts."""
    plan = FaultPlan(name=name)
    if name == "partition-storm":
        plan.duplicate_probability = 0.25
        plan.reorder_probability = 0.2
        plan.wire_corrupt_probability = 0.05
        return plan.split_brain(
            2.0, 1.5, [HOME_HOST, workers[0]], workers[1:])
    if name == "split-brain":
        plan.duplicate_probability = 0.1
        return plan.split_brain(1.2, 3.3, [HOME_HOST], workers)
    if name == "asym-ack-loss":
        plan.duplicate_probability = 0.15
        # Down from t=0 so the very first migration's ack is eaten:
        # the transport lands at the worker, the ack dies on the way
        # back, and the origin's re-sends must be re-acked through the
        # landing registry rather than re-launched.
        plan.link_down_oneway(0.0, workers[0], HOME_HOST)
        return plan.link_up_oneway(2.5, workers[0], HOME_HOST)
    raise ValueError(f"unknown partition scenario {name!r} "
                     f"(have {list(SCENARIO_NAMES)})")


def run_partition(seed: int = 7, scenario: str = "partition-storm",
                  workers: int = 3, recv_timeout: float = 600.0) -> Dict:
    """Run the survey under ``scenario``; return the JSON document."""
    cluster, worker_names = build_chaos_cluster(workers)
    fault_plan = named_partition_plan(scenario, worker_names)
    engine = ChaosEngine(cluster, fault_plan, seed=seed)
    auditor = cluster.enable_conservation()
    home = cluster.node(HOME_HOST)
    cabinet_uri = str(AgentUri(host=HOME_HOST, name="ag_cabinet"))
    for node in cluster.nodes.values():
        # The guard must be able to kill orphan twins anywhere.
        node.firewall.policy.add_owner(CHAOS_PRINCIPAL)

    guard = RearGuard(
        home, cabinet=cabinet_uri, drawer=DRAWER,
        candidates=[str(cluster.vm_uri(HOME_HOST))],
        principal=CHAOS_PRINCIPAL, tag=AGENT_NAME,
        heartbeat_timeout=HEARTBEAT_TIMEOUT, poll_interval=POLL_SECONDS,
        expected_incarnation=0)
    guard.ctx.configure_retry(CHAOS_RETRY,
                              retry_stream(seed, "rear_guard"))
    # Twin kills cross hosts: the guard's admin requests must arrive
    # authenticated or the destination firewall refuses them.
    guard.ctx.configure_signing(cluster.keychain)

    program = build_survey_program(cluster.keychain)
    stops = [{"vm": str(cluster.vm_uri(host)),
              "args": {"site": host, "work": STOP_WORK_SECONDS}}
             for host in worker_names]
    briefcase = make_task_briefcase(
        program, stops, home_uri=guard.uri, agent_name=AGENT_NAME,
        hop_timeout=HOP_TIMEOUTS[scenario])
    briefcase.put(wellknown.INCARNATION, "0")
    install_wrappers(briefcase, [
        WrapperSpec.by_ref(MonitorWrapper, {
            "monitor": guard.uri, "tag": AGENT_NAME,
            "heartbeat": HEARTBEAT_SECONDS}),
        WrapperSpec.by_ref(CheckpointWrapper, {
            "cabinet": cabinet_uri, "drawer": DRAWER}),
    ])
    install_retry(briefcase, CHAOS_RETRY, seed=seed)

    engine.start()
    cluster.kernel.spawn(guard.watch(), name="rear-guard-watch")

    def scenario_proc():
        reply = yield from guard.ctx.meet(
            cluster.vm_uri(HOME_HOST), briefcase, timeout=60.0)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        results: List[Dict] = []
        failures: List[Dict] = []
        timed_out = False
        try:
            message = yield from guard.ctx.recv(
                timeout=recv_timeout,
                match=lambda m: not guard.ctx.is_pending_reply(m))
            report = message.briefcase
            results.extend(e.as_json() for e in
                           report.folder(wellknown.RESULTS))
            failures.extend(e.as_json() for e in
                            report.folder("FAILURES"))
        except CommTimeoutError:
            timed_out = True
        # The winning report can beat an in-flight twin kill home;
        # drain the guard's pending kills (bounded) so the scenario
        # doesn't end with a detected orphan still alive.
        deadline = guard.ctx.now + HEARTBEAT_TIMEOUT * 8
        while guard.twin_kills_pending and guard.ctx.now < deadline:
            yield guard.ctx.kernel.timeout(POLL_SECONDS)
        guard.stop()
        return results, failures, timed_out

    results, failures, timed_out = cluster.run(
        scenario_proc(), name=f"partition:{scenario}")

    metrics = cluster.telemetry.metrics
    delivery = {}
    conservation_violations = []
    duplicates_suppressed = 0
    duplicate_landings = 0
    tombstone_refusals = 0
    for host_name in sorted(cluster.nodes):
        firewall = cluster.nodes[host_name].firewall
        dedup = firewall.dedup.snapshot()
        landings = firewall.landings.snapshot()
        delivery[host_name] = {"dedup": dedup, "landings": landings}
        if not dedup["conservation_holds"]:
            conservation_violations.append(host_name)
        duplicates_suppressed += dedup["duplicates"]
        duplicate_landings += landings["duplicate_landings"]
        tombstone_refusals += landings["tombstone_refusals"]

    sites = [r.get("site") for r in results]
    completed = len(results) == len(worker_names)
    exactly_once = {
        "sites_planned": len(worker_names),
        "sites_visited": len(results),
        "duplicate_site_visits": len(sites) - len(set(sites)),
        "completed": completed,
        "conservation_violations": conservation_violations,
        "duplicates_suppressed": duplicates_suppressed,
        "duplicate_landings_suppressed": duplicate_landings,
        "tombstone_refusals": tombstone_refusals,
        "landing_aborts": _counter_total(metrics, "agent.landing_aborts"),
        "twins_detected": len(guard.twins),
        "twins_killed": _counter_total(metrics, "recovery.twins_killed"),
        # The acceptance claim in one boolean: the itinerary completed,
        # no site ran twice in the winning report, and every host's
        # delivery counters balance.
        "holds": (completed and
                  len(sites) == len(set(sites)) and
                  not conservation_violations and
                  not timed_out),
    }

    document = {
        "schema": "repro.partition/1",
        "seed": seed,
        "scenario": scenario,
        "description": SCENARIO_DESCRIPTIONS[scenario],
        "plan": fault_plan.to_dict(),
        "applied": engine.applied,
        "injector": engine.injector.stats(),
        "agent": {
            "name": AGENT_NAME,
            "results": results,
            "failures": failures,
            "timed_out": timed_out,
        },
        "exactly_once": exactly_once,
        "conservation": auditor.report(),
        "delivery": delivery,
        "rear_guard": guard.stats(),
        "flight_recorder": {
            "dumps": list(cluster.telemetry.flight.dumps),
            "dumps_evicted": cluster.telemetry.flight.dumps_evicted,
        },
        "stats": {
            "faults_injected": _counter_total(metrics, "faults.injected"),
            "transport_retries": _counter_total(metrics,
                                                "transport.retries"),
            "recovery_relaunches": _counter_total(metrics,
                                                  "recovery.relaunches"),
            "vm_duplicate_landings": _counter_total(
                metrics, "vm.duplicate_landings"),
            "dead_letters": sum(len(node.firewall.pending.dead_letters)
                                for node in cluster.nodes.values()),
            "remote_bytes": cluster.network.total_remote_bytes(),
            "remote_messages": cluster.network.total_remote_messages(),
        },
        "elapsed": cluster.kernel.now,
    }
    return document


def render_partition_json(document: Dict) -> str:
    """The canonical (determinism-checkable) serialisation."""
    return json.dumps(document, sort_keys=True, indent=2)
