"""Named crash-durability scenarios: journal replay under host crashes.

This is the workload behind ``repro crashtest``: the chaos LAN and the
mobility survey agent again, but this time the agent carries **no
recovery kit at all** — no monitor, no checkpoint wrapper, no rear
guard.  Before this subsystem existed, a host crash simply ate such an
agent (the ``repro chaos --no-recovery`` baseline).  Here every host
runs a crash-durable store + write-ahead journal
(:mod:`repro.durability`), so a crashed worker replays its journal on
restart and relaunches the resident agent from its journaled arrival
blob — the un-checkpointed agent survives the crash.

Scenarios:

- ``kill-during-migration`` — the second worker is killed mid-itinerary
  while the bare agent is resident on it, and restarts later; replay
  must resurrect the agent and the itinerary must complete;
- ``torn-journal-tail`` — the same crash, but seeded storage faults
  tear the journal tail (a partial frame survives) and eat a durable
  suffix (firmware that lied about an fsync); replay must stop cleanly
  at the last good record and still recover;
- ``crash-loop`` — the worker crashes and restarts three times in a
  row, with an aggressive snapshot cadence so compaction runs during
  the loop; the relaunch-supersede protocol must not accumulate twins.

The verdict is two booleans, and ``repro crashtest`` exits non-zero
unless **both** hold: ``exactly_once.holds`` (itinerary completed, no
site visited twice in the winning report, dedup conservation on every
host) and ``conservation.holds`` (every agent instance ever spawned is
accounted for — alive, completed, moved, relaunched, or dead-lettered;
none silently lost).  Everything is virtual-time and seeded, so the
document is byte-for-byte identical across runs with the same seed and
scenario.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.core.errors import CommTimeoutError, TaxError
from repro.core.retry import install_retry
from repro.core import wellknown
from repro.chaos.engine import ChaosEngine
from repro.chaos.scenario import (
    AGENT_NAME,
    CHAOS_PRINCIPAL,
    CHAOS_RETRY,
    HOME_HOST,
    STOP_WORK_SECONDS,
    _counter_total,
    build_chaos_cluster,
    build_survey_program,
)
from repro.sim.faults import FaultPlan, StorageFaults
from repro.sim.rng import retry_stream
from repro.wrappers.mobility import make_task_briefcase

SCENARIO_NAMES = ("kill-during-migration", "torn-journal-tail",
                  "crash-loop")

SCENARIO_DESCRIPTIONS = {
    "kill-during-migration":
        "a worker dies mid-itinerary with a bare (un-checkpointed) "
        "agent resident; journal replay must resurrect it",
    "torn-journal-tail":
        "the same crash, but storage faults tear the journal tail and "
        "eat a durable suffix; replay recovers from the last good "
        "record",
    "crash-loop":
        "the worker crashes and restarts three times with aggressive "
        "snapshot compaction; no twins may accumulate",
}

#: Snapshot cadence per scenario (records between snapshots).  The
#: crash-loop cadence is aggressive on purpose: compaction must run
#: *during* the loop, not just at restart.
SNAPSHOT_INTERVALS = {
    "kill-during-migration": 64,
    "torn-journal-tail": 64,
    "crash-loop": 8,
}

#: Journal records embedded in the document (the tail of the crashed
#: worker's active segment).  Blob payloads are summarised, not
#: inlined, so the sample stays bounded.
JOURNAL_SAMPLE_LIMIT = 80

#: The worker the scenarios crash.
TARGET_INDEX = 1


def named_crash_plan(name: str, workers: List[str]) -> FaultPlan:
    """The built-in plans ``repro crashtest --scenario`` accepts."""
    target = workers[TARGET_INDEX] if len(workers) > TARGET_INDEX \
        else workers[0]
    plan = FaultPlan(name=name)
    if name == "kill-during-migration":
        # t=2.5 lands mid-way through the agent's 1.5s work slice on
        # the second worker: the crash interrupts a resident agent.
        return plan.crash(2.5, target, outage=2.5)
    if name == "torn-journal-tail":
        plan.storage = StorageFaults(
            torn_tail_probability=1.0,
            lost_suffix_probability=1.0,
            lost_suffix_max_bytes=64)
        return plan.crash(2.5, target, outage=2.5)
    if name == "crash-loop":
        # Each outage + replayed work slice takes ~2s; three crashes
        # two virtual seconds apart each interrupt the resident agent
        # (the third lands on a twice-resurrected instance).
        plan.crash(2.2, target, outage=1.2)
        plan.crash(4.2, target, outage=1.2)
        return plan.crash(6.2, target, outage=1.2)
    raise ValueError(f"unknown crashtest scenario {name!r} "
                     f"(have {list(SCENARIO_NAMES)})")


def _journal_sample(durability) -> List[dict]:
    """The tail of a host's active journal segment, blobs summarised."""
    records, torn, segment = durability.journal.read_active()
    sample = []
    for record in records[-JOURNAL_SAMPLE_LIMIT:]:
        entry = dict(record)
        blob = entry.pop("blob", None)
        if blob is not None:
            entry["blob_bytes"] = len(blob)
            entry["blob_sha256"] = hashlib.sha256(
                blob.encode("ascii")).hexdigest()[:16]
        sample.append(entry)
    return {"segment": segment, "torn": torn,
            "total_records": len(records), "tail": sample}


def run_crashtest(seed: int = 7, scenario: str = "kill-during-migration",
                  workers: int = 3, recv_timeout: float = 600.0) -> Dict:
    """Run the bare survey under ``scenario``; return the JSON document."""
    cluster, worker_names = build_chaos_cluster(workers)
    fault_plan = named_crash_plan(scenario, worker_names)
    engine = ChaosEngine(cluster, fault_plan, seed=seed)
    auditor = cluster.enable_conservation()
    hosts = cluster.enable_durability(
        injector=engine.injector,
        snapshot_interval=SNAPSHOT_INTERVALS[scenario])
    home = cluster.node(HOME_HOST)

    # The home end of the run is a plain driver context — deliberately
    # no rear guard: recovery must come from the journal, not from a
    # checkpoint relaunch.
    ctx = home.driver(name="crashtest-home", principal=CHAOS_PRINCIPAL)
    ctx.configure_retry(CHAOS_RETRY, retry_stream(seed, "home"))

    program = build_survey_program(cluster.keychain)
    stops = [{"vm": str(cluster.vm_uri(host)),
              "args": {"site": host, "work": STOP_WORK_SECONDS}}
             for host in worker_names]
    briefcase = make_task_briefcase(
        program, stops, home_uri=str(ctx.uri), agent_name=AGENT_NAME)
    # The only resilience the agent carries is transport retry: enough
    # to ride out the outage window, nothing that could re-create the
    # agent from application state.
    install_retry(briefcase, CHAOS_RETRY, seed=seed)

    engine.start()

    def scenario_proc():
        reply = yield from ctx.meet(
            cluster.vm_uri(HOME_HOST), briefcase, timeout=60.0)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        results: List[Dict] = []
        failures: List[Dict] = []
        timed_out = False
        try:
            message = yield from ctx.recv(
                timeout=recv_timeout,
                match=lambda m: not ctx.is_pending_reply(m))
            report = message.briefcase
            results.extend(e.as_json() for e in
                           report.folder(wellknown.RESULTS))
            failures.extend(e.as_json() for e in
                            report.folder("FAILURES"))
        except CommTimeoutError:
            timed_out = True
        return results, failures, timed_out

    results, failures, timed_out = cluster.run(
        scenario_proc(), name=f"crashtest:{scenario}")

    metrics = cluster.telemetry.metrics
    target = worker_names[TARGET_INDEX] if len(worker_names) > TARGET_INDEX \
        else worker_names[0]

    conservation_violations = []
    duplicates_suppressed = 0
    for host_name in sorted(cluster.nodes):
        dedup = cluster.nodes[host_name].firewall.dedup.snapshot()
        if not dedup["conservation_holds"]:
            conservation_violations.append(host_name)
        duplicates_suppressed += dedup["duplicates"]

    sites = [r.get("site") for r in results]
    completed = len(results) == len(worker_names)
    exactly_once = {
        "sites_planned": len(worker_names),
        "sites_visited": len(results),
        "duplicate_site_visits": len(sites) - len(set(sites)),
        "completed": completed,
        "conservation_violations": conservation_violations,
        "duplicates_suppressed": duplicates_suppressed,
        "holds": (completed and
                  len(sites) == len(set(sites)) and
                  not conservation_violations and
                  not timed_out),
    }

    durability = {
        host_name: {
            "disk": hosts[host_name].disk.stats(),
            "journal": hosts[host_name].journal.stats(),
            "last_replay": hosts[host_name].last_replay,
        }
        for host_name in sorted(hosts)
    }

    document = {
        "schema": "repro.crashtest/1",
        "seed": seed,
        "scenario": scenario,
        "description": SCENARIO_DESCRIPTIONS[scenario],
        "plan": fault_plan.to_dict(),
        "applied": engine.applied,
        "injector": engine.injector.stats(),
        "agent": {
            "name": AGENT_NAME,
            "results": results,
            "failures": failures,
            "timed_out": timed_out,
        },
        "exactly_once": exactly_once,
        "conservation": auditor.report(),
        "durability": durability,
        # The crashed worker's journal tail: the record taxonomy in
        # action, and the CI artifact ``--journal-dump`` writes.
        "journal_sample": _journal_sample(hosts[target]),
        "stats": {
            "host_crashes": _counter_total(metrics, "host.crashes"),
            "records_replayed": _counter_total(
                metrics, "recovery.journal_records_replayed"),
            "agents_restored": _counter_total(
                metrics, "recovery.agents_restored"),
            "ambiguous_departures": _counter_total(
                metrics, "recovery.ambiguous_departures"),
            "transport_retries": _counter_total(metrics,
                                                "transport.retries"),
            "dead_letters": sum(len(node.firewall.pending.dead_letters)
                                for node in cluster.nodes.values()),
            "remote_bytes": cluster.network.total_remote_bytes(),
            "remote_messages": cluster.network.total_remote_messages(),
        },
        "elapsed": cluster.kernel.now,
    }
    return document


def render_crashtest_json(document: Dict) -> str:
    """The canonical (determinism-checkable) serialisation."""
    return json.dumps(document, sort_keys=True, indent=2)
