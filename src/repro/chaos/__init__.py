"""Chaos harness: apply fault plans to a running cluster and recover.

- :mod:`repro.chaos.engine` — the :class:`ChaosEngine` kernel process
  that fires a :class:`repro.sim.faults.FaultPlan` against a
  :class:`repro.system.cluster.TaxCluster`;
- :mod:`repro.chaos.rearguard` — the :class:`RearGuard` coordinator that
  watches a monitored agent's heartbeats and relaunches its last
  checkpoint when the agent goes silent;
- :mod:`repro.chaos.scenario` — the named end-to-end chaos scenarios the
  ``repro chaos`` CLI command runs.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.rearguard import RearGuard

__all__ = ["ChaosEngine", "RearGuard"]
