"""ChaosEngine: fire a fault plan against a running cluster.

The engine is the *timed* half of fault injection (the probabilistic
half is the :class:`repro.sim.faults.FaultInjector` it installs on the
network): a kernel process walks the plan's sorted events and applies
each at its virtual time — link partitions and heals on the
:class:`~repro.sim.network.Network`, crashes and restarts on the
:class:`~repro.system.node.TaxNode`.

Everything the engine does is recorded in :attr:`ChaosEngine.applied`
(and counted as ``faults.injected``), so a chaos run can report exactly
which faults fired and when — and two runs with the same plan and seed
report identical sequences.
"""

from __future__ import annotations

from typing import List

from repro.sim.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    KIND_CRASH,
    KIND_HEAL,
    KIND_LINK_DOWN,
    KIND_LINK_DOWN_ONEWAY,
    KIND_LINK_UP,
    KIND_LINK_UP_ONEWAY,
    KIND_PARTITION,
    KIND_RESTART,
)


class ChaosEngine:
    """Applies one :class:`FaultPlan` to one cluster."""

    def __init__(self, cluster, plan: FaultPlan, seed: int = 0):
        self.cluster = cluster
        self.plan = plan
        self.injector = FaultInjector(plan, seed_or_stream=seed,
                                      telemetry=cluster.telemetry)
        cluster.network.fault_injector = self.injector
        #: Event dicts in firing order, each extended with what happened.
        self.applied: List[dict] = []
        self.process = None

    # -- driving --------------------------------------------------------------------

    def start(self):
        """Spawn the driver process (idempotent); returns it."""
        if self.process is None:
            self.process = self.cluster.kernel.spawn(
                self._driver(), name=f"chaos:{self.plan.name}")
        return self.process

    def _driver(self):
        kernel = self.cluster.kernel
        start = kernel.now
        for event in self.plan.sorted_events():
            delay = start + event.at - kernel.now
            if delay > 0:
                yield kernel.timeout(delay)
            self._apply(event)

    # -- applying one event ------------------------------------------------------------

    def _count(self, kind: str) -> None:
        telemetry = self.cluster.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("faults.injected", kind=kind)

    def _apply(self, event: FaultEvent) -> dict:
        network = self.cluster.network
        record = event.to_dict()
        if event.kind == KIND_LINK_DOWN:
            network.set_link_up(event.link[0], event.link[1], False)
        elif event.kind == KIND_LINK_UP:
            network.set_link_up(event.link[0], event.link[1], True)
        elif event.kind == KIND_LINK_DOWN_ONEWAY:
            network.set_link_up_oneway(event.link[0], event.link[1], False)
        elif event.kind == KIND_LINK_UP_ONEWAY:
            network.set_link_up_oneway(event.link[0], event.link[1], True)
        elif event.kind == KIND_PARTITION:
            record["links_down"] = network.partition(event.groups)
        elif event.kind == KIND_HEAL:
            record["links_healed"] = network.heal()
        elif event.kind == KIND_CRASH:
            record["killed"] = self.cluster.node(event.host).crash()
        elif event.kind == KIND_RESTART:
            self.cluster.node(event.host).restart()
        self._count(event.kind)
        self.applied.append(record)
        return record

    # -- reporting ------------------------------------------------------------------

    def report(self) -> dict:
        """What fired and what the injector rolled (JSON-friendly)."""
        return {
            "plan": self.plan.to_dict(),
            "applied": list(self.applied),
            "injector": self.injector.stats(),
        }
