"""Named chaos scenarios: the quickstart itinerary under a fault plan.

This is the workload behind ``repro chaos``: a small LAN (one home host,
three workers), a mobility-wrapped survey agent that visits every worker
and charges a fixed slice of virtual work at each stop, and a named
:class:`~repro.sim.faults.FaultPlan` fired against the cluster while the
agent travels.  With recovery enabled the agent carries the full
robustness kit — monitor wrapper with heartbeats, checkpoint wrapper,
transport retry policy — and a :class:`~repro.chaos.rearguard.RearGuard`
waits at home; without it the agent is bare (the pre-resilience
baseline).

Everything is virtual-time and seeded, so :func:`run_chaos` returns a
JSON-able document that is **byte-for-byte identical** across runs with
the same seed and plan — which is exactly what the CI determinism smoke
asserts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.briefcase import Briefcase
from repro.core.errors import CommTimeoutError, TaxError
from repro.core.retry import RetryPolicy, install_retry
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.chaos.engine import ChaosEngine
from repro.chaos.rearguard import RearGuard
from repro.obs.telemetry import Telemetry
from repro.sim.faults import FaultPlan
from repro.sim.network import BANDWIDTH_10MBIT, LATENCY_LAN
from repro.sim.rng import retry_stream
from repro.system.cluster import TaxCluster
from repro.vm import loader
from repro.wrappers.fault import CheckpointWrapper
from repro.wrappers.mobility import make_task_briefcase
from repro.wrappers.monitor import MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers

#: The world the named scenarios run on.
HOME_HOST = "home.chaos.example"
WORKER_HOSTS = ("w1.chaos.example", "w2.chaos.example", "w3.chaos.example")
CHAOS_PRINCIPAL = "chaosproject"
AGENT_NAME = "survey"
DRAWER = "chaos-survey"

#: Virtual seconds of work the survey charges at each stop.
STOP_WORK_SECONDS = 1.5

#: Heartbeat / detection cadence of the recovery kit.
HEARTBEAT_SECONDS = 0.5
HEARTBEAT_TIMEOUT = 2.0
POLL_SECONDS = 0.5

#: Retry policy generous enough to ride out a short host outage.
CHAOS_RETRY = RetryPolicy(max_attempts=6, base_delay=0.4, multiplier=2.0,
                          max_delay=4.0, jitter=0.2)

#: The carried program: charge deterministic work, report the host.
SURVEY_SOURCE = '''
def run_survey(args, env):
    """One itinerary stop: spend the configured work, name the site."""
    work = float(args.get("work", 1.5))
    env.ledger.add("survey", work, 0)
    return {"host": env.host.name, "site": args.get("site"),
            "work": work}
'''

PLAN_NAMES = ("none", "mid-crash", "crash-restart", "flaky-links")

PLAN_DESCRIPTIONS = {
    "none":
        "control run, no faults",
    "mid-crash":
        "the second worker crashes mid-itinerary and never returns; "
        "recovery must skip it and report it unreachable",
    "crash-restart":
        "same crash, but the host restarts while the recovered agent "
        "is still retrying, so the itinerary completes",
    "flaky-links":
        "no crashes, but a link flap plus probabilistic message "
        "drops/corruption that transport retries must absorb",
}


def build_survey_program(keychain, principal: str = CHAOS_PRINCIPAL,
                         archs=("x86-unix",)) -> loader.Payload:
    """Compile and sign the survey program (a tiny webbot stand-in)."""
    source = loader.pack_source(SURVEY_SOURCE, "run_survey",
                                origin="chaos-survey")
    compiled = loader.compile_source(source)
    return loader.pack_binary_list(
        [(arch, compiled) for arch in archs], keychain, principal)


def build_chaos_cluster(workers: int = 3
                        ) -> Tuple[TaxCluster, List[str]]:
    """Home + N workers on a full-mesh 10 Mbit LAN, telemetry on."""
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    names = list(WORKER_HOSTS[:workers])
    for host in [HOME_HOST] + names:
        cluster.add_node(host)
    all_hosts = [HOME_HOST] + names
    for i, a in enumerate(all_hosts):
        for b in all_hosts[i + 1:]:
            cluster.network.link(a, b, latency=LATENCY_LAN,
                                 bandwidth=BANDWIDTH_10MBIT)
    cluster.add_principal(CHAOS_PRINCIPAL, trusted=True)
    return cluster, names


def named_plan(name: str, workers: List[str]) -> FaultPlan:
    """The built-in fault plans ``repro chaos --plan`` accepts.

    - ``none``          — control run, no faults;
    - ``mid-crash``     — the second worker crashes mid-itinerary and
      never returns (recovery must skip it and report it unreachable);
    - ``crash-restart`` — same crash, but the host restarts while the
      recovered agent is still retrying, so the itinerary completes;
    - ``flaky-links``   — no crashes, but a link flap plus probabilistic
      message drops/corruption that transport retries must absorb.
    """
    target = workers[1] if len(workers) > 1 else workers[0]
    plan = FaultPlan(name=name)
    if name == "none":
        return plan
    if name == "mid-crash":
        return plan.crash(2.5, target)
    if name == "crash-restart":
        return plan.crash(2.5, target, outage=3.5)
    if name == "flaky-links":
        plan.drop_probability = 0.03
        plan.corrupt_probability = 0.01
        return plan.flap(1.0, HOME_HOST, workers[0], 0.4)
    raise ValueError(f"unknown chaos plan {name!r} "
                     f"(have {list(PLAN_NAMES)})")


def _counter_total(metrics, name: str) -> int:
    metric = metrics.get(name)
    if metric is None:
        return 0
    return int(sum(sample["value"] for sample in metric.samples()))


def run_chaos(seed: int = 7, plan: str = "mid-crash",
              recovery: bool = True, workers: int = 3,
              recv_timeout: float = 600.0) -> Dict:
    """Run the survey itinerary under ``plan``; return the JSON document.

    With ``recovery`` the agent carries heartbeat monitoring,
    per-hop checkpointing and a transport retry policy, and a rear guard
    watches from home; without it the run shows the pre-resilience
    behaviour (a crashed host simply eats the agent and the run times
    out empty).
    """
    cluster, worker_names = build_chaos_cluster(workers)
    fault_plan = named_plan(plan, worker_names)
    engine = ChaosEngine(cluster, fault_plan, seed=seed)
    auditor = cluster.enable_conservation()
    home = cluster.node(HOME_HOST)
    cabinet_uri = str(AgentUri(host=HOME_HOST, name="ag_cabinet"))

    guard = RearGuard(
        home, cabinet=cabinet_uri, drawer=DRAWER,
        candidates=[str(cluster.vm_uri(HOME_HOST))],
        principal=CHAOS_PRINCIPAL, tag=AGENT_NAME,
        heartbeat_timeout=HEARTBEAT_TIMEOUT, poll_interval=POLL_SECONDS)
    if recovery:
        guard.ctx.configure_retry(CHAOS_RETRY,
                                  retry_stream(seed, "rear_guard"))

    program = build_survey_program(cluster.keychain)
    stops = [{"vm": str(cluster.vm_uri(host)),
              "args": {"site": host, "work": STOP_WORK_SECONDS}}
             for host in worker_names]
    briefcase = make_task_briefcase(
        program, stops, home_uri=guard.uri, agent_name=AGENT_NAME)
    if recovery:
        install_wrappers(briefcase, [
            WrapperSpec.by_ref(MonitorWrapper, {
                "monitor": guard.uri, "tag": AGENT_NAME,
                "heartbeat": HEARTBEAT_SECONDS}),
            WrapperSpec.by_ref(CheckpointWrapper, {
                "cabinet": cabinet_uri, "drawer": DRAWER}),
        ])
        install_retry(briefcase, CHAOS_RETRY, seed=seed)

    engine.start()
    if recovery:
        cluster.kernel.spawn(guard.watch(), name="rear-guard-watch")

    def scenario():
        reply = yield from guard.ctx.meet(
            cluster.vm_uri(HOME_HOST), briefcase, timeout=60.0)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        results: List[Dict] = []
        failures: List[Dict] = []
        timed_out = False
        try:
            message = yield from guard.ctx.recv(
                timeout=recv_timeout,
                match=lambda m: not guard.ctx.is_pending_reply(m))
            report = message.briefcase
            results.extend(e.as_json() for e in
                           report.folder(wellknown.RESULTS))
            failures.extend(e.as_json() for e in
                            report.folder("FAILURES"))
        except CommTimeoutError:
            # The agent was lost and nobody brought it back.
            timed_out = True
        guard.stop()
        return results, failures, timed_out

    results, failures, timed_out = cluster.run(
        scenario(), name=f"chaos:{plan}")

    metrics = cluster.telemetry.metrics
    unreachable = sorted({f["host"] for f in failures
                          if f.get("phase") == "go"})
    document = {
        "schema": "repro.chaos/1",
        "seed": seed,
        "recovery": recovery,
        "plan": fault_plan.to_dict(),
        "applied": engine.applied,
        "injector": engine.injector.stats(),
        "agent": {
            "name": AGENT_NAME,
            "sites_planned": len(worker_names),
            "sites_visited": len(results),
            "completed": len(results) == len(worker_names),
            "timed_out": timed_out,
            "results": results,
            "failures": failures,
            "unreachable_hosts": unreachable,
        },
        # Agent conservation: every instance ever spawned must end in a
        # terminal bucket.  Without recovery a crashed host legitimately
        # loses the agent, so ``holds`` is evidence, not a gate, here.
        "conservation": auditor.report(),
        "rear_guard": guard.stats(),
        # Post-mortems: every host crash freezes that host's flight
        # recorder (admissions, rejections, breaker flips, hops) into a
        # dump, so the document carries the last moments before impact.
        "flight_recorder": {
            "dumps": list(cluster.telemetry.flight.dumps),
            "dumps_evicted": cluster.telemetry.flight.dumps_evicted,
        },
        "stats": {
            "host_crashes": _counter_total(metrics, "host.crashes"),
            "faults_injected": _counter_total(metrics, "faults.injected"),
            "transport_retries": _counter_total(metrics,
                                                "transport.retries"),
            "recovery_relaunches": _counter_total(metrics,
                                                  "recovery.relaunches"),
            "dead_letters": sum(len(node.firewall.pending.dead_letters)
                                for node in cluster.nodes.values()),
            "checkpoints": _counter_total(metrics, "checkpoint.taken"),
            "remote_bytes": cluster.network.total_remote_bytes(),
            "remote_messages": cluster.network.total_remote_messages(),
        },
        "elapsed": cluster.kernel.now,
    }
    return document


def render_chaos_json(document: Dict) -> str:
    """The canonical (determinism-checkable) serialisation."""
    return json.dumps(document, sort_keys=True, indent=2)
