"""RearGuard: detect a lost agent and relaunch its last checkpoint.

The paper's fault-tolerance story needs a party that *stays behind*: the
agent carries a :class:`~repro.wrappers.fault.CheckpointWrapper` (its
briefcase is snapshotted into an ag_cabinet drawer at every hop) and a
:class:`~repro.wrappers.monitor.MonitorWrapper` with a heartbeat, and
the rear guard — a pseudo-agent registered at the home host — watches
those heartbeats.  A crashed host sends *nothing* (no "finished", no
heartbeat), so silence past the configured timeout is the loss signal;
the guard then pulls the last checkpoint out of the cabinet and
relaunches it on the first candidate VM whose host is still up
(:func:`repro.wrappers.fault.recover`).

The guard's registration doubles as the agent's monitor *and* its home:
monitor events are absorbed by the delivery hook; every other message
(the final report, meet replies) reaches the guard's mailbox, so the
same context can launch the agent, run recoveries, and receive results.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import TaxError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.agent.context import AgentContext
from repro.agent.mailbox import Mailbox
from repro.sim.network import NetworkError
from repro.wrappers.fault import recover
from repro.wrappers.monitor import EVENT_FOLDER, MonitorLog


class RearGuard:
    """Heartbeat watchdog + checkpoint relauncher for one agent."""

    def __init__(self, node, cabinet: str, drawer: str,
                 candidates: List[str],
                 principal: str,
                 tag: Optional[str] = None,
                 heartbeat_timeout: float = 2.0,
                 poll_interval: float = 0.5,
                 max_relaunches: int = 3,
                 name: str = "rear_guard",
                 expected_incarnation: Optional[int] = None):
        self.node = node
        self.cabinet = cabinet
        self.drawer = drawer
        self.candidates = list(candidates)
        self.tag = tag
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.max_relaunches = max_relaunches
        self.monitor_log = MonitorLog()
        #: Virtual time of the last report heard from the watched agent.
        self.last_seen: Optional[float] = None
        self.last_host: Optional[str] = None
        self.finished = False
        self.relaunches: List[Dict] = []
        self.failures: List[Dict] = []
        #: Incarnation the live agent should be reporting (None: the
        #: agent carries no INCARNATION folder — twin detection off).
        #: Each successful recovery bumps it, in lockstep with the +1
        #: that :func:`repro.wrappers.fault.recover` stamps into the
        #: relaunched checkpoint.
        self.expected_incarnation = expected_incarnation
        #: Orphan twins detected (reports with a stale incarnation).
        self.twins: List[Dict] = []
        self._twin_kills_sent: set = set()
        #: Kill requests spawned but not yet resolved — scenarios drain
        #: this before tearing the cluster down, so a report that beats
        #: the kill home doesn't leave the orphan alive.
        self.twin_kills_pending = 0
        self._stopped = False

        mailbox = Mailbox(node.kernel)
        ctx = AgentContext(node, vm_name="vm_python",
                           briefcase=Briefcase(), principal=principal)

        def deliver(message) -> bool:
            element = message.briefcase.get_first(EVENT_FOLDER)
            if element is not None:
                self._on_event(json.loads(element.as_text()))
                self.monitor_log.deliver(message)
                return True
            return mailbox.deliver(message)

        registration = node.firewall.register_agent(
            name=name, principal=principal, vm_name="vm_python",
            deliver_fn=deliver)
        ctx.attach(registration, mailbox)
        self.ctx = ctx

    # -- event intake ---------------------------------------------------------------

    def _on_event(self, event: dict) -> None:
        if self.tag is not None and event.get("tag") != self.tag:
            return
        if self._is_twin(event):
            # An orphaned earlier incarnation is still alive somewhere
            # (its host healed after we recovered).  Its reports must
            # not count as life signs — and the twin must die.
            self._on_twin(event)
            return
        self.last_seen = self.node.kernel.now
        self.last_host = event.get("host")
        if event.get("event") == "finished":
            self.finished = True

    def _is_twin(self, event: dict) -> bool:
        if self.expected_incarnation is None:
            return False
        reported = event.get("incarnation")
        if reported is None:
            return False
        try:
            return int(reported) != self.expected_incarnation
        except (TypeError, ValueError):
            return False

    def _on_twin(self, event: dict) -> None:
        agent = event.get("agent") or ""
        host = event.get("host")
        kernel = self.node.kernel
        if agent in self._twin_kills_sent:
            return
        self._twin_kills_sent.add(agent)
        self.twins.append({"at": kernel.now, "agent": agent,
                           "host": host,
                           "incarnation": event.get("incarnation"),
                           "expected": self.expected_incarnation})
        instance = agent.rsplit(":", 1)[-1] if ":" in agent else None
        if host is None or instance is None:
            return
        self.ctx.log(f"rear guard: orphan twin {agent} on {host} "
                     f"(incarnation {event.get('incarnation')}, "
                     f"expected {self.expected_incarnation}), killing")
        self.twin_kills_pending += 1
        kernel.spawn(self._kill_twin(agent, host, instance),
                     name=f"twin-kill:{agent}")

    def _kill_twin(self, agent: str, host: str, instance: str):
        request = Briefcase()
        request.put(wellknown.OP, "kill")
        request.put(wellknown.ARGS, {"instance": instance})
        try:
            reply = yield from self.ctx.meet(
                AgentUri(host=host, name="firewall"), request,
                timeout=self.heartbeat_timeout * 4)
        except (TaxError, NetworkError) as exc:
            # Let the next heartbeat from the twin trigger another try.
            self._twin_kills_sent.discard(agent)
            self.ctx.log(f"rear guard: twin kill of {agent} failed: {exc}")
            return
        finally:
            self.twin_kills_pending -= 1
        results = reply.get_json(wellknown.RESULTS, {})
        killed = bool(results.get("killed")) \
            if isinstance(results, dict) else False
        telemetry = self.node.kernel.telemetry
        if telemetry.enabled and killed:
            telemetry.metrics.inc("recovery.twins_killed")
        if not killed:
            # Already gone (crashed with its host, or finished): fine —
            # exactly-once only needs it not to be running.
            self.ctx.log(f"rear guard: twin {agent} already gone")

    # -- introspection ---------------------------------------------------------------

    @property
    def uri(self) -> str:
        """The guard's address (use as both HOME and monitor URI)."""
        return str(self.ctx.uri)

    def silence(self) -> float:
        """Seconds since the watched agent was last heard from."""
        if self.last_seen is None:
            return 0.0
        return self.node.kernel.now - self.last_seen

    def stop(self) -> None:
        """End the watch loop at its next tick (the report arrived)."""
        self._stopped = True

    def stats(self) -> dict:
        return {
            "relaunches": list(self.relaunches),
            "recovery_failures": list(self.failures),
            "finished": self.finished,
            "last_host": self.last_host,
            "twins": list(self.twins),
        }

    # -- the watch loop ----------------------------------------------------------------

    def _pick_candidate(self) -> Optional[str]:
        network = self.node.network
        for vm in self.candidates:
            host = AgentUri.parse(vm).host
            if host is None or network.host_is_up(host):
                return vm
        return None

    def watch(self):
        """Generator: poll for silence, recover on loss.  Spawn with
        ``kernel.spawn(guard.watch())``; ends when the agent finishes,
        :meth:`stop` is called, or the relaunch budget is spent."""
        kernel = self.node.kernel
        if self.last_seen is None:
            self.last_seen = kernel.now
        while not (self._stopped or self.finished):
            yield kernel.timeout(self.poll_interval)
            if self._stopped or self.finished:
                return
            if self.silence() <= self.heartbeat_timeout:
                continue
            if len(self.relaunches) >= self.max_relaunches:
                self.ctx.log("rear guard: relaunch budget spent, giving up")
                return
            yield from self._recover_once()

    def _recover_once(self):
        kernel = self.node.kernel
        vm = self._pick_candidate()
        if vm is None:
            self.failures.append({"at": kernel.now,
                                  "error": "no live candidate host"})
            self.last_seen = kernel.now  # back off one full timeout
            return
        self.ctx.log(f"rear guard: agent silent for "
                     f"{self.silence():.3f}s, recovering onto {vm}")
        try:
            uri = yield from recover(self.ctx, self.cabinet, self.drawer, vm)
        except (TaxError, NetworkError) as exc:
            self.failures.append({"at": kernel.now, "vm": vm,
                                  "error": str(exc)})
            self.last_seen = kernel.now
            return
        self.relaunches.append({"at": kernel.now, "vm": vm, "uri": uri})
        if self.expected_incarnation is not None:
            # recover() bumped the checkpoint's INCARNATION by one;
            # track it so the old incarnation now reads as a twin.
            self.expected_incarnation += 1
        # Give the fresh incarnation a full window to start reporting.
        self.last_seen = kernel.now
