"""Restart-time replay: folding the journal back into live state.

:class:`HostDurability` owns one host's disk + journal and wires the
journal into the firewall's dedup window, landing registry and pending
queue.  On crash it suspends journaling (crash-time bookkeeping must
not look durable) and applies the seeded storage damage; on restart it
replays the active segment, rebuilds the durable state image, installs
it into the firewall, and relaunches every resident agent whose fate
is unambiguous.

The fold (:func:`replay_image`) is a pure function of the record list
— tests exercise it directly — and understands the full record
taxonomy:

==================  ============================================================
record              replay meaning
==================  ============================================================
``snapshot``        seed the image from a full durable state (first record
                    of a compacted segment)
``dedup-observe``   re-run the window verdict (same inputs, same counters)
``dedup-forget``    roll back an effective acceptance
``landing-*``       re-apply a landing transition (observe / launch /
                    tombstone / release / forget)
``queue-park``      a transport was parked (carries the full message)
``queue-reject``    an offer bounced off a full queue
``queue-claim``     an agent claimed a parked transport
``queue-dead-letter``  a park expired or was evicted into the ledger
``dead-letter-take``   a dead letter left the ledger for retransmission
``dead-letter-evict``  the ledger trimmed its oldest entry
``agent-arrive``    an agent became resident (carries its cleaned briefcase)
``agent-depart``    a resident left deliberately (moved / finished / killed)
``depart-intent``   a resident began a ``go`` (its fate is ambiguous until
                    ``agent-depart`` or ``depart-failed``)
``depart-failed``   the hop failed; the resident stayed put
``relaunch-intent`` recovery is about to resurrect a resident; the next
                    arrival on this landing supersedes the old instance
``checkpoint``      a cabinet checkpoint blob was stored (counted only)
``restart``         a crash boundary: open parks become host-crash dead
                    letters, departing residents become ambiguous
==================  ============================================================

The ambiguity rule is the twin-safety argument: a resident with an
unresolved ``depart-intent`` may already be running on the destination
host, so replay refuses to resurrect it — the exactly-once machinery
(landing tombstones, origin retries, rear guards) owns that case.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.uri import AgentUri
from repro.durability.journal import (DEFAULT_SNAPSHOT_INTERVAL,
                                      HostJournal, decode_briefcase_blob,
                                      encode_briefcase_blob)
from repro.durability.store import VirtualDisk
from repro.firewall.dedup import DedupWindow, LandingRegistry
from repro.firewall.message import Message, SenderInfo
from repro.firewall.msgqueue import DeadLetter

#: Queue counters that are part of the durable image (the keys of
#: ``PendingQueue.accounting`` that survive a crash).
QUEUE_COUNTERS = ("offered", "accepted", "rejected", "claimed", "expired",
                  "crashed", "evicted", "dead_letter_evictions")


def message_to_durable(message: Message) -> Dict[str, Any]:
    """Flatten a message envelope + briefcase into journal fields."""
    sender = message.sender
    return {
        "target": str(message.target),
        "principal": sender.principal,
        "sender_host": sender.host,
        "sender_uri": str(sender.uri) if sender.uri else None,
        "authenticated": bool(sender.authenticated),
        "queue_timeout": message.queue_timeout,
        "hops": message.hops,
        "priority": message.priority,
        "seq": message.seq,
        "seq_src": message.seq_src,
        "landing": message.landing_id,
        "blob": encode_briefcase_blob(message.briefcase),
    }


def message_from_durable(rec: Dict[str, Any]) -> Message:
    """Rebuild a live message from its journal fields."""
    uri = rec.get("sender_uri")
    sender = SenderInfo(
        principal=rec["principal"], host=rec["sender_host"],
        uri=AgentUri.parse(uri) if uri else None,
        authenticated=bool(rec.get("authenticated")))
    return Message(
        target=AgentUri.parse(rec["target"]),
        briefcase=decode_briefcase_blob(rec["blob"]),
        sender=sender,
        queue_timeout=rec.get("queue_timeout", 30.0),
        hops=rec.get("hops", 0),
        priority=rec.get("priority", 0),
        seq=rec.get("seq"),
        seq_src=rec.get("seq_src"),
        landing_id=rec.get("landing"))


class ResidentTable:
    """Who lives on this host, according to the journal.

    ``supersede`` maps a relaunch landing id to the instance it
    replaces: when the resurrected launch's ``agent-arrive`` lands, the
    old instance is retired so crash loops never accumulate twins.
    """

    def __init__(self) -> None:
        #: instance -> {name, principal, vm, landing, blob, departing}
        self.residents: Dict[str, Dict[str, Any]] = {}
        #: relaunch landing id -> superseded instance
        self.supersede: Dict[str, str] = {}

    def arrive(self, instance: str, info: Dict[str, Any]) -> None:
        landing = info.get("landing")
        if landing and landing in self.supersede:
            self.residents.pop(self.supersede.pop(landing), None)
        info = dict(info)
        info["departing"] = None
        self.residents[instance] = info

    def depart(self, instance: str) -> None:
        self.residents.pop(instance, None)

    def depart_intent(self, instance: str, landing: Optional[str]) -> None:
        info = self.residents.get(instance)
        if info is not None:
            info["departing"] = landing

    def depart_failed(self, instance: str) -> None:
        info = self.residents.get(instance)
        if info is not None:
            info["departing"] = None

    def relaunch_intent(self, instance: str, landing: str) -> None:
        if instance in self.residents:
            self.supersede[landing] = instance

    def restart(self) -> List[str]:
        """Apply a crash boundary: drop residents whose ``go`` was
        unresolved (their fate is ambiguous) and stale relaunch
        intents whose launches never completed.  Returns the dropped
        (ambiguous) instances, sorted."""
        ambiguous = sorted(
            instance for instance, info in self.residents.items()
            if info.get("departing"))
        for instance in ambiguous:
            self.residents.pop(instance, None)
        self.supersede.clear()
        return ambiguous

    def to_durable(self) -> Dict[str, Any]:
        return {
            "residents": {instance: dict(self.residents[instance])
                          for instance in sorted(self.residents)},
            "supersede": {landing: self.supersede[landing]
                          for landing in sorted(self.supersede)},
        }

    @classmethod
    def from_durable(cls, state: Dict[str, Any]) -> "ResidentTable":
        table = cls()
        for instance, info in state.get("residents", {}).items():
            table.residents[instance] = dict(info)
        table.supersede.update(state.get("supersede", {}))
        return table


class ReplayImage:
    """The durable state reconstructed by one journal fold."""

    def __init__(self) -> None:
        self.dedup = DedupWindow()
        self.landings = LandingRegistry()
        self.table = ResidentTable()
        self.counters: Dict[str, int] = {key: 0 for key in QUEUE_COUNTERS}
        #: park id -> park record (message fields + timing), insertion
        #: ordered — parks still open at the crash.
        self.open_parks: Dict[int, Dict[str, Any]] = {}
        #: dead-letter records (message fields + died_at / reason).
        self.dead: List[Dict[str, Any]] = []
        self.park_seq = 1
        self.checkpoints = 0
        self.restarts = 0
        self.records = 0
        self.torn = False
        self.segment = ""
        self.ambiguous: List[str] = []

    def queue_counters(self) -> Dict[str, int]:
        return dict(self.counters)


def _cut(image: ReplayImage, t: float) -> None:
    """A crash boundary: every open park died with the host, and every
    mid-``go`` resident becomes ambiguous."""
    for rec in image.open_parks.values():
        dead = dict(rec)
        dead["died_at"] = t
        dead["reason"] = "host-crash"
        image.dead.append(dead)
        image.counters["crashed"] += 1
    image.open_parks.clear()
    image.ambiguous = image.table.restart()


def _seed(image: ReplayImage, state: Dict[str, Any]) -> None:
    image.dedup = DedupWindow.from_durable(state.get("dedup", {}))
    image.landings = LandingRegistry.from_durable(state.get("landings", {}))
    image.table = ResidentTable.from_durable(state.get("residents", {}))
    queue = state.get("queue", {})
    for key in QUEUE_COUNTERS:
        image.counters[key] = int(queue.get("counters", {}).get(key, 0))
    image.park_seq = int(queue.get("park_seq", 1))
    for rec in queue.get("open", []):
        image.open_parks[int(rec["park"])] = dict(rec)
    image.dead = [dict(rec) for rec in queue.get("dead", [])]


def replay_image(records: List[Dict[str, Any]], torn: bool,
                 segment: str,
                 now: float) -> ReplayImage:
    """Fold journal records into the post-recovery state image.

    Pure: no kernel, no firewall — callers install the result.  The
    final crash boundary (the one that triggered this replay) is
    applied at ``now``.
    """
    image = ReplayImage()
    image.records = len(records)
    image.torn = torn
    image.segment = segment
    for rec in records:
        kind = rec.get("kind")
        if kind == "snapshot":
            _seed(image, rec.get("state", {}))
        elif kind == "dedup-observe":
            image.dedup.observe(rec["peer"], rec["seq"])
        elif kind == "dedup-forget":
            image.dedup.forget(rec["peer"], rec["seq"])
        elif kind == "landing-observe":
            state, _ = image.landings.acquire(rec["id"])
            if state == "new":
                # Live observes only happen for decided landings; an
                # unexpectedly-new one must not hold a pending slot.
                image.landings.release(rec["id"])
        elif kind == "landing-launch":
            image.landings.record_launch(rec["id"], rec.get("uri", ""))
        elif kind == "landing-tombstone":
            image.landings.tombstone(rec["id"], rec.get("reason", ""))
        elif kind == "landing-release":
            image.landings.release(rec["id"])
        elif kind == "landing-forget":
            image.landings.forget_launch(rec["id"])
        elif kind == "queue-park":
            park = int(rec["park"])
            entry = dict(rec)
            entry["enqueued_at"] = rec.get("t", now)
            image.open_parks[park] = entry
            image.counters["offered"] += 1
            image.counters["accepted"] += 1
            image.park_seq = max(image.park_seq, park + 1)
        elif kind == "queue-reject":
            image.counters["offered"] += 1
            image.counters["rejected"] += 1
        elif kind == "queue-claim":
            if image.open_parks.pop(int(rec["park"]), None) is not None:
                image.counters["claimed"] += 1
        elif kind == "queue-dead-letter":
            parked = image.open_parks.pop(int(rec["park"]), None)
            if parked is not None:
                reason = rec.get("reason", "expired")
                dead = dict(parked)
                dead["died_at"] = rec.get("t", now)
                dead["reason"] = reason
                image.dead.append(dead)
                if reason == "expired":
                    image.counters["expired"] += 1
                elif reason == "evicted":
                    image.counters["evicted"] += 1
                else:
                    image.counters["crashed"] += 1
        elif kind == "dead-letter-take":
            park = int(rec["park"])
            image.dead = [d for d in image.dead
                          if int(d.get("park", -1)) != park]
        elif kind == "dead-letter-evict":
            park = int(rec["park"])
            image.dead = [d for d in image.dead
                          if int(d.get("park", -1)) != park]
            image.counters["dead_letter_evictions"] += 1
        elif kind == "agent-arrive":
            image.table.arrive(rec["instance"], {
                "name": rec["name"], "principal": rec["principal"],
                "vm": rec["vm"], "landing": rec.get("landing"),
                "blob": rec["blob"]})
        elif kind == "agent-depart":
            image.table.depart(rec["instance"])
        elif kind == "depart-intent":
            image.table.depart_intent(rec["instance"], rec.get("landing"))
        elif kind == "depart-failed":
            image.table.depart_failed(rec["instance"])
        elif kind == "relaunch-intent":
            image.table.relaunch_intent(rec["instance"], rec["landing"])
        elif kind == "checkpoint":
            image.checkpoints += 1
        elif kind == "restart":
            image.restarts += 1
            _cut(image, rec.get("t", now))
        # Unknown kinds are skipped: the journal format may grow.
    _cut(image, now)
    return image


class HostDurability:
    """One host's crash-durability controller.

    Owns the virtual disk and journal, mirrors the resident-agent
    table, and runs the crash / replay / resurrect lifecycle.  The
    firewall never imports this package — it talks to the journal
    through the duck-typed ``journal`` attributes installed here, and
    to the controller through ``firewall.durability``.
    """

    def __init__(self, node: Any, injector: Optional[Any] = None,
                 snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL
                 ) -> None:
        self.node = node
        host = node.host.name
        self.disk = VirtualDisk(node.kernel, host, injector=injector)
        self.journal = HostJournal(
            self.disk, host, telemetry=node.kernel.telemetry,
            snapshot_interval=snapshot_interval)
        self.journal.state_provider = self.durable_state
        self._mirror = ResidentTable()
        self.last_replay: Optional[Dict[str, Any]] = None
        self.resurrect_skipped = 0
        firewall = node.firewall
        firewall.durability = self
        node.durability = self
        firewall.dedup.journal = self.journal
        firewall.landings.journal = self.journal
        firewall.pending.journal = self.journal

    # -- the durable state (snapshot source) ---------------------------------------

    def durable_state(self) -> Dict[str, Any]:
        firewall = self.node.firewall
        queue = firewall.pending
        accounting = queue.accounting()
        open_parks = []
        for entry in queue.parked_entries():
            rec = message_to_durable(entry.message)
            rec.update(park=entry.park_id, enqueued_at=entry.enqueued_at,
                       expires_at=entry.expires_at,
                       retransmits=entry.retransmits)
            open_parks.append(rec)
        dead = []
        for letter in queue.dead_letters:
            rec = message_to_durable(letter.message)
            rec.update(park=letter.park_id, enqueued_at=letter.enqueued_at,
                       died_at=letter.died_at, reason=letter.reason,
                       retransmits=letter.retransmits)
            dead.append(rec)
        return {
            "dedup": firewall.dedup.to_durable(),
            "landings": firewall.landings.to_durable(),
            "queue": {
                "counters": {key: accounting[key]
                             for key in QUEUE_COUNTERS},
                "park_seq": queue.park_seq,
                "open": open_parks,
                "dead": dead,
            },
            "residents": self._mirror.to_durable(),
        }

    # -- journal hooks (called through the firewall) -------------------------------

    def note_arrival(self, registration: Any, briefcase: Any,
                     landing: Optional[str], vm_name: str) -> None:
        info = {"name": registration.name,
                "principal": registration.principal,
                "vm": vm_name, "landing": landing,
                "blob": encode_briefcase_blob(briefcase)}
        self.journal.record(
            "agent-arrive", instance=registration.instance,
            name=info["name"], principal=info["principal"], vm=vm_name,
            landing=landing, blob=info["blob"])
        self._mirror.arrive(registration.instance, info)

    def note_depart(self, instance: str, reason: str) -> None:
        if instance not in self._mirror.residents:
            return
        self.journal.record("agent-depart", instance=instance,
                            reason=reason)
        self._mirror.depart(instance)

    def note_depart_intent(self, instance: str,
                           landing: Optional[str]) -> None:
        self.journal.record("depart-intent", instance=instance,
                            landing=landing)
        self._mirror.depart_intent(instance, landing)

    def note_depart_failed(self, instance: str) -> None:
        self.journal.record("depart-failed", instance=instance)
        self._mirror.depart_failed(instance)

    def note_checkpoint(self, principal: str, drawer: str,
                        briefcase: Any) -> None:
        self.journal.record("checkpoint", principal=principal,
                            drawer=drawer,
                            blob=encode_briefcase_blob(briefcase))

    # -- the crash / restart lifecycle ---------------------------------------------

    def on_crash(self) -> Dict[str, int]:
        """The host is going down: freeze the journal first, so the
        crash-time bookkeeping (queue flushes, registration kills) is
        *not* journaled — it did not survive — then apply the seeded
        storage damage."""
        self.journal.suspend()
        return self.disk.crash()

    def on_restart(self, resurrect: bool = True) -> Dict[str, Any]:
        """Replay the journal and reinstall the durable state.

        Runs after the node re-registered its VMs and services and
        before dead letters are retransmitted.  Returns (and stores as
        ``last_replay``) a replay summary.
        """
        node = self.node
        firewall = node.firewall
        records, torn, segment = self.journal.replay()
        image = replay_image(records, torn, segment, node.kernel.now)
        # Install the reconstructed structures.  This module is the
        # one sanctioned writer of these fields (lint rule DUR001).
        image.dedup.journal = self.journal
        image.landings.journal = self.journal
        firewall.dedup = image.dedup
        firewall.landings = image.landings
        dead_letters = []
        for rec in image.dead:
            dead_letters.append(DeadLetter(
                message=message_from_durable(rec),
                enqueued_at=rec.get("enqueued_at", 0.0),
                died_at=rec.get("died_at", 0.0),
                reason=rec.get("reason", "host-crash"),
                retransmits=rec.get("retransmits", 0),
                park_id=int(rec.get("park", 0))))
        firewall.pending.restore_durable(
            image.queue_counters(), dead_letters, image.park_seq)
        self._mirror = image.table
        self.journal.resume()
        residents = sorted(image.table.residents)
        self.journal.record(
            "restart", records=image.records, torn=image.torn,
            residents=len(residents), ambiguous=len(image.ambiguous))
        # Re-anchor on a fresh snapshot so the next replay starts from
        # this recovered state instead of re-folding history.
        self.journal.compact()
        auditor = getattr(node.kernel, "auditor", None)
        if auditor is not None:
            # Host-crash dead letters reconstructed from the journal
            # account for migration transports that died here.
            for letter in dead_letters:
                if letter.message.landing_id:
                    auditor.transport_dead_lettered(
                        letter.message.landing_id)
        restored = 0
        if resurrect:
            for instance in residents:
                if self._resurrect(instance,
                                   image.table.residents[instance]):
                    restored += 1
        telemetry = node.kernel.telemetry
        if telemetry.enabled:
            host = node.host.name
            telemetry.metrics.inc("recovery.journal_records_replayed",
                                  image.records, host=host)
            if restored:
                telemetry.metrics.inc("recovery.agents_restored",
                                      restored, host=host)
            if image.ambiguous:
                telemetry.metrics.inc("recovery.ambiguous_departures",
                                      len(image.ambiguous), host=host)
            telemetry.flight.record(
                host, "journal-replay", segment=segment,
                records=image.records, torn=image.torn,
                restored=restored, ambiguous=len(image.ambiguous),
                dead_letters=len(dead_letters))
        self.last_replay = {
            "segment": segment,
            "records": image.records,
            "torn": image.torn,
            "snapshots_seen": 1 if any(
                rec.get("kind") == "snapshot" for rec in records) else 0,
            "residents_restored": restored,
            "ambiguous_departures": image.ambiguous,
            "dead_letters_restored": len(dead_letters),
            "checkpoints_seen": image.checkpoints,
        }
        return self.last_replay

    def _resurrect(self, instance: str, info: Dict[str, Any]) -> bool:
        """Relaunch one journaled resident from its arrival blob."""
        node = self.node
        vm = node.vms.get(info.get("vm", ""))
        if vm is None:
            self.resurrect_skipped += 1
            return False
        landing = info.get("landing")
        if not landing:
            # Home-launched residents carried no landing id; mint one
            # so the supersede protocol still pairs intent to arrival.
            landing = f"replay:{instance}:r{self.journal.replays}"
        self.journal.record("relaunch-intent", instance=instance,
                            landing=landing)
        self._mirror.relaunch_intent(instance, landing)
        # Free the landing id: the original launch consumed it, and the
        # relaunch must land on it again rather than be deduplicated.
        node.firewall.landings.forget_launch(landing)
        briefcase = decode_briefcase_blob(info["blob"])
        sender = SenderInfo(
            principal=info["principal"], host=node.host.name,
            uri=None, authenticated=True)
        message = Message(
            target=AgentUri(host=node.host.name, name=info["name"]),
            briefcase=briefcase, sender=sender, landing_id=landing)
        node.kernel.spawn(vm.handle_launch_message(message),
                          name=f"replay-launch:{instance}")
        return True

    def stats(self) -> Dict[str, Any]:
        return {
            "disk": self.disk.stats(),
            "journal": self.journal.stats(),
            "residents": len(self._mirror.residents),
            "resurrect_skipped": self.resurrect_skipped,
            "last_replay": self.last_replay,
        }
