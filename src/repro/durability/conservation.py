"""The system-wide agent-conservation auditor.

Mobility's safety claim is not just "no duplicates" (exactly-once, PR
7) — it is also "no silent losses".  The auditor watches every agent
instance the cluster ever spawns and asserts that each one ends in
exactly one terminal bucket:

- ``alive`` — still registered when the run ends;
- ``completed`` — ran to the end of its program (or was deliberately
  killed: a twin kill is a *decision*, not a loss);
- ``moved`` — handed off to a successor instance via ``go`` (the
  landing ack proves the successor exists);
- ``relaunched`` — crashed with its host and later resurrected, by
  journal replay or by a rear guard's checkpoint relaunch;
- ``dead_lettered`` — its migration transport died in a queue and is
  accounted for in a dead-letter ledger.

An instance stuck in ``crashed`` is a conservation violation: an agent
the system lost without a trace.  ``holds()`` is the boolean surfaced
as ``conservation.holds`` in the chaos / partition / crashtest
documents, and the crashtest CLI exits non-zero without it.

The auditor hangs off the kernel (``kernel.auditor``, default absent)
exactly like the runtime sanitizer: hook sites fetch it with
``getattr`` and pay nothing when it is not installed.  Infrastructure
registrations (the ``system`` principal: VMs, services, drivers) are
exempt — they are re-created by ``boot()``, not conserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.identity import SYSTEM_PRINCIPAL

#: Instance states.  ``crashed`` is the only non-terminal one.
ALIVE = "alive"
COMPLETED = "completed"
MOVED = "moved"
CRASHED = "crashed"
RELAUNCHED = "relaunched"
DEAD_LETTERED = "dead_lettered"


class _InstanceRecord:
    __slots__ = ("instance", "name", "principal", "host", "state",
                 "reason", "departing")

    def __init__(self, instance: str, name: str, principal: str,
                 host: str) -> None:
        self.instance = instance
        self.name = name
        self.principal = principal
        self.host = host
        self.state = ALIVE
        self.reason = ""
        #: Landing id of an in-flight ``go`` (set at depart intent,
        #: cleared when the hop fails and the agent stays put).
        self.departing: Optional[str] = None


class ConservationAuditor:
    """Every agent ever spawned ends in exactly one bucket."""

    def __init__(self) -> None:
        self._instances: Dict[str, _InstanceRecord] = {}

    # -- hook points ---------------------------------------------------------------

    def spawned(self, host: str, instance: str, name: str,
                principal: str) -> None:
        if principal == SYSTEM_PRINCIPAL:
            return
        self._instances[instance] = _InstanceRecord(
            instance, name, principal, host)
        # A fresh spawn of the same logical agent resolves the oldest
        # still-crashed instance: journal replay resurrects it with the
        # same name, and a rear guard's checkpoint relaunch recreates
        # it.  One spawn resolves at most one loss.
        for record in self._instances.values():
            if (record.state == CRASHED and record.instance != instance
                    and record.principal == principal
                    and record.name == name):
                record.state = RELAUNCHED
                break

    def ended(self, instance: str, reason: str = "finished") -> None:
        record = self._instances.get(instance)
        if record is None or record.state != ALIVE:
            return
        record.state = MOVED if reason == "moved" else COMPLETED
        record.reason = reason

    def departing(self, instance: str,
                  landing: Optional[str]) -> None:
        record = self._instances.get(instance)
        if record is not None and record.state == ALIVE:
            record.departing = landing

    def depart_failed(self, instance: str) -> None:
        record = self._instances.get(instance)
        if record is not None:
            record.departing = None

    def crashed(self, instance: str, host: str = "") -> None:
        record = self._instances.get(instance)
        if record is not None and record.state == ALIVE:
            record.state = CRASHED
            record.reason = "host-crash"

    def transport_dead_lettered(self, landing: Optional[str]) -> None:
        """A migration transport died in a queue: the crashed instance
        that was departing on this landing is accounted for."""
        if not landing:
            return
        for record in self._instances.values():
            if record.state == CRASHED and record.departing == landing:
                record.state = DEAD_LETTERED
                break

    # -- the verdict ---------------------------------------------------------------

    def holds(self) -> bool:
        return not any(record.state == CRASHED
                       for record in self._instances.values())

    def violations(self) -> List[Dict[str, str]]:
        return sorted(
            ({"instance": r.instance, "name": r.name,
              "principal": r.principal, "host": r.host}
             for r in self._instances.values() if r.state == CRASHED),
            key=lambda v: v["instance"])

    def report(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        for record in self._instances.values():
            buckets[record.state] = buckets.get(record.state, 0) + 1
        return {
            "agents": len(self._instances),
            "buckets": {state: buckets[state]
                        for state in sorted(buckets)},
            "violations": self.violations(),
            "holds": self.holds(),
        }
