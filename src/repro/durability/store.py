"""A deterministic per-host virtual disk with fsync barriers.

The disk lives entirely in virtual time: an ``append`` lands in the
file's *unsynced* buffer, an ``fsync`` promotes it towards durability,
and a ``crash`` keeps only what was durable at the instant of the
crash.  Reads see the full logical content (the OS page-cache view);
after a crash the logical and durable views coincide.

Durability is not instantaneous by decree: with the
:class:`~repro.sim.faults.StorageFaults` slow-fsync fault a "completed"
fsync only becomes durable after a delay, so a crash inside that window
loses the acknowledged suffix — plus, optionally, a torn tail (the
first lost write survives as a partial prefix) and a lost durable
suffix (firmware that lied about an earlier fsync).  All fault rolls
come from the :class:`~repro.sim.faults.FaultInjector`'s seeded storage
stream, so crash damage is a pure function of the seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class _DiskFile:
    """One file: durable bytes + writes still waiting on durability."""

    __slots__ = ("durable", "pending", "unsynced")

    def __init__(self) -> None:
        self.durable = bytearray()
        #: fsynced writes not yet durable: ``(data, durable_at)``.
        self.pending: List[Tuple[bytes, float]] = []
        #: appended but never fsynced.
        self.unsynced: List[bytes] = []


class VirtualDisk:
    """Per-host durable storage with explicit fsync barriers."""

    def __init__(self, kernel: Any, host: str,
                 injector: Optional[Any] = None) -> None:
        self.kernel = kernel
        self.host = host
        #: Optional :class:`~repro.sim.faults.FaultInjector` rolling the
        #: seeded storage faults; ``None`` means honest, instant disks.
        self.injector = injector
        self._files: Dict[str, _DiskFile] = {}
        self.writes = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.crashes = 0
        self.lost_writes = 0
        self.torn_tails = 0
        self.lost_suffix_bytes = 0

    def _file(self, name: str) -> _DiskFile:
        entry = self._files.get(name)
        if entry is None:
            entry = self._files[name] = _DiskFile()
        return entry

    def _settle(self, entry: _DiskFile) -> None:
        """Fold pending writes whose durability point has passed."""
        now = self.kernel.now
        while entry.pending and entry.pending[0][1] <= now:
            entry.durable += entry.pending.pop(0)[0]

    # -- the write path ------------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        if not data:
            return
        self._file(name).unsynced.append(bytes(data))
        self.writes += 1
        self.bytes_written += len(data)

    def fsync(self, name: str) -> None:
        """Promote every unsynced write of ``name`` towards durability.

        With an honest disk the data is durable immediately; the
        slow-fsync fault defers the durability point, which only
        matters if a crash lands inside the window.
        """
        entry = self._file(name)
        self.fsyncs += 1
        if not entry.unsynced and not entry.pending:
            return
        delay = self.injector.fsync_delay(self.host) \
            if self.injector is not None else 0.0
        durable_at = self.kernel.now + delay
        for data in entry.unsynced:
            entry.pending.append((data, durable_at))
        entry.unsynced.clear()
        self._settle(entry)

    # -- reading -------------------------------------------------------------------

    def read(self, name: str) -> bytes:
        """The full logical content (durable + in-flight)."""
        entry = self._files.get(name)
        if entry is None:
            return b""
        self._settle(entry)
        parts = [bytes(entry.durable)]
        parts.extend(data for data, _ in entry.pending)
        parts.extend(entry.unsynced)
        return b"".join(parts)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def files(self) -> List[str]:
        return sorted(self._files)

    # -- crashing ------------------------------------------------------------------

    def crash(self) -> Dict[str, int]:
        """Lose everything not durable *now*; apply seeded crash faults.

        Files are damaged in sorted-name order so the storage stream is
        consumed deterministically.  Returns a damage summary.
        """
        self.crashes += 1
        lost = torn = suffix_bytes = 0
        for name in sorted(self._files):
            entry = self._files[name]
            self._settle(entry)
            at_risk = [data for data, _ in entry.pending]
            at_risk.extend(entry.unsynced)
            entry.pending.clear()
            entry.unsynced.clear()
            torn_keep: Optional[int] = None
            lost_suffix = 0
            if self.injector is not None:
                torn_keep, lost_suffix = \
                    self.injector.storage_crash_verdict(
                        self.host,
                        len(at_risk[0]) if at_risk else 0,
                        len(entry.durable))
            if at_risk:
                lost += len(at_risk)
                if torn_keep is not None:
                    entry.durable += at_risk[0][:torn_keep]
                    torn += 1
            if lost_suffix:
                del entry.durable[-lost_suffix:]
                suffix_bytes += lost_suffix
        self.lost_writes += lost
        self.torn_tails += torn
        self.lost_suffix_bytes += suffix_bytes
        return {"lost_writes": lost, "torn_tails": torn,
                "lost_suffix_bytes": suffix_bytes}

    def stats(self) -> Dict[str, int]:
        return {
            "files": len(self._files),
            "writes": self.writes,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "crashes": self.crashes,
            "lost_writes": self.lost_writes,
            "torn_tails": self.torn_tails,
            "lost_suffix_bytes": self.lost_suffix_bytes,
        }
