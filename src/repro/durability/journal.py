"""The per-host write-ahead journal: framed records on a virtual disk.

Every state-changing delivery event on a durable host — agent
arrive/depart, dedup-window advances, landing transitions, dead-letter
parking and retransmission, checkpoint blobs — is appended as one
framed record and fsynced *before* the state change is considered
durable (write-ahead discipline).  A record frame is::

    4 bytes big-endian payload length
    4 bytes big-endian CRC-32 of the payload
    payload: canonical JSON (sorted keys, compact separators)

Replay walks frames until the bytes run out; a truncated header, an
impossible length, or a CRC mismatch ends replay *cleanly* at the last
good record — that is the torn-tail contract: a crash mid-write costs
at most the record being written, never the journal behind it.

Snapshots bound replay work: every ``snapshot_interval`` records the
journal writes the host's full durable state as the first record of a
*new* segment, then appends a ``switch`` record to the manifest (its
own tiny framed journal).  Recovery reads the manifest, takes the last
durable ``switch``, and replays only the active segment — a crash
mid-compaction simply leaves the manifest pointing at the old segment.
The previous segment is retained (a lost-suffix fault can orphan the
newest ``switch``); older ones are deleted.
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import codec
from repro.durability.store import VirtualDisk

_FRAME = struct.Struct(">II")

#: Replay refuses single records larger than this (a corrupted length
#: field must not provoke a giant allocation).
MAX_RECORD_BYTES = 4 * 1024 * 1024

#: Durable-state snapshot cadence, in records since the last snapshot.
DEFAULT_SNAPSHOT_INTERVAL = 256

MANIFEST = "MANIFEST"


def frame_record(body: Dict[str, Any]) -> bytes:
    """One framed record: length + CRC-32 + canonical JSON."""
    payload = json.dumps(body, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(data: bytes) -> Tuple[List[Dict[str, Any]], bool]:
    """Decode framed records; returns ``(records, torn)``.

    ``torn`` is True when trailing bytes did not form a whole, checksummed
    record — the expected shape of a crash mid-append.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            return records, True
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if length > MAX_RECORD_BYTES or start + length > total:
            return records, True
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return records, True
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, True
        records.append(body)
        offset = start + length
    return records, False


def encode_briefcase_blob(briefcase: Any) -> str:
    """A briefcase as a journal-safe base64 string of its wire bytes."""
    return base64.b64encode(codec.encode(briefcase)).decode("ascii")


def decode_briefcase_blob(blob: str) -> Any:
    return codec.decode(base64.b64decode(blob.encode("ascii")))


class HostJournal:
    """The write-ahead journal of one durable host."""

    def __init__(self, disk: VirtualDisk, host: str,
                 telemetry: Optional[Any] = None,
                 snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL
                 ) -> None:
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be positive")
        self.disk = disk
        self.host = host
        self.telemetry = telemetry
        self.snapshot_interval = snapshot_interval
        #: Provides the full durable state for snapshots (set by
        #: :class:`~repro.durability.recovery.HostDurability`).
        self.state_provider: \
            Optional[Callable[[], Dict[str, Any]]] = None
        self.suspended = False
        self.records_written = 0
        self.snapshots = 0
        self.replays = 0
        self.torn_tails_seen = 0
        self._segment_index = 0
        self._records_since_snapshot = 0
        self._compacting = False

    # -- segment bookkeeping -------------------------------------------------------

    @staticmethod
    def _segment_name(index: int) -> str:
        return f"segment-{index:06d}.wal"

    def active_segment(self) -> str:
        """The segment the manifest's last durable ``switch`` names."""
        records, _ = iter_frames(self.disk.read(MANIFEST))
        segment = self._segment_name(0)
        for record in records:
            if record.get("kind") == "switch" and record.get("segment"):
                segment = record["segment"]
        return segment

    # -- writing -------------------------------------------------------------------

    def suspend(self) -> None:
        """Stop journaling (the host is crashing: the in-memory
        bookkeeping that follows must not look durable)."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def record(self, kind: str, **fields: Any) -> None:
        """Append one record and fsync it (the write-ahead barrier)."""
        if self.suspended:
            return
        body: Dict[str, Any] = {"kind": kind, "t": self.disk.kernel.now}
        body.update(fields)
        segment = self._segment_name(self._segment_index)
        self.disk.append(segment, frame_record(body))
        self.disk.fsync(segment)
        self.records_written += 1
        self._records_since_snapshot += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("durability.records",
                                       host=self.host, record=kind)
        if (self.state_provider is not None and not self._compacting and
                self._records_since_snapshot >= self.snapshot_interval):
            self.compact()

    def record_message(self, kind: str, message: Any,
                       **fields: Any) -> None:
        """Append a record carrying a full message (envelope + blob)."""
        if self.suspended:
            return
        sender = message.sender
        fields.update(
            target=str(message.target),
            principal=sender.principal,
            sender_host=sender.host,
            sender_uri=str(sender.uri) if sender.uri else None,
            authenticated=bool(sender.authenticated),
            queue_timeout=message.queue_timeout,
            hops=message.hops,
            priority=message.priority,
            seq=message.seq,
            seq_src=message.seq_src,
            landing=message.landing_id,
            blob=encode_briefcase_blob(message.briefcase))
        self.record(kind, **fields)

    def compact(self) -> None:
        """Open a new segment headed by a full-state snapshot.

        Write order is the crash-safety argument: the snapshot segment
        is fsynced *before* the manifest switch, so a crash at any point
        leaves the manifest naming a complete segment.
        """
        if self.suspended or self.state_provider is None:
            return
        self._compacting = True
        try:
            state = self.state_provider()
            self._segment_index += 1
            segment = self._segment_name(self._segment_index)
            self.disk.append(segment, frame_record(
                {"kind": "snapshot", "t": self.disk.kernel.now,
                 "state": state}))
            self.disk.fsync(segment)
            self.disk.append(MANIFEST, frame_record(
                {"kind": "switch", "t": self.disk.kernel.now,
                 "segment": segment}))
            self.disk.fsync(MANIFEST)
            # Keep the previous segment: a lost-suffix fault can orphan
            # the newest switch record, falling recovery back one step.
            for name in self.disk.files():
                if name.startswith("segment-") and \
                        name < self._segment_name(self._segment_index - 1):
                    self.disk.delete(name)
            self._records_since_snapshot = 0
            self.snapshots += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.metrics.inc("durability.snapshots",
                                           host=self.host)
        finally:
            self._compacting = False

    # -- reading -------------------------------------------------------------------

    def read_active(self) -> Tuple[List[Dict[str, Any]], bool, str]:
        """Decode the active segment without counting a replay."""
        segment = self.active_segment()
        records, torn = iter_frames(self.disk.read(segment))
        return records, torn, segment

    def replay(self) -> Tuple[List[Dict[str, Any]], bool, str]:
        """The recovery-time read: also re-anchors segment numbering so
        post-recovery compaction continues monotonically."""
        records, torn, segment = self.read_active()
        try:
            self._segment_index = int(segment.split("-")[1].split(".")[0])
        except (IndexError, ValueError):
            pass
        self._records_since_snapshot = 0
        self.replays += 1
        if torn:
            self.torn_tails_seen += 1
        return records, torn, segment

    def stats(self) -> Dict[str, object]:
        return {
            "records_written": self.records_written,
            "snapshots": self.snapshots,
            "replays": self.replays,
            "torn_tails_seen": self.torn_tails_seen,
            "active_segment": self.active_segment(),
            "snapshot_interval": self.snapshot_interval,
        }
