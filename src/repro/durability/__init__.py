"""Crash-durable host storage: virtual disks, write-ahead journals,
replay recovery, and the system-wide agent-conservation auditor.

The firewall object happens to survive :meth:`Firewall.crash` only
because this is a simulation; on the ROADMAP's real-transport backend a
process crash destroys it.  This package makes the durable subset of a
host's delivery state — resident agents, dedup windows, landing
registry, dead-letter ledger — reconstructible from storage instead of
from in-process object identity:

- :mod:`repro.durability.store` — a deterministic per-host virtual
  disk with fsync barriers in virtual time and seeded crash faults;
- :mod:`repro.durability.journal` — a length+CRC framed write-ahead
  journal with periodic snapshots and segment compaction;
- :mod:`repro.durability.recovery` — the restart-time replay protocol
  (:class:`HostDurability`) that folds the journal back into live
  firewall state and relaunches resident agents;
- :mod:`repro.durability.conservation` — the
  :class:`ConservationAuditor` asserting that every agent ever spawned
  ends in exactly one terminal bucket.
"""

from repro.durability.conservation import ConservationAuditor
from repro.durability.journal import HostJournal
from repro.durability.recovery import HostDurability
from repro.durability.store import VirtualDisk

__all__ = ["ConservationAuditor", "HostDurability", "HostJournal",
           "VirtualDisk"]
