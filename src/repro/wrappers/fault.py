"""Fault-tolerance wrapper: checkpoint-to-cabinet and recovery.

Paper section 4 lists fault tolerance among the support multi-hop agents
need but single-hop agents don't — exactly the kind of functionality
that should travel *with* the agent rather than bloat every landing pad.

The :class:`CheckpointWrapper` snapshots the wrapped agent's entire
briefcase (code included — briefcases are relaunchable) into an
``ag_cabinet`` drawer at a stable host on every arrival and/or
departure.  If the agent is later lost — host crash, kill, partition —
:func:`recover` pulls the last checkpoint out of the cabinet and
relaunches it on a VM, resuming the itinerary from the last saved hop.
"""

from __future__ import annotations

from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import MigrationError, TaxError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.obs.propagation import link_args
from repro.sim.network import NetworkError
from repro.wrappers.base import AgentWrapper


class CheckpointWrapper(AgentWrapper):
    """Checkpoints the wrapped agent's briefcase to a cabinet drawer.

    Config keys:

    - ``cabinet``: URI string of the ag_cabinet service to store at
      (usually at the home host);
    - ``drawer``: the drawer name (required);
    - ``on``: list of points to checkpoint at — any of ``"arrive"``,
      ``"depart"`` (lifecycle), and ``"send"`` (before every outbound
      briefcase, i.e. at each of the agent's observable actions).
      Default: arrive + depart.
    """

    kind = "checkpoint"

    #: Lifecycle points ``on`` may name.
    VALID_POINTS = ("arrive", "depart", "send")

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        if "cabinet" not in self.config or "drawer" not in self.config:
            raise ValueError(
                "checkpoint wrapper needs 'cabinet' and 'drawer' config")
        self.points = tuple(self.config.get("on", ("arrive", "depart")))
        unknown = sorted(set(self.points) - set(self.VALID_POINTS))
        if unknown:
            raise ValueError(
                f"checkpoint wrapper: unknown point(s) {unknown} in 'on' "
                f"(valid: {list(self.VALID_POINTS)})")
        self.checkpoints_taken = 0

    def _checkpoint(self, ctx, point: str) -> None:
        request = ctx.briefcase.snapshot()
        request.put(wellknown.OP, "put")
        request.put("DRAWER", self.config["drawer"])
        ctx.post(AgentUri.parse(self.config["cabinet"]), request)
        self.checkpoints_taken += 1
        telemetry = ctx.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("checkpoint.taken", point=point,
                                  drawer=self.config["drawer"])

    def on_arrive(self, ctx) -> None:
        if "arrive" in self.points:
            self._checkpoint(ctx, "arrive")

    def on_depart(self, ctx, target: AgentUri) -> None:
        if "depart" in self.points:
            self._checkpoint(ctx, "depart")

    def on_send(self, ctx, target: AgentUri, briefcase: Briefcase):
        if "send" in self.points and \
                briefcase.get_text(wellknown.OP) != "put":
            # (Skip the wrapper's own cabinet traffic to avoid recursion.)
            self._checkpoint(ctx, "send")
        return target, briefcase


def recover(ctx, cabinet: "str | AgentUri", drawer: str,
            vm_target: "str | AgentUri", timeout: float = 60.0) -> str:
    """Relaunch the last checkpoint of an agent (generator).

    ``ctx`` must belong to the same principal that owned the lost agent
    (cabinet drawers are principal-scoped).  Returns the relaunched
    agent's URI string.
    """
    cabinet_uri = cabinet if isinstance(cabinet, AgentUri) \
        else AgentUri.parse(cabinet)
    request = Briefcase()
    request.put(wellknown.OP, "get")
    request.put("DRAWER", drawer)
    reply = yield from ctx.meet(cabinet_uri, request, timeout=timeout)
    if reply.get_text(wellknown.STATUS) != "ok":
        raise TaxError(
            f"no checkpoint in drawer {drawer!r}: "
            f"{reply.get_text(wellknown.ERROR)}")
    checkpoint = reply.snapshot()
    for transport_folder in (wellknown.STATUS, wellknown.MEET_TOKEN,
                             wellknown.REPLY_TO, wellknown.ERROR):
        checkpoint.drop(transport_folder)
    incarnation = checkpoint.get_text(wellknown.INCARNATION)
    if incarnation is not None:
        # Bump the carried incarnation so reports from the relaunched
        # agent are distinguishable from an orphaned twin still running
        # the old one (the rear guard kills on mismatch).
        try:
            bumped = int(incarnation) + 1
        except ValueError:
            bumped = 1
        checkpoint.drop(wellknown.INCARNATION)
        checkpoint.put(wellknown.INCARNATION, str(bumped))
    vm_uri = vm_target if isinstance(vm_target, AgentUri) \
        else AgentUri.parse(vm_target)
    # The relaunch is a migration like any other: it carries a landing
    # id so a duplicated or retried transport lands exactly once, and an
    # ambiguous failure poisons the landing rather than leaking a twin.
    landing = ctx._new_landing_id()
    previous_landing = ctx._outbound_landing
    ctx._outbound_landing = landing
    try:
        launch_reply = yield from ctx.meet(vm_uri, checkpoint,
                                           timeout=timeout)
    except (TaxError, NetworkError) as exc:
        ctx._abort_landing(vm_uri, landing, "recover")
        raise MigrationError(f"recovery relaunch failed: {exc}") from exc
    finally:
        ctx._outbound_landing = previous_landing
    if launch_reply.get_text(wellknown.STATUS) != "ok":
        raise MigrationError(
            f"recovery relaunch failed: "
            f"{launch_reply.get_text(wellknown.ERROR)}")
    uri = launch_reply.get_text("AGENT-URI")
    telemetry = ctx.kernel.telemetry
    if telemetry.enabled:
        telemetry.metrics.inc("recovery.relaunches", drawer=drawer)
        # The restore is an event in the recovering context's causal
        # story: link it so the trace shows which itinerary pulled the
        # checkpoint back out of the cabinet.
        telemetry.metrics.inc("recovery.checkpoint_restored",
                              drawer=drawer)
        telemetry.tracer.instant(
            "recovery.checkpoint_restored", category="fault",
            track=f"host:{ctx.host_name}", drawer=drawer, agent=uri,
            **link_args(ctx._current_trace()))
        telemetry.tracer.instant(
            "recovery.relaunch", category="fault",
            track=f"host:{ctx.host_name}", drawer=drawer, agent=uri)
    return uri
