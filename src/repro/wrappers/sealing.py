"""Sealing wrapper: end-to-end confidentiality carried by the agent.

Paper section 4 lists stronger *security guarantees* among the support
multi-hop agents need in hostile networks.  A sealing wrapper gives two
wrapped agents a private channel over untrusted firewalls and links:

- on send, every application folder is serialised, encrypted under a
  shared key, and authenticated; only the opaque SEALED/SEAL-MAC folders
  (plus routing metadata) remain visible to the system;
- on receive, the MAC is verified and the folders are restored; sealed
  messages that fail verification are *consumed* (dropped), so tampered
  traffic never reaches the agent.

The cipher is a SHA-256 keystream (stdlib-only, same substitution policy
as the HMAC signatures elsewhere); the confidentiality/authenticity
*decisions* are the real content here, not the primitive.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import itertools
from typing import Optional

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.firewall.message import Message
from repro.wrappers.base import AgentWrapper

SEALED_FOLDER = "SEALED"
MAC_FOLDER = "SEAL-MAC"

#: Folders that must stay readable for routing and RPC correlation.
CLEAR_FOLDERS = frozenset({
    SEALED_FOLDER, MAC_FOLDER,
    wellknown.MEET_TOKEN, wellknown.REPLY_TO, wellknown.AGENT_NAME,
})


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in itertools.count():
        if sum(len(b) for b in blocks) >= length:
            break
        blocks.append(hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")).digest())
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def seal(key: bytes, nonce: bytes, plaintext: bytes) -> "tuple[bytes, str]":
    """Encrypt-then-MAC; returns (nonce+ciphertext, mac hex)."""
    ciphertext = _xor(plaintext, _keystream(key, nonce, len(plaintext)))
    sealed = nonce + ciphertext
    mac = hmac.new(key, sealed, hashlib.sha256).hexdigest()
    return sealed, mac


def unseal(key: bytes, sealed: bytes, mac: str,
           nonce_len: int = 16) -> Optional[bytes]:
    """Verify and decrypt; None when the MAC does not check out."""
    expected = hmac.new(key, sealed, hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, mac):
        return None
    nonce, ciphertext = sealed[:nonce_len], sealed[nonce_len:]
    return _xor(ciphertext, _keystream(key, nonce, len(ciphertext)))


class SealingWrapper(AgentWrapper):
    """Seals application folders between wrapper peers.

    Config keys:

    - ``key_b64``: the shared secret, base64 (required);
    - ``seal_sends``: seal outbound traffic (default True);
    - ``require_sealed``: consume inbound messages that are *not* sealed
      (default False — mixed deployments pass plain traffic through).
    """

    kind = "sealing"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        if "key_b64" not in self.config:
            raise ValueError("sealing wrapper needs a key_b64 config entry")
        self.key = base64.b64decode(self.config["key_b64"])
        self.seal_sends = bool(self.config.get("seal_sends", True))
        self.require_sealed = bool(self.config.get("require_sealed", False))
        self._nonce_counter = 0
        self.sealed_count = 0
        self.unsealed_count = 0
        self.rejected_count = 0

    @staticmethod
    def make_key_config(secret: bytes, **extra) -> dict:
        return {"key_b64": base64.b64encode(secret).decode("ascii"),
                **extra}

    def _next_nonce(self, ctx) -> bytes:
        self._nonce_counter += 1
        seed = (f"{ctx.instance if ctx.registration else 'boot'}:"
                f"{self._nonce_counter}").encode()
        return hashlib.sha256(seed).digest()[:16]

    # -- outbound -----------------------------------------------------------------

    def on_send(self, ctx, target: AgentUri, briefcase: Briefcase):
        if not self.seal_sends:
            return target, briefcase
        payload = Briefcase()
        to_hide = [folder for folder in briefcase
                   if folder.name not in CLEAR_FOLDERS]
        if not to_hide:
            return target, briefcase
        for folder in to_hide:
            payload.folder(folder.name).push_all(folder)
        sealed, mac = seal(self.key, self._next_nonce(ctx),
                           codec.encode(payload))
        out = Briefcase()
        for folder in briefcase:
            if folder.name in CLEAR_FOLDERS:
                out.folder(folder.name).push_all(folder)
        out.folder(SEALED_FOLDER).replace([sealed])
        out.put(MAC_FOLDER, mac)
        self.sealed_count += 1
        return target, out

    # -- inbound ---------------------------------------------------------------------

    def on_receive(self, ctx, message: Message) -> Optional[Message]:
        briefcase = message.briefcase
        sealed_element = briefcase.get_first(SEALED_FOLDER)
        if sealed_element is None:
            if self.require_sealed:
                self.rejected_count += 1
                return None
            return message
        mac = briefcase.get_text(MAC_FOLDER, "")
        plaintext = unseal(self.key, sealed_element.data, mac)
        if plaintext is None:
            self.rejected_count += 1
            return None
        try:
            restored = codec.decode(plaintext)
        except Exception:  # lint: disable=ERR001 - hostile payloads: any decode failure is a rejection, never a retry
            self.rejected_count += 1
            return None
        briefcase.drop(SEALED_FOLDER)
        briefcase.drop(MAC_FOLDER)
        briefcase.merge(restored)
        self.unsealed_count += 1
        return message
