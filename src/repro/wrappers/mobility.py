"""The mobility wrapper: making non-mobile programs itinerant.

This is the paper's central move (section 5): *"take a stationary web
robot and encapsulate it using a mobile agent wrapper"*.  The generic
:func:`mobile_task_agent` is that wrapper, with the Webbot-specific
pieces factored into configuration:

- the carried **program** (a signed, per-architecture ``binary`` payload
  — the Webbot binary in the paper) lives in the PROGRAM folder;
- the **itinerary** is a folder of stops, each naming a destination VM
  and the program's arguments there;
- at each stop the agent executes the program through the site's
  ``ag_exec`` service (exactly mwWebbot's use of ag_exec), optionally
  condenses the result through a named post-processor, appends it to
  RESULTS, and moves on;
- when the itinerary is exhausted, the condensed results are sent to the
  HOME agent.

Unreachable hosts and failed executions do not kill the agent: they are
recorded in FAILURES and the itinerary continues — the Figure-4
"Unable to reach" pattern.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

from repro.agent.context import DEFAULT_MEET_TIMEOUT
from repro.core.briefcase import Briefcase
from repro.core.errors import MigrationError, TaxError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.vm import loader

#: Folder names of the mobility protocol.
ITINERARY = "ITINERARY"
PROGRAM = "PROGRAM"
PROGRAM_KIND = "PROGRAM-KIND"
CURRENT_STOP = "CURRENT-STOP"
HOME = "HOME"
FAILURES = "FAILURES"
POSTPROCESS = "POSTPROCESS"
HOP_TIMEOUT = "HOP-TIMEOUT"


def install_program(briefcase: Briefcase, payload: loader.Payload) -> None:
    """Put the carried program into the agent's briefcase."""
    briefcase.put(PROGRAM_KIND, payload.kind)
    briefcase.folder(PROGRAM).replace([payload.blob])


def read_program(briefcase: Briefcase) -> loader.Payload:
    kind = briefcase.get_text(PROGRAM_KIND)
    blob = briefcase.get_first(PROGRAM)
    if kind is None or blob is None:
        raise TaxError("briefcase carries no PROGRAM payload")
    return loader.Payload(kind, blob.data)


def add_stop(briefcase: Briefcase, vm_uri: str,
             args: Optional[Dict[str, Any]] = None) -> None:
    """Append an itinerary stop: run the program with ``args`` after
    relocating to ``vm_uri``."""
    briefcase.folder(ITINERARY).push(
        json.dumps({"vm": vm_uri, "args": args or {}}, sort_keys=True))


def set_home(briefcase: Briefcase, home_uri: str) -> None:
    briefcase.put(HOME, home_uri)


def set_hop_timeout(briefcase: Briefcase, seconds: float) -> None:
    """Per-hop ack patience for the carried itinerary.

    The mobility wrapper waits this long for each migration ack before
    re-sending the transport (the landing handshake makes the re-send
    land exactly once).  Without the folder, hops use the default meet
    timeout — fine on a quiet network, glacial when an asymmetric link
    failure is eating acks."""
    briefcase.put(HOP_TIMEOUT, repr(float(seconds)))


def hop_timeout(briefcase: Briefcase, default: float) -> float:
    raw = briefcase.get_text(HOP_TIMEOUT)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def set_postprocessor(briefcase: Briefcase, func) -> None:
    """Name an *installed* function (module:qualname) applied to every raw
    program result before it is stored — the condensation step."""
    briefcase.put(POSTPROCESS, loader.pack_ref(func).blob)


def make_task_briefcase(program: loader.Payload,
                        stops: Iterable[Dict[str, Any]],
                        home_uri: Optional[str] = None,
                        postprocessor=None,
                        agent_name: str = "mw_agent",
                        hop_timeout: Optional[float] = None) -> Briefcase:
    """Assemble a launch-ready mobility-wrapper briefcase.

    ``stops`` are dicts with keys ``vm`` (URI string) and ``args``.
    """
    briefcase = Briefcase()
    loader.install_payload(
        briefcase, loader.pack_ref(mobile_task_agent),
        agent_name=agent_name)
    install_program(briefcase, program)
    for stop in stops:
        add_stop(briefcase, stop["vm"], stop.get("args"))
    if home_uri is not None:
        set_home(briefcase, home_uri)
    if postprocessor is not None:
        set_postprocessor(briefcase, postprocessor)
    if hop_timeout is not None:
        set_hop_timeout(briefcase, hop_timeout)
    return briefcase


# -- the agent itself -------------------------------------------------------------


def _postprocess(briefcase: Briefcase, result: Any, args: Dict) -> Any:
    blob = briefcase.get_first(POSTPROCESS)
    if blob is None:
        return result
    func = loader.materialize_ref(
        loader.Payload(loader.KIND_REF, blob.data))
    return func(result, args)


def _execute_here(ctx, briefcase: Briefcase, stop: Dict):
    """Run the carried program at this site via ag_exec."""
    request = Briefcase()
    loader.install_payload(request, read_program(briefcase))
    request.put(wellknown.ARGS, stop.get("args", {}))
    response = yield from ctx.call_service("ag_exec", "exec", request)
    return response.get_json(wellknown.RESULTS)


def _report_home(ctx, briefcase: Briefcase):
    """Ship only the condensed results (plus trail/failures) home."""
    results = [e.as_json() for e in briefcase.folder(wellknown.RESULTS)]
    home = briefcase.get_text(HOME)
    if home is None:
        return results
    report = Briefcase()
    report.folder(wellknown.RESULTS).push_all(
        e.data for e in briefcase.folder(wellknown.RESULTS))
    for extra in (FAILURES, wellknown.TRAIL):
        if briefcase.has(extra):
            report.folder(extra).push_all(
                e.data for e in briefcase.get(extra))
    report.put(wellknown.STATUS, "ok")
    report.put(wellknown.AGENT_NAME, ctx.name)
    yield from ctx.send(home, report)
    return results


def _stop_host(stop: Dict) -> Optional[str]:
    """The planned host of an itinerary stop (None for local VM names)."""
    try:
        return AgentUri.parse(stop["vm"]).host
    except TaxError:
        return None


def mobile_task_agent(ctx, briefcase: Briefcase):
    """Generic mobility wrapper: execute-here, hop, repeat, report."""
    briefcase.append(wellknown.TRAIL,
                     json.dumps({"host": ctx.host_name, "t": ctx.now}))
    patience = hop_timeout(briefcase, DEFAULT_MEET_TIMEOUT)
    stop = briefcase.get_json(CURRENT_STOP)
    if stop is not None:
        planned = _stop_host(stop)
        if planned is not None and planned != ctx.host_name:
            # Relaunched off-site — a rear-guard recovered this agent's
            # checkpoint onto a surviving host.  Try to resume at the
            # planned stop (CURRENT-STOP stays set, so the fresh
            # incarnation executes there); if the host is still
            # unreachable, skip the stop and report it.
            try:
                yield from ctx.go(stop["vm"], timeout=patience)
            except MigrationError as exc:
                ctx.log(f"unable to resume at {stop['vm']}: {exc}")
                briefcase.drop(CURRENT_STOP)
                briefcase.append(FAILURES, {
                    "host": planned, "phase": "go", "error": str(exc)})
                stop = None
    if stop is not None:
        briefcase.drop(CURRENT_STOP)
        try:
            raw = yield from _execute_here(ctx, briefcase, stop)
            condensed = _postprocess(briefcase, raw, stop.get("args", {}))
            briefcase.append(wellknown.RESULTS, condensed)
        except TaxError as exc:
            ctx.log(f"program execution failed: {exc}")
            briefcase.append(FAILURES, {
                "host": ctx.host_name, "phase": "exec", "error": str(exc)})
    while True:
        entry = briefcase.folder(ITINERARY).pop_first()
        if entry is None:
            return (yield from _report_home(ctx, briefcase))
        stop = json.loads(entry.as_text())
        briefcase.put(CURRENT_STOP, stop)
        try:
            yield from ctx.go(stop["vm"], timeout=patience)
        except MigrationError as exc:
            # "Unable to reach %s": log it and try the next stop.
            ctx.log(f"unable to reach {stop['vm']}: {exc}")
            briefcase.drop(CURRENT_STOP)
            briefcase.append(FAILURES, {
                "host": _stop_host(stop) or stop["vm"], "phase": "go",
                "error": str(exc)})
