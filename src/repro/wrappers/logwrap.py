"""Logging wrapper: a transparent traffic tap around an agent.

The simplest useful wrapper — and the paper's Figure-5 diagram shows a
"Logging" layer inside the wrapped Webbot.  It observes every send and
receive without altering them, keeping counters and (optionally) a trace
folder inside the agent's own briefcase so the log travels with the
agent and comes home in the final report.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core import codec
from repro.core.uri import AgentUri
from repro.firewall.message import Message
from repro.wrappers.base import AgentWrapper

LOG_FOLDER = "WRAPLOG"


class LoggingWrapper(AgentWrapper):
    """Counts and traces the wrapped agent's traffic.

    Config keys:

    - ``trace``: append one JSON line per event to the WRAPLOG folder of
      the agent's briefcase (default False — counters only);
    - ``max_trace``: cap on trace entries (default 1000).
    """

    kind = "logging"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        self.sent = 0
        self.received = 0
        self.sent_bytes = 0
        self.received_bytes = 0
        self.hops = 0

    def _trace(self, ctx, record: dict) -> None:
        if not self.config.get("trace", False):
            return
        folder = ctx.briefcase.folder(LOG_FOLDER)
        if len(folder) >= int(self.config.get("max_trace", 1000)):
            return
        record["t"] = ctx.now
        folder.push(json.dumps(record, sort_keys=True))

    def on_send(self, ctx, target: AgentUri, briefcase: Briefcase):
        size = codec.encoded_size(briefcase)
        self.sent += 1
        self.sent_bytes += size
        self._trace(ctx, {"dir": "send", "to": str(target), "bytes": size})
        return target, briefcase

    def on_receive(self, ctx, message: Message) -> Message:
        size = codec.encoded_size(message.briefcase)
        self.received += 1
        self.received_bytes += size
        self._trace(ctx, {"dir": "recv",
                          "from": message.sender.principal, "bytes": size})
        return message

    def on_depart(self, ctx, target: AgentUri) -> None:
        self.hops += 1
        self._trace(ctx, {"dir": "hop", "to": str(target)})

    def counters(self) -> dict:
        return {"sent": self.sent, "received": self.received,
                "sent_bytes": self.sent_bytes,
                "received_bytes": self.received_bytes, "hops": self.hops}
