"""Wrapper interface: intercepting the minimal agent interface.

Paper section 4: *"Agents can perform only two actions that are
observable to the system: Sending a briefcase and receiving a briefcase
... It is this interface a wrapper can observe and intercept messages
to."*  And: *"The system passes any briefcase from the agent to the
wrapper, and any briefcase addressed to the agent is sent to the wrapper
first.  Wrappers may be stacked in arbitrary depth."*

A wrapper therefore implements (any subset of):

- ``on_send``    — observe/rewrite/swallow outbound briefcases;
- ``on_receive`` — observe/rewrite/consume inbound briefcases;
- lifecycle hooks (``on_attach``, ``on_arrive``, ``on_depart``,
  ``on_detach``) so wrappers can carry cross-hop behaviour (the
  monitoring wrapper reports every arrival).

Wrappers travel with the agent: the stack is serialised into the
briefcase's WRAPPERS folder and re-instantiated by the destination VM
(see :mod:`repro.wrappers.stack`), which is exactly how agents "carry
with them the specific system support they need".
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.firewall.message import Message


class AgentWrapper:
    """Base class: the identity wrapper.  Subclass and override hooks."""

    #: Stable type tag used in logs and reports.
    kind = "identity"

    def __init__(self, config: Optional[dict] = None):
        self.config = dict(config or {})

    # -- lifecycle -------------------------------------------------------------

    def on_attach(self, ctx) -> None:
        """Called once when the wrapper is bound to a (re)launched agent."""

    def on_arrive(self, ctx) -> None:
        """Called after the wrapped agent registers at a (new) site."""

    def on_depart(self, ctx, target: AgentUri) -> None:
        """Called just before the wrapped agent moves to ``target``."""

    def on_detach(self, ctx) -> None:
        """Called when the wrapped agent terminates at this site."""

    # -- interception -----------------------------------------------------------

    def on_send(self, ctx, target: AgentUri, briefcase: Briefcase
                ) -> Optional[Tuple[AgentUri, Briefcase]]:
        """Intercept an outbound briefcase.

        Return a (possibly rewritten) ``(target, briefcase)`` to pass it
        outward, or None to swallow it.
        """
        return target, briefcase

    def on_receive(self, ctx, message: Message) -> Optional[Message]:
        """Intercept an inbound message.

        Return a (possibly rewritten) message to pass it inward, or None
        to consume it (e.g. a control message answered by the wrapper).
        """
        return message

    # -- introspection -------------------------------------------------------------

    def describe(self) -> dict:
        return {"kind": self.kind, "config": dict(self.config)}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r}>"
