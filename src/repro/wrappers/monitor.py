"""The monitoring wrapper (the paper's rwWebbot).

Paper section 5: *"In order for us to monitor and keep control of the
application, we added another wrapper around mwWebbot, called rwWebbot.
This wrapper reports back to a monitoring tool about the location of the
agent it wraps ... and can be queried about the status of the
computation."*

The wrapper does two things, both without the wrapped agent's knowledge:

- **location reporting** — every arrival/departure/finish posts an event
  briefcase to the configured monitor URI;
- **status queries** — inbound messages with OP=``status-query`` are
  answered by the wrapper itself (consumed before the agent sees them).

Both paths feed the system telemetry (:mod:`repro.obs`) as well: reports
become instant events on the tracer, and status replies carry the live
per-agent metrics the registry holds — so the rwWebbot protocol stays
paper-faithful on the wire while the answers gain span/metric data.

:class:`MonitorLog` is the matching "monitoring tool": a collector that
accumulates the reports for inspection and, when given a tracer,
reconstructs per-host residency spans from arrival/departure events.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.message import Message
from repro.obs.telemetry import standalone_tracer
from repro.obs.tracing import Tracer
from repro.wrappers.base import AgentWrapper

OP_STATUS_QUERY = "status-query"
EVENT_FOLDER = "MONITOR-EVENT"


class MonitorWrapper(AgentWrapper):
    """Reports location, answers status queries.

    Config keys:

    - ``monitor``: URI string of the monitoring tool (optional — without
      it the wrapper only answers queries);
    - ``tag``: label included in every report (defaults to the agent name);
    - ``heartbeat``: interval in seconds — when set, the wrapper posts a
      periodic ``heartbeat`` report while the agent runs, which is what
      lets a rear guard detect a *silently* lost agent (a crashed host
      sends nothing, including no "finished").
    """

    kind = "monitor"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        self.messages_forwarded = 0
        self.queries_answered = 0

    # -- reporting ------------------------------------------------------------------

    def _report(self, ctx, event: str, extra: Optional[dict] = None) -> None:
        if not getattr(ctx.node, "alive", True):
            # A crashed host reports nothing — not even the "finished"
            # fired by the unwinding agent process.  Silence is the
            # signal the rear guard acts on.
            return
        tag = self.config.get("tag", ctx.name if ctx.registration
                              else "agent")
        telemetry = ctx.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("monitor.reports", tag=tag, event=event)
            telemetry.tracer.instant(
                f"monitor.{event}", category="monitor",
                track=f"host:{ctx.host_name}", tag=tag,
                **(extra or {}))
        monitor = self.config.get("monitor")
        if monitor is None:
            return
        body = {
            "event": event,
            "agent": f"{ctx.name}:{ctx.instance}" if ctx.registration
            else ctx.vm_name,
            "tag": tag,
            "host": ctx.host_name,
            "t": ctx.now,
        }
        incarnation = ctx.briefcase.get_text(wellknown.INCARNATION)
        if incarnation is not None:
            # Carried only by incarnation-stamped agents (see
            # wellknown.INCARNATION): lets a rear guard tell reports of
            # the live incarnation from an orphaned twin's.
            body["incarnation"] = incarnation
        body.update(extra or {})
        briefcase = Briefcase()
        briefcase.put(EVENT_FOLDER, body)
        ctx.post(AgentUri.parse(monitor), briefcase)

    def on_attach(self, ctx) -> None:
        interval = self.config.get("heartbeat")
        if interval:
            ctx.kernel.spawn(self._heartbeat_loop(ctx, float(interval)),
                             name=f"heartbeat:{ctx.vm_name}")

    def _heartbeat_loop(self, ctx, interval: float):
        while True:
            yield ctx.kernel.timeout(interval)
            if ctx.finished or ctx.moved or \
                    not getattr(ctx.node, "alive", True):
                return
            self._report(ctx, "heartbeat")

    def on_arrive(self, ctx) -> None:
        self._report(ctx, "arrived")

    def on_depart(self, ctx, target: AgentUri) -> None:
        self._report(ctx, "departing", {"to": str(target)})

    def on_detach(self, ctx) -> None:
        self._report(ctx, "finished",
                     {"results": len(ctx.briefcase.folder(wellknown.RESULTS))})

    # -- status queries ----------------------------------------------------------------

    def _status(self, ctx) -> dict:
        status = {
            "agent": f"{ctx.name}:{ctx.instance}",
            "host": ctx.host_name,
            "results_so_far": len(ctx.briefcase.folder(wellknown.RESULTS)),
            "stops_remaining": len(ctx.briefcase.folder("ITINERARY")),
            "t": ctx.now,
        }
        # Live telemetry: the agent's own counters plus its open
        # lifecycle span, pulled straight from the system registry.
        telemetry = ctx.kernel.telemetry
        status["telemetry"] = telemetry.agent_stats(ctx.name)
        if telemetry.enabled and ctx.run_span is not None \
                and not ctx.run_span.finished:
            status["telemetry"]["running_since"] = ctx.run_span.start
        return status

    def on_receive(self, ctx, message: Message) -> Optional[Message]:
        if message.briefcase.get_text(wellknown.OP) == OP_STATUS_QUERY:
            self.queries_answered += 1
            reply_to = message.briefcase.get_text(wellknown.REPLY_TO)
            if reply_to is not None:
                response = Briefcase()
                response.put(wellknown.STATUS, "ok")
                response.put(wellknown.RESULTS, self._status(ctx))
                token = message.briefcase.get_text(wellknown.MEET_TOKEN)
                if token is not None:
                    response.put(wellknown.MEET_TOKEN, token)
                ctx.post(AgentUri.parse(reply_to), response)
            return None
        self.messages_forwarded += 1
        return message


class MonitorLog:
    """The monitoring tool: collects reports sent by MonitorWrappers.

    Attach with :meth:`agent_main` as a py-ref agent, or wire
    :meth:`deliver` straight into a registration for test use.

    The log delegates to a span :class:`~repro.obs.tracing.Tracer`
    (its own by default, or the system one if passed in): every report
    becomes an instant event, and each *arrived → departing/finished*
    pair becomes a residency span ``at:<host>`` on the agent's monitor
    track — so the paper's ad-hoc location log and the system trace are
    one and the same timeline.
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self.events = []
        self.tracer = tracer if tracer is not None \
            else standalone_tracer()
        #: tag → the latest unmatched "arrived" event, awaiting departure.
        self._arrivals: Dict[str, dict] = {}

    def deliver(self, message: Message) -> bool:
        element = message.briefcase.get_first(EVENT_FOLDER)
        if element is None:
            return True
        event = json.loads(element.as_text())
        self.events.append(event)
        self._trace(event)
        return True

    def _trace(self, event: dict) -> None:
        tag = event.get("tag", "agent")
        track = f"monitor:{tag}"
        kind = event.get("event", "report")
        when = event.get("t", 0.0)
        self.tracer.instant(f"monitor.{kind}", category="monitor",
                            track=track, at=when, host=event.get("host"),
                            agent=event.get("agent"))
        if kind == "arrived":
            self._arrivals[tag] = event
            return
        if kind not in ("departing", "finished"):
            # Heartbeats and other periodic reports must not consume
            # the pending arrival, or residency spans would break.
            return
        arrival = self._arrivals.pop(tag, None)
        if arrival is not None:
            self.tracer.record(
                f"at:{arrival.get('host')}", arrival.get("t", when), when,
                category="monitor", track=track,
                agent=arrival.get("agent"), outcome=kind)

    def locations(self) -> list:
        return [(e["t"], e["host"], e["event"]) for e in self.events]

    def last_known_host(self, tag: Optional[str] = None) -> Optional[str]:
        for event in reversed(self.events):
            if tag is None or event.get("tag") == tag:
                return event["host"]
        return None

    def residency_spans(self, tag: Optional[str] = None) -> list:
        """The reconstructed ``at:<host>`` spans (one per visited host)."""
        spans = self.tracer.find(category="monitor")
        if tag is not None:
            spans = [s for s in spans if s.track == f"monitor:{tag}"]
        return [s for s in spans if s.name.startswith("at:")]
