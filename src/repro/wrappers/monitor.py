"""The monitoring wrapper (the paper's rwWebbot).

Paper section 5: *"In order for us to monitor and keep control of the
application, we added another wrapper around mwWebbot, called rwWebbot.
This wrapper reports back to a monitoring tool about the location of the
agent it wraps ... and can be queried about the status of the
computation."*

The wrapper does two things, both without the wrapped agent's knowledge:

- **location reporting** — every arrival/departure/finish posts an event
  briefcase to the configured monitor URI;
- **status queries** — inbound messages with OP=``status-query`` are
  answered by the wrapper itself (consumed before the agent sees them).

:class:`MonitorLog` is the matching "monitoring tool": a tiny collector
that accumulates the reports for inspection.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.message import Message
from repro.wrappers.base import AgentWrapper

OP_STATUS_QUERY = "status-query"
EVENT_FOLDER = "MONITOR-EVENT"


class MonitorWrapper(AgentWrapper):
    """Reports location, answers status queries.

    Config keys:

    - ``monitor``: URI string of the monitoring tool (optional — without
      it the wrapper only answers queries);
    - ``tag``: label included in every report (defaults to the agent name).
    """

    kind = "monitor"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        self.messages_forwarded = 0
        self.queries_answered = 0

    # -- reporting ------------------------------------------------------------------

    def _report(self, ctx, event: str, extra: Optional[dict] = None) -> None:
        monitor = self.config.get("monitor")
        if monitor is None:
            return
        body = {
            "event": event,
            "agent": f"{ctx.name}:{ctx.instance}" if ctx.registration
            else ctx.vm_name,
            "tag": self.config.get("tag", ctx.name if ctx.registration
                                    else "agent"),
            "host": ctx.host_name,
            "t": ctx.now,
        }
        body.update(extra or {})
        briefcase = Briefcase()
        briefcase.put(EVENT_FOLDER, body)
        ctx.post(AgentUri.parse(monitor), briefcase)

    def on_arrive(self, ctx) -> None:
        self._report(ctx, "arrived")

    def on_depart(self, ctx, target: AgentUri) -> None:
        self._report(ctx, "departing", {"to": str(target)})

    def on_detach(self, ctx) -> None:
        self._report(ctx, "finished",
                     {"results": len(ctx.briefcase.folder(wellknown.RESULTS))})

    # -- status queries ----------------------------------------------------------------

    def _status(self, ctx) -> dict:
        return {
            "agent": f"{ctx.name}:{ctx.instance}",
            "host": ctx.host_name,
            "results_so_far": len(ctx.briefcase.folder(wellknown.RESULTS)),
            "stops_remaining": len(ctx.briefcase.folder("ITINERARY")),
            "t": ctx.now,
        }

    def on_receive(self, ctx, message: Message) -> Optional[Message]:
        if message.briefcase.get_text(wellknown.OP) == OP_STATUS_QUERY:
            self.queries_answered += 1
            reply_to = message.briefcase.get_text(wellknown.REPLY_TO)
            if reply_to is not None:
                response = Briefcase()
                response.put(wellknown.STATUS, "ok")
                response.put(wellknown.RESULTS, self._status(ctx))
                token = message.briefcase.get_text(wellknown.MEET_TOKEN)
                if token is not None:
                    response.put(wellknown.MEET_TOKEN, token)
                ctx.post(AgentUri.parse(reply_to), response)
            return None
        self.messages_forwarded += 1
        return message


class MonitorLog:
    """The monitoring tool: collects reports sent by MonitorWrappers.

    Attach with :meth:`agent_main` as a py-ref agent, or wire
    :meth:`deliver` straight into a registration for test use.
    """

    def __init__(self):
        self.events = []

    def deliver(self, message: Message) -> bool:
        element = message.briefcase.get_first(EVENT_FOLDER)
        if element is not None:
            self.events.append(json.loads(element.as_text()))
        return True

    def locations(self) -> list:
        return [(e["t"], e["host"], e["event"]) for e in self.events]

    def last_known_host(self, tag: Optional[str] = None) -> Optional[str]:
        for event in reversed(self.events):
            if tag is None or event.get("tag") == tag:
                return event["host"]
        return None
