"""Location transparency: logical names over moving agents.

Paper section 4: *"If the agents are to move, one can add a location
transparent wrapper around the broadcast wrapper."*  The design is the
classic home-registry one:

- a **locator service** (:class:`~repro.services.ag_locator.AgLocator`)
  at some stable host maps logical names to current agent URIs;
- the :class:`LocationWrapper` keeps the registry current: every arrival
  re-registers the agent's new URI, termination removes it;
- senders resolve a logical name through :func:`resolve` (or combine
  both steps with :func:`send_via`), so they never need to know where
  the agent currently is.
"""

from __future__ import annotations

from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import AgentNotFoundError, TaxError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.wrappers.base import AgentWrapper


class LocationWrapper(AgentWrapper):
    """Publishes the wrapped agent's location to a registry.

    Config keys:

    - ``registry``: URI string of the ag_locator service (required);
    - ``logical``: the stable name under which the agent is published.
    """

    kind = "location"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        if "registry" not in self.config or "logical" not in self.config:
            raise ValueError(
                "location wrapper needs 'registry' and 'logical' config")
        self.updates_sent = 0

    def _registry(self) -> AgentUri:
        return AgentUri.parse(self.config["registry"])

    def on_arrive(self, ctx) -> None:
        request = Briefcase()
        request.put(wellknown.OP, "update")
        request.put(wellknown.ARGS, {
            "name": self.config["logical"],
            "uri": str(ctx.uri),
        })
        ctx.post(self._registry(), request)
        self.updates_sent += 1

    def on_detach(self, ctx) -> None:
        request = Briefcase()
        request.put(wellknown.OP, "remove")
        request.put(wellknown.ARGS, {"name": self.config["logical"]})
        ctx.post(self._registry(), request)


def resolve(ctx, registry: "str | AgentUri", logical: str,
            timeout: float = 30.0) -> AgentUri:
    """Look a logical name up in a locator registry (generator)."""
    target = registry if isinstance(registry, AgentUri) \
        else AgentUri.parse(registry)
    request = Briefcase()
    request.put(wellknown.OP, "lookup")
    request.put(wellknown.ARGS, {"name": logical})
    reply = yield from ctx.meet(target, request, timeout=timeout)
    if reply.get_text(wellknown.STATUS) != "ok":
        raise AgentNotFoundError(
            f"locator has no entry for {logical!r}: "
            f"{reply.get_text(wellknown.ERROR)}")
    results = reply.get_json(wellknown.RESULTS, {})
    uri = results.get("uri")
    if not uri:
        raise AgentNotFoundError(f"locator has no entry for {logical!r}")
    return AgentUri.parse(uri)


def send_via(ctx, registry: "str | AgentUri", logical: str,
             briefcase: Briefcase, timeout: float = 30.0):
    """Resolve a logical name and send to the current location."""
    target = yield from resolve(ctx, registry, logical, timeout=timeout)
    ok = yield from ctx.send(target, briefcase)
    if not ok:
        raise TaxError(f"send to {logical!r} (at {target}) was dropped")
    return target
