"""Group-communication wrapper: FIFO / totally-ordered multicast.

Paper section 4's worked example of carried system support: *"a group
communication wrapper can be used to wrap an application agent.  As the
wrapper is instantiated, it is given parameters such as group membership
(all agents sharing common class), and desired properties of
communication (casual, FIFO, atomic, etc)."*

The wrapper intercepts sends addressed to the *group name* and fans them
out to the member URIs; inbound group traffic is re-sequenced before the
agent sees it:

- ``fifo`` — per-sender FIFO: each sender stamps a sequence number;
  receivers hold back out-of-order messages and release them in order.
- ``total`` — atomic/total order via a fixed sequencer (the classic
  design the paper's ISIS/Horus lineage used): senders forward to the
  sequencer member, which stamps a global sequence and fans out; all
  members deliver in stamped order.

Held-back messages are re-injected through the firewall once their gap
fills, so ordering costs real (simulated) redelivery work.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.firewall.message import Message
from repro.wrappers.base import AgentWrapper

GC_GROUP = "GC-GROUP"
GC_SENDER = "GC-SENDER"
GC_SEQ = "GC-SEQ"
GC_TOTAL_SEQ = "GC-TOTAL-SEQ"
GC_KIND = "GC-KIND"

KIND_DATA = "data"
KIND_TO_ORDER = "to-order"

ORDER_FIFO = "fifo"
ORDER_TOTAL = "total"


def _member_key(uri: AgentUri) -> "tuple":
    """Identity of a member for self-comparison (host + agent name)."""
    return (uri.host, uri.name)


class GroupCommWrapper(AgentWrapper):
    """Multicast with ordering, carried by the agent itself.

    Config keys:

    - ``group``: the logical group name (sends addressed to this name are
      intercepted);
    - ``members``: list of member agent URI strings;
    - ``ordering``: ``"fifo"`` (default) or ``"total"``;
    - ``deliver_self``: include the sender in the fan-out (default True).
    """

    kind = "groupcomm"

    def __init__(self, config: Optional[dict] = None):
        super().__init__(config)
        self.group = self.config.get("group", "group")
        self.members: List[str] = list(self.config.get("members", ()))
        if not self.members:
            raise ValueError("group wrapper needs a non-empty member list")
        self.ordering = self.config.get("ordering", ORDER_FIFO)
        if self.ordering not in (ORDER_FIFO, ORDER_TOTAL):
            raise ValueError(f"unknown ordering {self.ordering!r}")
        self.deliver_self = bool(self.config.get("deliver_self", True))
        self._send_seq = 0
        self._sequencer_seq = 0
        #: sender uri -> next expected per-sender seq (fifo).
        self._expected: Dict[str, int] = {}
        #: expected next total seq (total order).
        self._expected_total = 1
        #: held-back messages awaiting their gap, by ordering key.
        self._holdback: Dict[object, Message] = {}
        self.delivered = 0
        self.reordered = 0

    # -- helpers --------------------------------------------------------------------

    @property
    def sequencer(self) -> str:
        return self.members[0]

    def _is_sequencer(self, ctx) -> bool:
        return _member_key(AgentUri.parse(self.sequencer)) == \
            _member_key(ctx.uri)

    def _stamp(self, briefcase: Briefcase, ctx, kind: str) -> Briefcase:
        stamped = briefcase.snapshot()
        stamped.put(GC_GROUP, self.group)
        stamped.put(GC_SENDER, str(ctx.uri))
        stamped.put(GC_KIND, kind)
        return stamped

    def _fan_out(self, ctx, briefcase: Briefcase) -> None:
        for member in self.members:
            member_uri = AgentUri.parse(member)
            if not self.deliver_self and \
                    _member_key(member_uri) == _member_key(ctx.uri):
                continue
            ctx.post(member_uri, briefcase.snapshot())

    # -- outbound ----------------------------------------------------------------------

    def on_send(self, ctx, target: AgentUri, briefcase: Briefcase):
        if target.name != self.group:
            return target, briefcase
        if self.ordering == ORDER_FIFO:
            self._send_seq += 1
            stamped = self._stamp(briefcase, ctx, KIND_DATA)
            stamped.put(GC_SEQ, self._send_seq)
            self._fan_out(ctx, stamped)
            return None
        # Total order: route through the sequencer.
        if self._is_sequencer(ctx):
            self._sequencer_seq += 1
            stamped = self._stamp(briefcase, ctx, KIND_DATA)
            stamped.put(GC_TOTAL_SEQ, self._sequencer_seq)
            self._fan_out(ctx, stamped)
        else:
            stamped = self._stamp(briefcase, ctx, KIND_TO_ORDER)
            ctx.post(AgentUri.parse(self.sequencer), stamped)
        return None

    # -- inbound ------------------------------------------------------------------------

    def on_receive(self, ctx, message: Message) -> Optional[Message]:
        briefcase = message.briefcase
        if briefcase.get_text(GC_GROUP) != self.group:
            return message
        kind = briefcase.get_text(GC_KIND)
        if kind == KIND_TO_ORDER:
            if self._is_sequencer(ctx):
                self._sequencer_seq += 1
                stamped = briefcase.snapshot()
                stamped.put(GC_KIND, KIND_DATA)
                stamped.put(GC_TOTAL_SEQ, self._sequencer_seq)
                self._fan_out(ctx, stamped)
            return None
        if self.ordering == ORDER_FIFO:
            return self._deliver_fifo(ctx, message)
        return self._deliver_total(ctx, message)

    def _deliver_fifo(self, ctx, message: Message) -> Optional[Message]:
        briefcase = message.briefcase
        sender = briefcase.get_text(GC_SENDER, "")
        seq = int(briefcase.get_json(GC_SEQ, 0))
        expected = self._expected.get(sender, 1)
        if seq < expected:
            return None  # duplicate
        if seq > expected:
            self.reordered += 1
            self._holdback[(sender, seq)] = message
            return None
        self._expected[sender] = expected + 1
        self._release_fifo(ctx, sender)
        self.delivered += 1
        return message

    def _release_fifo(self, ctx, sender: str) -> None:
        """Re-inject consecutively held messages now that the gap filled."""
        while (sender, self._expected.get(sender, 1)) in self._holdback:
            seq = self._expected[sender]
            held = self._holdback.pop((sender, seq))
            ctx.post(ctx.uri, held.briefcase)
            # The re-posted copy will come back through on_receive with
            # seq == expected at that time; bump now so ordering holds if
            # more arrive meanwhile.
            break  # one at a time: redelivery re-triggers release

    def _deliver_total(self, ctx, message: Message) -> Optional[Message]:
        briefcase = message.briefcase
        seq = int(briefcase.get_json(GC_TOTAL_SEQ, 0))
        if seq < self._expected_total:
            return None  # duplicate
        if seq > self._expected_total:
            self.reordered += 1
            self._holdback[("total", seq)] = message
            return None
        self._expected_total += 1
        nxt = ("total", self._expected_total)
        if nxt in self._holdback:
            held = self._holdback.pop(nxt)
            ctx.post(ctx.uri, held.briefcase)
        self.delivered += 1
        return message


def group_send(ctx, group_name: str, briefcase: Briefcase):
    """Agent-side helper: multicast through the group wrapper.

    The group name is resolved entirely inside the wrapper; the firewall
    never sees the unexpanded address.
    """
    return ctx.send(AgentUri.for_agent(group_name), briefcase)
