"""Wrapper stacks: composition, serialisation, and transport.

The stack is ordered **outermost first**: inbound messages flow
outermost → innermost (the system hands briefcases "to the wrapper
first"), outbound briefcases flow innermost → outermost.

Stacks are serialised into the WRAPPERS system folder — one element per
layer, each carrying the wrapper's code payload (usually ``py-ref``,
since wrappers are TAX system software present at every landing pad, but
by-value payloads work too) and its JSON config.  The destination VM
rebuilds the stack on launch, so wrappers genuinely travel with the
agent.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import VMError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.message import Message
from repro.vm import loader
from repro.vm.sandbox import Sandbox
from repro.wrappers.base import AgentWrapper


@dataclass(frozen=True)
class WrapperSpec:
    """One layer to be instantiated at launch: code + config."""

    payload: loader.Payload
    config: dict

    @classmethod
    def by_ref(cls, wrapper_class, config: Optional[dict] = None
               ) -> "WrapperSpec":
        return cls(loader.pack_ref(wrapper_class), dict(config or {}))

    def to_json(self) -> str:
        return json.dumps({
            "kind": self.payload.kind,
            "blob_b64": base64.b64encode(self.payload.blob).decode("ascii"),
            "config": self.config,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WrapperSpec":
        data = json.loads(text)
        payload = loader.Payload(
            data["kind"], base64.b64decode(data["blob_b64"]))
        return cls(payload, dict(data.get("config", {})))


def install_wrappers(briefcase: Briefcase,
                     specs: Iterable[WrapperSpec]) -> None:
    """Write the stack (outermost first) into the WRAPPERS folder."""
    briefcase.folder(wellknown.WRAPPERS).replace(
        [spec.to_json() for spec in specs])


def read_wrapper_specs(briefcase: Briefcase) -> List[WrapperSpec]:
    if not briefcase.has(wellknown.WRAPPERS):
        return []
    return [WrapperSpec.from_json(element.as_text())
            for element in briefcase.get(wellknown.WRAPPERS)]


def _materialize_factory(payload: loader.Payload, sandbox: Sandbox):
    if payload.kind == loader.KIND_REF:
        return loader.materialize_ref(payload)
    if payload.kind == loader.KIND_MARSHAL:
        return loader.materialize_marshal(payload, sandbox)
    if payload.kind == loader.KIND_SOURCE:
        return loader.materialize_source(payload, sandbox)
    raise VMError(f"wrapper payload kind {payload.kind!r} not launchable")


def build_stack(specs: Iterable[WrapperSpec],
                sandbox: Optional[Sandbox] = None) -> "WrapperStack":
    """Instantiate every layer; factories must yield AgentWrapper objects."""
    sandbox = sandbox or Sandbox()
    layers: List[AgentWrapper] = []
    for spec in specs:
        factory = _materialize_factory(spec.payload, sandbox)
        wrapper = factory(spec.config)
        if not isinstance(wrapper, AgentWrapper) and not (
                hasattr(wrapper, "on_send") and hasattr(wrapper, "on_receive")):
            raise VMError(f"{factory!r} did not produce a wrapper")
        layers.append(wrapper)
    return WrapperStack(layers)


class WrapperStack:
    """An ordered stack of wrappers around one agent."""

    def __init__(self, layers: Optional[List[AgentWrapper]] = None):
        self.layers: List[AgentWrapper] = list(layers or [])

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def depth(self) -> int:
        return len(self.layers)

    # -- lifecycle fan-out ---------------------------------------------------------

    def on_attach(self, ctx) -> None:
        for wrapper in self.layers:
            wrapper.on_attach(ctx)

    def on_arrive(self, ctx) -> None:
        for wrapper in self.layers:
            wrapper.on_arrive(ctx)

    def on_depart(self, ctx, target: AgentUri) -> None:
        for wrapper in self.layers:
            wrapper.on_depart(ctx, target)

    def on_detach(self, ctx) -> None:
        for wrapper in self.layers:
            wrapper.on_detach(ctx)

    # -- message paths -----------------------------------------------------------------

    def apply_send(self, ctx, target: AgentUri, briefcase: Briefcase):
        """Innermost → outermost; None when some layer swallowed it."""
        for wrapper in reversed(self.layers):
            result = wrapper.on_send(ctx, target, briefcase)
            if result is None:
                return None
            target, briefcase = result
        return target, briefcase

    def apply_receive(self, ctx, message: Message) -> Optional[Message]:
        """Outermost → innermost; None when some layer consumed it."""
        for wrapper in self.layers:
            message = wrapper.on_receive(ctx, message)
            if message is None:
                return None
        return message

    def describe(self) -> List[dict]:
        return [wrapper.describe() for wrapper in self.layers]
