"""Wrappers: composable, transportable system support for agents.

- :mod:`repro.wrappers.mobility` — the mobility wrapper (mwWebbot's
  generic form): carry a program, hop an itinerary, execute via ag_exec,
  ship condensed results home;
- :mod:`repro.wrappers.monitor` — location reporting + status queries
  (rwWebbot);
- :mod:`repro.wrappers.groupcomm` — FIFO / totally-ordered multicast;
- :mod:`repro.wrappers.location` — location-transparent naming;
- :mod:`repro.wrappers.logwrap` — traffic tap;
- :mod:`repro.wrappers.fault` — checkpoint/recover.
"""

from repro.wrappers.base import AgentWrapper
from repro.wrappers.fault import CheckpointWrapper, recover
from repro.wrappers.groupcomm import GroupCommWrapper, group_send
from repro.wrappers.location import LocationWrapper, resolve, send_via
from repro.wrappers.logwrap import LoggingWrapper
from repro.wrappers.mobility import (
    add_stop,
    install_program,
    make_task_briefcase,
    mobile_task_agent,
    read_program,
    set_home,
    set_postprocessor,
)
from repro.wrappers.monitor import MonitorLog, MonitorWrapper
from repro.wrappers.sealing import SealingWrapper
from repro.wrappers.stack import (
    WrapperSpec,
    WrapperStack,
    build_stack,
    install_wrappers,
    read_wrapper_specs,
)

__all__ = [
    "AgentWrapper",
    "CheckpointWrapper", "recover",
    "GroupCommWrapper", "group_send",
    "LocationWrapper", "resolve", "send_via",
    "LoggingWrapper",
    "add_stop", "install_program", "make_task_briefcase",
    "mobile_task_agent", "read_program", "set_home", "set_postprocessor",
    "MonitorLog", "MonitorWrapper", "SealingWrapper",
    "WrapperSpec", "WrapperStack", "build_stack", "install_wrappers",
    "read_wrapper_specs",
]
