"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [E1 E2 ...]`` — run the paper-reproduction experiments
  and print paper-vs-measured tables (all of them by default);
- ``crawl`` — one ad-hoc link-check comparison (stationary vs mobile)
  on a synthetic site with configurable scale and network;
- ``site`` — generate a synthetic site and print its statistics;
- ``trace`` — run the traced quickstart itinerary and export the span
  trace as Chrome ``trace_event`` JSON (Perfetto-loadable) or JSONL;
- ``bench`` — run experiment E1 under telemetry and write a
  machine-readable report (virtual-time rows + metrics snapshot +
  wall-clock) to a JSON file;
- ``chaos`` — run the quickstart-style survey itinerary under a named
  fault plan (host crashes, restarts, link flaps, message drops) and
  print the survival/recovery report as canonical JSON.  The output is
  a pure function of ``(--seed, --plan, --no-recovery)``: running the
  command twice must produce byte-for-byte identical JSON, which CI
  asserts;
- ``partition`` — run the same survey itinerary under a named
  exactly-once scenario (partition storms with duplicate/reordered/
  corrupted deliveries, split brain with twin detection, asymmetric
  ack loss) and print the delivery-guarantee report as canonical
  JSON.  Exits non-zero unless the ``exactly_once.holds`` acceptance
  block is true.  Deterministic like ``chaos``: CI runs the command
  twice and diffs byte-for-byte;
- ``overload`` — flood one host from N greedy principals (plus a dead
  host and poison wire buffers) under a named governor mode
  (``--mode governed|ungoverned``; ``--no-governor`` is the historic
  alias) and print the shedding/backpressure/breaker report as
  canonical JSON.  Like ``chaos``, the output is a pure function of
  ``(--seed, --mode)`` and CI diffs two runs byte-for-byte;
- ``suite`` — the declarative experiment-suite runner
  (``repro.suites``).  ``suite run FILE`` executes a YAML/JSON-declared
  parameter matrix over the registered scenario plugins (chaos,
  partition, crashtest, overload, experiment) and prints one canonical
  suite document — per-cell seeds derive from the suite seed and the
  cell identity, so the document is a pure function of ``(FILE,
  --seed)`` and CI diffs two runs byte-for-byte; exits non-zero if any
  cell's invariant checks fail.  ``suite list`` shows the plugins (or,
  given a file, its expanded cells with derived seeds); ``suite
  validate FILE`` checks a suite file without running it;
- ``perf`` — run the hot-path microbenchmarks (codec decode/encode,
  kernel dispatch, E1 end-to-end) against in-process replicas of the
  pre-optimisation code paths and write the before/after medians to a
  JSON file.  stdout carries only the *semantics* block — digests
  proving the fast paths change no observable behaviour — which is a
  pure function of ``--seed``; CI runs the command twice and diffs the
  two stdout documents, and the command exits non-zero if the E1
  report under the fast paths differs byte-for-byte from the
  non-optimised path;
- ``report`` — run the traced quickstart itinerary and print the
  per-trace itinerary + SLO report as canonical JSON (``--json``/
  ``--html`` also write the document and a self-contained HTML
  rendering to files).  The stdout JSON is a pure function of the
  scenario: CI runs the command twice and diffs byte-for-byte;
- ``metrics`` — run the traced quickstart and print the metrics
  registry as OpenMetrics text (histograms with cumulative buckets,
  ``# EOF`` terminated).  Deterministic like ``report``; CI diffs two
  runs byte-for-byte;
- ``lint`` — run the determinism/safety rule pack (``repro.analysis``)
  over the source tree and print findings as text, canonical JSON
  (``--json``) or SARIF (``--sarif FILE``).  Findings matching the
  committed baseline (``lint-baseline.json``) are reported but do not
  fail the gate; ``--sanitize`` additionally runs the reference
  scenarios under the briefcase-aliasing sanitizer and merges its
  findings into the same document.  Output is a pure function of the
  tree: CI runs the command twice and diffs byte-for-byte.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.runner import main as experiments_main


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.mining.strategies import (
        CrawlTask, run_mobile, run_stationary)
    from repro.system.bootstrap import build_linkcheck_testbed
    from repro.web.site import SiteSpec

    spec = SiteSpec(host="www.cs.uit.no", n_pages=args.pages,
                    total_bytes=args.bytes,
                    external_hosts=("www.w3.org", "www.cornell.edu"),
                    seed=args.seed)
    testbed = build_linkcheck_testbed(
        spec=spec, bandwidth=args.bandwidth_mbit * 1_000_000 / 8,
        latency=args.latency_ms / 1000.0)
    site = testbed.site_of(spec.host)
    print(f"site: {site.n_pages} pages, {site.total_bytes:,d} bytes, "
          f"{site.truth.dead_total} planted dead links")
    task = CrawlTask.for_site(site, max_depth=args.max_depth)
    rows = []
    if args.strategy in ("stationary", "both"):
        rows.append(run_stationary(testbed, [task]))
    if args.strategy in ("mobile", "both"):
        rows.append(run_mobile(testbed, [task], monitor=args.monitor))
    for metrics in rows:
        print(metrics.summary_row())
    if len(rows) == 2:
        ratio = rows[0].elapsed_seconds / rows[1].elapsed_seconds
        print(f"speedup (stationary/mobile): {ratio:.3f}")
    return 0


def _cmd_site(args: argparse.Namespace) -> int:
    from repro.web.site import SiteSpec, generate_site

    spec = SiteSpec(host=args.host, n_pages=args.pages,
                    total_bytes=args.bytes, seed=args.seed,
                    external_hosts=("www.w3.org",),
                    redirect_fraction=args.redirects,
                    robots_disallow=("/private",) if args.robots else (),
                    private_pages=5 if args.robots else 0)
    site = generate_site(spec)
    truth = site.truth
    print(f"host          : {site.host}")
    print(f"pages         : {site.n_pages}")
    print(f"bytes         : {site.total_bytes:,d}")
    print(f"dead internal : {len(truth.dead_internal)}")
    print(f"dead external : {len(truth.dead_external)}")
    print(f"redirects     : {len(site.redirects)} "
          f"({len(truth.redirect_dead)} dead)")
    print(f"robots rules  : "
          f"{site.robots_txt.count('Disallow') if site.robots_txt else 0}")
    for depth in (1, 2, 4, 8):
        print(f"pages within depth {depth}: "
              f"{truth.pages_within_depth(depth)}")
    if args.show_truth:
        for src, href in truth.dead_internal:
            print(f"  dead: {src} -> {href}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.demo import run_traced_quickstart

    cluster, result = run_traced_quickstart()
    tracer = cluster.telemetry.tracer
    greetings = result.folder("GREETINGS").texts()
    print(f"quickstart itinerary finished at t={cluster.kernel.now:.4f}s "
          f"virtual; {len(greetings)} greetings, "
          f"{len(tracer.spans)} spans, {len(tracer.instants)} instants")
    wrote = False
    try:
        if args.chrome:
            n = tracer.export_chrome(args.chrome)
            print(f"wrote {n} trace events to {args.chrome} "
                  "(load in https://ui.perfetto.dev)")
            wrote = True
        if args.jsonl:
            n = tracer.export_jsonl(args.jsonl)
            print(f"wrote {n} JSONL rows to {args.jsonl}")
            wrote = True
    except OSError as exc:
        print(f"cannot write trace: {exc}", file=sys.stderr)
        return 1
    if not wrote:
        print("(no output file requested; use --chrome and/or --jsonl)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.demo import run_traced_quickstart
    from repro.obs.report import (
        build_report, render_report_html, render_report_json)

    cluster, _ = run_traced_quickstart()
    document = build_report(cluster.telemetry,
                            meta={"scenario": "traced-quickstart"})
    rendered = render_report_json(document)
    print(rendered)
    try:
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            print(f"wrote report JSON to {args.json_path}",
                  file=sys.stderr)
        if args.html_path:
            with open(args.html_path, "w", encoding="utf-8") as handle:
                handle.write(render_report_html(document))
            print(f"wrote report HTML to {args.html_path}",
                  file=sys.stderr)
    except OSError as exc:
        print(f"cannot write report: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.demo import run_traced_quickstart
    from repro.obs.openmetrics import render_openmetrics

    cluster, _ = run_traced_quickstart()
    rendered = render_openmetrics(cluster.telemetry.metrics.snapshot())
    print(rendered, end="")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        except OSError as exc:
            print(f"cannot write metrics: {exc}", file=sys.stderr)
            return 1
        print(f"wrote OpenMetrics text to {args.out}", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.bench.experiments import run_e1
    from repro.bench.runner import report_to_dict

    wall_start = time.perf_counter()
    report = run_e1(seed=args.seed, telemetry=True)
    wall = time.perf_counter() - wall_start
    print(report.render())
    document = report_to_dict(report)
    document["wall_seconds"] = wall
    if args.json_path:
        try:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"cannot write report: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote report ({wall:.1f}s wall) to {args.json_path}")
    return 0


def _print_name_table(names, descriptions) -> None:
    width = max(len(name) for name in names)
    for name in names:
        print(f"  {name:<{width}}  {descriptions.get(name, '')}")


def _run_named_scenario(command: str, noun: str, names, descriptions,
                        wants_list: bool, run, render, verdict,
                        on_document=None) -> int:
    """The shared plumbing of the named-scenario commands (``chaos``,
    ``partition``, ``crashtest``): ``--list`` prints the name table, an
    unknown name exits 2 with a hint, and the rendered document's
    ``verdict`` decides the exit code."""
    if wants_list:
        print(f"{command} {noun}s:")
        _print_name_table(names, descriptions)
        return 0
    try:
        document = run()
    except ValueError as exc:
        print(f"repro {command}: {exc}", file=sys.stderr)
        print(f"(use `repro {command} --list` to see the {noun}s)",
              file=sys.stderr)
        return 2
    print(render(document))
    if on_document is not None:
        failure = on_document(document)
        if failure is not None:
            return failure
    return 0 if verdict(document) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.scenario import (PLAN_DESCRIPTIONS, PLAN_NAMES,
                                      render_chaos_json, run_chaos)

    def survived(document) -> bool:
        agent = document["agent"]
        return agent["sites_visited"] > 0 and not agent["timed_out"]

    return _run_named_scenario(
        "chaos", "plan", PLAN_NAMES, PLAN_DESCRIPTIONS, args.list,
        lambda: run_chaos(seed=args.seed, plan=args.plan,
                          recovery=not args.no_recovery),
        render_chaos_json, survived)


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.chaos.partition import (SCENARIO_DESCRIPTIONS,
                                       SCENARIO_NAMES,
                                       render_partition_json,
                                       run_partition)

    return _run_named_scenario(
        "partition", "scenario", SCENARIO_NAMES, SCENARIO_DESCRIPTIONS,
        args.list,
        lambda: run_partition(seed=args.seed, scenario=args.scenario),
        render_partition_json,
        lambda document: document["exactly_once"]["holds"])


def _cmd_crashtest(args: argparse.Namespace) -> int:
    import json

    from repro.chaos.crashtest import (SCENARIO_DESCRIPTIONS,
                                       SCENARIO_NAMES,
                                       render_crashtest_json,
                                       run_crashtest)

    def dump_journal(document):
        if not args.journal_dump:
            return None
        try:
            with open(args.journal_dump, "w", encoding="utf-8") as handle:
                sample = document["journal_sample"]
                for record in sample["tail"]:
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
        except OSError as exc:
            print(f"cannot write journal dump: {exc}", file=sys.stderr)
            return 1
        return None

    return _run_named_scenario(
        "crashtest", "scenario", SCENARIO_NAMES, SCENARIO_DESCRIPTIONS,
        args.list,
        lambda: run_crashtest(seed=args.seed, scenario=args.scenario),
        render_crashtest_json,
        # The acceptance gate: exactly-once AND agent conservation.
        lambda document: (document["exactly_once"]["holds"] and
                          document["conservation"]["holds"]),
        on_document=dump_journal)


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.bench.overload import (MODE_DESCRIPTIONS, MODE_NAMES,
                                      overload_ok, render_overload_json,
                                      run_overload_mode)

    # ``--no-governor`` predates the named-mode interface; keep it as
    # an alias for ``--mode ungoverned``.
    mode = "ungoverned" if args.no_governor else args.mode
    # The flood is expected to complete even when the governor sheds:
    # rejections are transient and the senders' retry policies absorb
    # them.  A completion rate below the floor means backpressure broke
    # delivery rather than smoothing it (``overload_ok``).
    return _run_named_scenario(
        "overload", "mode", MODE_NAMES, MODE_DESCRIPTIONS, args.list,
        lambda: run_overload_mode(seed=args.seed, mode=mode),
        render_overload_json, overload_ok)


def _default_lint_paths() -> List[str]:
    """The installed ``repro`` package tree (works from any cwd)."""
    import os

    import repro
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _default_baseline_path() -> str:
    """``lint-baseline.json`` at the repository root (two levels above
    the package: ``<root>/src/repro``)."""
    import os

    import repro
    package = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.dirname(os.path.dirname(package))
    return os.path.join(root, "lint-baseline.json")


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import (
        Analyzer,
        SANITIZER_RULES,
        apply_baseline,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        rule_index,
        run_sanitized_scenarios,
        write_baseline,
    )
    from repro.analysis.findings import fingerprinted

    paths = list(args.paths) or _default_lint_paths()
    analyzer = Analyzer(cache_dir=args.cache)

    if args.graph:
        from repro.analysis.callgraph import export_dot, export_json
        from repro.analysis.dataflow import Dataflow

        try:
            project = analyzer.build_project(paths)
        except OSError as exc:
            print(f"lint: cannot analyze: {exc}", file=sys.stderr)
            return 2
        flow = Dataflow(project)
        render = export_dot if args.graph == "dot" else export_json
        print(render(project, flow.effects), end="")
        return 0

    try:
        report = analyzer.analyze_paths(paths)
    except (OSError, SyntaxError) as exc:
        print(f"lint: cannot analyze: {exc}", file=sys.stderr)
        return 2

    if args.sanitize:
        runtime = run_sanitized_scenarios()
        report.findings = fingerprinted(
            list(report.findings) + list(runtime))
        report.analyzed.extend(
            sorted({f.path for f in runtime}))

    baseline_path = args.baseline or _default_baseline_path()
    if args.write_baseline:
        count = write_baseline(report.findings, baseline_path)
        print(f"wrote baseline with {count} finding(s) to {baseline_path}")
        return 0
    if not args.no_baseline and os.path.isfile(baseline_path):
        try:
            apply_baseline(report, load_baseline(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"lint: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    if args.sarif:
        from repro.analysis.iprules import project_rule_index

        index = dict(rule_index())
        index.update(project_rule_index())
        index.update(SANITIZER_RULES)
        try:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(render_sarif(report, index))
        except OSError as exc:
            print(f"lint: cannot write SARIF: {exc}", file=sys.stderr)
            return 2
    print(render_json(report) if args.json else render_text(report),
          end="")
    return report.exit_code


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench.perf import (PROFILE_DESCRIPTIONS, PROFILE_NAMES,
                                  build_profile_document, print_medians,
                                  render_semantics_json, semantics_ok,
                                  write_document)

    # ``--quick`` predates the named-profile interface; keep it as an
    # alias for ``--profile quick``.
    profile = "quick" if args.quick else args.profile

    def report(document):
        # The medians table is human-facing: keep it off stdout, which
        # carries only the deterministic semantics JSON CI diffs.
        print_medians(document, stream=sys.stderr)
        if args.json_path:
            try:
                write_document(document, args.json_path)
            except OSError as exc:
                print(f"cannot write {args.json_path}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote timings to {args.json_path}", file=sys.stderr)
        return None

    return _run_named_scenario(
        "perf", "profile", PROFILE_NAMES, PROFILE_DESCRIPTIONS,
        args.list,
        lambda: build_profile_document(seed=args.seed, profile=profile,
                                       repeats=args.repeats),
        render_semantics_json, semantics_ok, on_document=report)


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.suites import (SuiteError, cell_seed, get_plugin,
                              load_suite, plugin_descriptions,
                              plugin_names, render_suite_json, run_suite,
                              suite_ok)

    def load():
        try:
            return load_suite(args.file)
        except SuiteError as exc:
            print(f"repro suite: {exc}", file=sys.stderr)
            return None

    if args.suite_command == "list":
        if not args.file:
            print("scenario plugins:")
            _print_name_table(plugin_names(), plugin_descriptions())
            for name in plugin_names():
                plugin = get_plugin(name)
                variants = plugin.variants()
                if variants:
                    print(f"  {name} --{plugin.variant_param}: "
                          f"{', '.join(str(v) for v in variants)}")
            return 0
        spec = load()
        if spec is None:
            return 2
        print(f"suite {spec.name!r} ({spec.source}): "
              f"{len(spec.cells)} cell(s), seed {spec.seed}, "
              f"early_stop {spec.early_stop}")
        for index, cell in enumerate(spec.cells):
            print(f"  [{index}] {cell.cell_id} "
                  f"seed={cell_seed(spec.seed, cell)}")
        return 0

    spec = load()
    if spec is None:
        return 2
    if args.suite_command == "validate":
        print(f"{spec.source}: OK — suite {spec.name!r}, "
              f"{len(spec.cells)} cell(s)")
        return 0

    document = run_suite(spec, seed=args.seed,
                         include_documents=not args.digests_only)
    rendered = render_suite_json(document)
    print(rendered)
    if args.json_path:
        try:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
        except OSError as exc:
            print(f"cannot write {args.json_path}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote suite document to {args.json_path}",
              file=sys.stderr)
    summary = document["summary"]
    print(f"suite {spec.name!r}: {summary['passed']}/"
          f"{summary['planned']} passed, {summary['failed']} failed, "
          f"{summary['skipped']} skipped", file=sys.stderr)
    return 0 if suite_ok(document) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAX 2.0 / wrapped-Webbot reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments",
                         help="run the paper-reproduction experiments")
    exp.add_argument("ids", nargs="*", default=[],
                     help="experiment ids (default: all)")
    exp.add_argument("--seed", type=int, default=2000)
    exp.add_argument("--json", dest="json_path", default=None,
                     help="also write machine-readable results here")

    crawl = sub.add_parser("crawl", help="ad-hoc link-check comparison")
    crawl.add_argument("--pages", type=int, default=200)
    crawl.add_argument("--bytes", type=int, default=650_000)
    crawl.add_argument("--bandwidth-mbit", type=float, default=100.0)
    crawl.add_argument("--latency-ms", type=float, default=0.5)
    crawl.add_argument("--max-depth", type=int, default=12)
    crawl.add_argument("--strategy",
                       choices=("stationary", "mobile", "both"),
                       default="both")
    crawl.add_argument("--monitor", action="store_true")
    crawl.add_argument("--seed", type=int, default=2000)

    site = sub.add_parser("site", help="generate and describe a site")
    site.add_argument("--host", default="www.cs.uit.no")
    site.add_argument("--pages", type=int, default=917)
    site.add_argument("--bytes", type=int, default=3_000_000)
    site.add_argument("--seed", type=int, default=2000)
    site.add_argument("--redirects", type=float, default=0.0)
    site.add_argument("--robots", action="store_true")
    site.add_argument("--show-truth", action="store_true")

    trace = sub.add_parser(
        "trace", help="run the traced quickstart and export the spans")
    trace.add_argument("--chrome", default=None, metavar="OUT.json",
                       help="write a Chrome trace_event document here")
    trace.add_argument("--jsonl", default=None, metavar="OUT.jsonl",
                       help="write the span/instant rows as JSONL here")

    report = sub.add_parser(
        "report",
        help="run the traced quickstart; print the itinerary/SLO report")
    report.add_argument("--json", dest="json_path", default=None,
                        metavar="REPORT.json",
                        help="also write the canonical JSON document here")
    report.add_argument("--html", dest="html_path", default=None,
                        metavar="REPORT.html",
                        help="also write a self-contained HTML rendering")

    metrics = sub.add_parser(
        "metrics",
        help="run the traced quickstart; print OpenMetrics text")
    metrics.add_argument("--out", default=None, metavar="METRICS.txt",
                         help="also write the OpenMetrics text here")

    bench = sub.add_parser(
        "bench", help="run E1 under telemetry; write a JSON report")
    bench.add_argument("--seed", type=int, default=2000)
    bench.add_argument("--json", dest="json_path", default=None,
                       metavar="BENCH_E1.json",
                       help="write the machine-readable report here")

    chaos = sub.add_parser(
        "chaos",
        help="run the survey itinerary under a fault plan; print JSON")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--plan", default="mid-crash", metavar="PLAN",
                       help="fault plan name (see --list); an unknown "
                            "name exits 2 with the available plans")
    chaos.add_argument("--list", action="store_true",
                       help="list the built-in fault plans and exit")
    chaos.add_argument("--no-recovery", action="store_true",
                       help="drop the recovery kit (monitor/checkpoint/"
                            "retry/rear-guard): the baseline behaviour")

    partition = sub.add_parser(
        "partition",
        help="run the survey under an exactly-once partition scenario; "
             "print JSON")
    partition.add_argument("--seed", type=int, default=7)
    partition.add_argument("--scenario", default="partition-storm",
                           metavar="SCENARIO",
                           help="scenario name (see --list); an unknown "
                                "name exits 2 with the available "
                                "scenarios")
    partition.add_argument("--list", action="store_true",
                           help="list the built-in scenarios and exit")

    crashtest = sub.add_parser(
        "crashtest",
        help="run a bare agent over crash-durable hosts; exits non-zero "
             "unless exactly-once AND agent conservation hold")
    crashtest.add_argument("--seed", type=int, default=7)
    crashtest.add_argument("--scenario", default="kill-during-migration",
                           metavar="SCENARIO",
                           help="scenario name (see --list); an unknown "
                                "name exits 2 with the available "
                                "scenarios")
    crashtest.add_argument("--list", action="store_true",
                           help="list the built-in scenarios and exit")
    crashtest.add_argument("--journal-dump", metavar="PATH", default="",
                           help="also write the crashed worker's journal "
                                "tail as JSON-lines to PATH (the CI "
                                "artifact)")

    overload = sub.add_parser(
        "overload",
        help="flood one host under a governor mode; print JSON")
    overload.add_argument("--seed", type=int, default=7)
    overload.add_argument("--mode", default="governed", metavar="MODE",
                          help="governor mode (see --list); an unknown "
                               "name exits 2 with the available modes")
    overload.add_argument("--list", action="store_true",
                          help="list the governor modes and exit")
    overload.add_argument("--no-governor", action="store_true",
                          help="alias for --mode ungoverned (the "
                               "baseline: unbounded queues, no quotas, "
                               "no breakers)")

    perf = sub.add_parser(
        "perf",
        help="hot-path microbenchmarks vs pre-optimisation baselines")
    perf.add_argument("--seed", type=int, default=2000)
    perf.add_argument("--repeats", type=int, default=5,
                      help="timing samples per benchmark leg (median "
                           "reported)")
    perf.add_argument("--profile", default="full", metavar="PROFILE",
                      help="workload profile (see --list); an unknown "
                           "name exits 2 with the available profiles")
    perf.add_argument("--list", action="store_true",
                      help="list the workload profiles and exit")
    perf.add_argument("--quick", action="store_true",
                      help="alias for --profile quick (smaller "
                           "workloads / fewer repeats: the CI smoke)")
    perf.add_argument("--json", dest="json_path", default=None,
                      metavar="BENCH_perf.json",
                      help="write the full timings document here; stdout "
                           "stays the deterministic semantics JSON")

    suite = sub.add_parser(
        "suite",
        help="run/list/validate declarative experiment suites")
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)
    suite_run = suite_sub.add_parser(
        "run", help="execute a suite file; print the canonical suite "
                    "document; exit non-zero if any cell check fails")
    suite_run.add_argument("file", help="suite file (.yaml/.yml/.json)")
    suite_run.add_argument("--seed", type=int, default=None,
                           help="override the suite file's seed")
    suite_run.add_argument("--json", dest="json_path", default=None,
                           metavar="SUITE.json",
                           help="also write the suite document here "
                                "(the CI artifact)")
    suite_run.add_argument("--digests-only", action="store_true",
                           help="omit the raw per-cell documents; keep "
                                "only their digests and check verdicts")
    suite_list = suite_sub.add_parser(
        "list", help="list the scenario plugins, or a file's expanded "
                     "cells with their derived seeds")
    suite_list.add_argument("file", nargs="?", default=None,
                            help="optional suite file to expand")
    suite_validate = suite_sub.add_parser(
        "validate", help="validate a suite file without running it")
    suite_validate.add_argument("file",
                                help="suite file (.yaml/.yml/.json)")

    lint = sub.add_parser(
        "lint",
        help="run the determinism/safety rule pack over the tree")
    lint.add_argument("paths", nargs="*", default=[],
                      help="files/directories to analyze (default: the "
                           "installed repro package tree)")
    lint.add_argument("--json", action="store_true",
                      help="print the canonical JSON document instead "
                           "of text")
    lint.add_argument("--sarif", default=None, metavar="OUT.sarif",
                      help="also write a SARIF 2.1.0 document here")
    lint.add_argument("--baseline", default=None,
                      metavar="BASELINE.json",
                      help="baseline file (default: lint-baseline.json "
                           "at the repository root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline: every finding fails "
                           "the gate")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings as the baseline "
                           "and exit 0")
    lint.add_argument("--sanitize", action="store_true",
                      help="also run the reference scenarios under the "
                           "briefcase-aliasing sanitizer")
    lint.add_argument("--graph", default=None, choices=("dot", "json"),
                      help="print the module-qualified call graph with "
                           "propagated effects instead of findings")
    lint.add_argument("--cache", default=None, metavar="DIR",
                      help="per-module facts cache directory (keyed by "
                           "source content hash; output is byte-"
                           "identical with or without it)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        forwarded = list(args.ids) + ["--seed", str(args.seed)]
        if args.json_path:
            forwarded += ["--json", args.json_path]
        return experiments_main(forwarded)
    if args.command == "crawl":
        return _cmd_crawl(args)
    if args.command == "site":
        return _cmd_site(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "crashtest":
        return _cmd_crashtest(args)
    if args.command == "overload":
        return _cmd_overload(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "lint":
        return _cmd_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
