"""ag_exec: the execute-a-program service (paper sections 3.4 and 5).

Two roles, both from the paper:

1. **Run carried binaries.**  *"It uses the ag_exec service available at
   all TAX sites to execute the Webbot binary once it has relocated to
   the web server.  Ag_exec extracts the binary matching the
   architecture of the local machine (an agent may submit a list of
   binaries matching different architectures), and executes it with the
   arguments called"* — op ``exec``: select by arch, verify the trusted
   signature, run the synchronous program with an
   :class:`ExecEnv`, charge its accumulated cost, return its result.

2. **Run installed tools** (Figure 3 step 4: "ag_exec runs the
   compiler") — op ``tool``: apply a named, locally installed
   payload-transforming tool (the standard install ships ``cc``).

The :class:`ExecEnv` is the "operating system" a hosted program sees: an
HTTP client bound to this host, the host's virtual filesystem, and a
cost ledger everything it does is charged to.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError, TaxError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent
from repro.sim.ledger import CostLedger
from repro.vm import loader
from repro.vm.sandbox import TrustedSandbox

#: CPU charged for invoking a program, beyond what its env ledger records.
EXEC_OVERHEAD_SECONDS = 0.005
#: CPU per payload byte for tool runs (e.g. compilation).
TOOL_PER_BYTE_SECONDS = 5e-7


class ExecEnv:
    """What an executed program may touch on this host."""

    def __init__(self, node, principal: str):
        self.node = node
        self.principal = principal
        self.ledger = CostLedger()
        self.host = node.host
        self.fs = node.vfs
        self._http = None

    @property
    def http(self):
        """A cost-accounting HTTP client issuing from this host."""
        if self._http is None:
            if self.node.web is None:
                raise ServiceError(
                    "this site has no web deployment configured")
            from repro.web.client import SimHttpClient
            self._http = SimHttpClient(
                origin_host=self.node.host, network=self.node.network,
                deployment=self.node.web, ledger=self.ledger)
        return self._http


class AgExec(ServiceAgent):
    """The program-execution service."""

    name = "ag_exec"

    def __init__(self, node):
        super().__init__(node)
        self.sandbox = TrustedSandbox()
        self.tools: Dict[str, Callable[[loader.Payload], loader.Payload]] = {
            "cc": loader.compile_source,
        }
        self.executions = 0

    def install_tool(self, name: str,
                     tool: Callable[[loader.Payload], loader.Payload]) -> None:
        self.tools[name] = tool

    # -- op: run a carried binary ---------------------------------------------------

    def op_exec(self, message: Message):
        briefcase = message.briefcase
        payload = loader.read_payload(briefcase)
        if payload.kind != loader.KIND_BINARY:
            raise ServiceError(
                f"ag_exec runs signed binary lists, got {payload.kind!r}")
        binary = loader.select_binary(payload, self.node.host.arch)
        signer = loader.verify_binary(binary, self.firewall.trust_store)
        program = loader.materialize_marshal(binary.payload, self.sandbox)
        args = briefcase.get_json(wellknown.ARGS, {})

        env = ExecEnv(self.node, principal=signer)
        try:
            result = program(args, env)
        except TaxError:
            raise
        except Exception as exc:  # noqa: BLE001 - hosted program crashed
            raise ServiceError(f"program raised {type(exc).__name__}: {exc}"
                               ) from exc
        self.executions += 1
        yield from self.node.host.compute(EXEC_OVERHEAD_SECONDS)
        yield from self.ctx.charge(env.ledger)

        response = Briefcase()
        response.put(wellknown.RESULTS, result)
        return response

    # -- op: run an installed tool over a payload --------------------------------------

    def op_tool(self, message: Message):
        briefcase = message.briefcase
        tool_name = briefcase.get_text("TOOL")
        if tool_name is None or tool_name not in self.tools:
            raise ServiceError(f"no installed tool {tool_name!r} "
                               f"(have {sorted(self.tools)})")
        payload = loader.read_payload(briefcase)
        yield from self.node.host.compute(
            EXEC_OVERHEAD_SECONDS + payload.size * TOOL_PER_BYTE_SECONDS)
        result = self.tools[tool_name](payload)
        self.executions += 1
        response = Briefcase()
        loader.install_payload(response, result)
        return response
