"""ag_locator: the home registry behind location-transparent naming.

Maps logical names to current agent URIs.  Updates are accepted from the
name's current owner principal only (first registration claims the
name), so one principal's agents cannot hijack another's logical names.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent

LOCATOR_OP_SECONDS = 0.0002


class AgLocator(ServiceAgent):
    """The location registry service."""

    name = "ag_locator"

    def __init__(self, node):
        super().__init__(node)
        #: logical name → (owner principal, current uri string).
        self._entries: Dict[str, Tuple[str, str]] = {}

    def _name_arg(self, message: Message) -> "tuple[str, dict]":
        args = message.briefcase.get_json(wellknown.ARGS, {})
        if not isinstance(args, dict) or not args.get("name"):
            raise ServiceError("locator request needs ARGS {'name': ...}")
        return args["name"], args

    def op_update(self, message: Message):
        name, args = self._name_arg(message)
        uri = args.get("uri")
        if not uri:
            raise ServiceError("update needs ARGS {'name', 'uri'}")
        yield from self.node.host.compute(LOCATOR_OP_SECONDS)
        sender = message.sender.principal
        existing = self._entries.get(name)
        if existing is not None and existing[0] not in (sender, "system") \
                and sender != "system":
            raise ServiceError(
                f"{sender!r} may not update {name!r} owned by "
                f"{existing[0]!r}")
        owner = existing[0] if existing is not None else sender
        self._entries[name] = (owner, uri)
        return Briefcase()

    def op_lookup(self, message: Message):
        name, _args = self._name_arg(message)
        yield from self.node.host.compute(LOCATOR_OP_SECONDS)
        entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(f"no location registered for {name!r}")
        response = Briefcase()
        response.put(wellknown.RESULTS, {"name": name, "uri": entry[1]})
        return response

    def op_remove(self, message: Message):
        name, _args = self._name_arg(message)
        yield from self.node.host.compute(LOCATOR_OP_SECONDS)
        sender = message.sender.principal
        entry = self._entries.get(name)
        removed = False
        if entry is not None and (sender in (entry[0], "system")):
            del self._entries[name]
            removed = True
        response = Briefcase()
        response.put(wellknown.RESULTS, {"removed": removed})
        return response

    def op_list(self, message: Message):
        yield from self.node.host.compute(LOCATOR_OP_SECONDS)
        response = Briefcase()
        response.put(wellknown.RESULTS, {
            "entries": {name: uri for name, (_own, uri)
                        in sorted(self._entries.items())}})
        return response
