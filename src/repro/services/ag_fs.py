"""ag_fs: mediated access to the host's (virtual) filesystem.

Paper section 3.3: *"to gain access to the file-system, a mobile agent
interacts with the ag_fs or ag_ccabinet service agents"* — agents never
get a raw filesystem capability; every access is a request the service
can check and account.
"""

from __future__ import annotations

import base64

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent

#: CPU per filesystem op.
FS_OP_SECONDS = 0.0005


class AgFs(ServiceAgent):
    """The filesystem service."""

    name = "ag_fs"

    def _args(self, message: Message) -> dict:
        args = message.briefcase.get_json(wellknown.ARGS)
        if not isinstance(args, dict) or "path" not in args:
            raise ServiceError("ag_fs request needs ARGS with a 'path'")
        return args

    def _guard_owner(self, message: Message, path: str) -> None:
        """Only the owner (or system) may modify an existing file."""
        owner = self.node.vfs.owner_of(path)
        sender = message.sender.principal
        if owner is not None and sender not in (owner, "system"):
            raise ServiceError(
                f"{sender!r} may not modify {path!r} owned by {owner!r}")

    def op_write(self, message: Message):
        args = self._args(message)
        try:
            data = base64.b64decode(args.get("data_b64", ""))
        except ValueError as exc:
            raise ServiceError("bad data_b64") from exc
        self._guard_owner(message, args["path"])
        yield from self.node.host.compute(FS_OP_SECONDS)
        self.node.vfs.write(args["path"], data,
                            owner=message.sender.principal)
        return Briefcase()

    def op_read(self, message: Message):
        args = self._args(message)
        yield from self.node.host.compute(FS_OP_SECONDS)
        data = self.node.vfs.read(args["path"])
        response = Briefcase()
        response.put(wellknown.RESULTS,
                     {"path": args["path"],
                      "data_b64": base64.b64encode(data).decode("ascii")})
        return response

    def op_delete(self, message: Message):
        args = self._args(message)
        self._guard_owner(message, args["path"])
        yield from self.node.host.compute(FS_OP_SECONDS)
        existed = self.node.vfs.delete(args["path"])
        response = Briefcase()
        response.put(wellknown.RESULTS, {"deleted": existed})
        return response

    def op_list(self, message: Message):
        args = message.briefcase.get_json(wellknown.ARGS, {"path": "/"})
        yield from self.node.host.compute(FS_OP_SECONDS)
        paths = self.node.vfs.listdir(args.get("path", "/"))
        response = Briefcase()
        response.put(wellknown.RESULTS, {"paths": paths})
        return response

    def op_stat(self, message: Message):
        args = self._args(message)
        yield from self.node.host.compute(FS_OP_SECONDS)
        response = Briefcase()
        response.put(wellknown.RESULTS, self.node.vfs.stat(args["path"]))
        return response
