"""ag_cron: deferred delivery (the paper's example names an ``ag_cron``).

Schedules a briefcase to be sent to a target agent URI after a delay —
the building block for watchdogs and periodic itinerant launches.  The
stored briefcase is the request's payload folders (system folders are
stripped), so an agent can schedule *any* message, including a launch
briefcase addressed to a VM.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.core.uri import AgentUri, UriSyntaxError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent


class AgCron(ServiceAgent):
    """The deferred-delivery service."""

    name = "ag_cron"

    def __init__(self, node):
        super().__init__(node)
        self._jobs: Dict[str, dict] = {}
        self._job_ids = itertools.count(1)
        self.fired = 0

    def op_schedule(self, message: Message):
        args = message.briefcase.get_json(wellknown.ARGS)
        if not isinstance(args, dict):
            raise ServiceError("ag_cron needs ARGS {delay, target}")
        try:
            delay = float(args["delay"])
            target = AgentUri.parse(args["target"])
        except (KeyError, ValueError, UriSyntaxError) as exc:
            raise ServiceError(f"bad schedule request: {exc}") from exc
        if delay < 0:
            raise ServiceError("delay must be non-negative")

        deferred = Briefcase()
        skip = {wellknown.OP, wellknown.REPLY_TO, wellknown.MEET_TOKEN,
                wellknown.ARGS}
        for folder in message.briefcase.snapshot():
            if folder.name not in skip:
                deferred.folder(folder.name).push_all(folder)

        job_id = f"job-{next(self._job_ids)}"
        self._jobs[job_id] = {"target": str(target), "at":
                              self.kernel.now + delay}
        self.kernel.spawn(self._fire(job_id, delay, target, deferred),
                          name=f"ag_cron:{job_id}")
        yield self.kernel.timeout(0)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"job_id": job_id})
        return response

    def _fire(self, job_id: str, delay: float, target: AgentUri,
              briefcase: Briefcase):
        yield self.kernel.timeout(delay)
        if job_id not in self._jobs:
            return  # cancelled
        del self._jobs[job_id]
        self.fired += 1
        yield from self.ctx.send(target, briefcase)

    def op_cancel(self, message: Message):
        args = message.briefcase.get_json(wellknown.ARGS, {})
        job_id = args.get("job_id") if isinstance(args, dict) else None
        yield self.kernel.timeout(0)
        cancelled = self._jobs.pop(job_id, None) is not None
        response = Briefcase()
        response.put(wellknown.RESULTS, {"cancelled": cancelled})
        return response

    def op_list(self, message: Message):
        yield self.kernel.timeout(0)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"jobs": sorted(self._jobs)})
        return response
