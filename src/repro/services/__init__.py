"""Standard service agents installed at every TAX landing pad."""

from repro.services.ag_cabinet import AgCabinet
from repro.services.ag_cc import AgCc
from repro.services.ag_cron import AgCron
from repro.services.ag_exec import AgExec, ExecEnv
from repro.services.ag_fs import AgFs
from repro.services.ag_locator import AgLocator
from repro.services.base import ServiceAgent
from repro.services.vfs import VirtualFS

__all__ = [
    "AgCabinet", "AgCc", "AgCron", "AgExec", "ExecEnv", "AgFs",
    "AgLocator", "ServiceAgent", "VirtualFS",
]
