"""Service agents: the landing pad's resource mediators.

Paper section 3.3: *"in order to manage arbitrary resources properly,
resources other than memory and CPU time are handled by service agents.
This allows resource allocation mechanisms to handle requests regardless
of which VM the requesting agent is running on."*

A service agent is a persistent system agent with a request loop: each
request briefcase carries an OP folder naming the operation; the service
dispatches to ``op_<name>`` (a generator returning the reply briefcase)
and answers the ``meet`` with STATUS=ok/error.  Requests are handled
serially, which models a single-threaded Unix service process.
"""

from __future__ import annotations

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError, TaxError
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core import wellknown
from repro.agent.context import AgentContext
from repro.agent.mailbox import Mailbox
from repro.firewall.message import Message


class ServiceAgent:
    """Base class for the ag_* system services."""

    name = "ag_base"

    def __init__(self, node):
        self.node = node
        self.ctx: AgentContext = None
        self.requests_handled = 0
        self.requests_failed = 0

    @property
    def kernel(self):
        return self.node.kernel

    @property
    def firewall(self):
        return self.node.firewall

    def boot(self) -> None:
        mailbox = Mailbox(self.kernel)
        self.ctx = AgentContext(self.node, vm_name="vm_python",
                                briefcase=Briefcase(),
                                principal=SYSTEM_PRINCIPAL)
        registration = self.firewall.register_agent(
            name=self.name, principal=SYSTEM_PRINCIPAL, vm_name="vm_python",
            deliver_fn=mailbox.deliver)
        self.ctx.attach(registration, mailbox)
        process = self.kernel.spawn(
            self._loop(), name=f"{self.name}@{self.node.host.name}")
        registration.process = process

    def _loop(self):
        while True:
            message = yield from self.ctx.recv(
                match=lambda m: not self.ctx.is_pending_reply(m))
            yield from self._handle_one(message)

    def _handle_one(self, message: Message):
        op = message.briefcase.get_text(wellknown.OP)
        self.firewall.log(
            f"{self.name} op={op} from={message.sender.principal}")
        try:
            if not self.authorize(message, op):
                raise ServiceError(
                    f"{self.name}: {message.sender.principal!r} is not "
                    f"authorized for op {op!r}")
            handler = None
            if op is not None:
                handler = getattr(self, f"op_{op.replace('-', '_')}", None)
            if handler is None:
                raise ServiceError(f"{self.name}: unknown op {op!r}")
            response = yield from handler(message)
            if response.get_text(wellknown.STATUS) is None:
                response.put(wellknown.STATUS, "ok")
            self.requests_handled += 1
        except TaxError as exc:
            self.requests_failed += 1
            response = Briefcase()
            response.put(wellknown.STATUS, "error")
            response.put(wellknown.ERROR, str(exc))
        if message.briefcase.get_text(wellknown.REPLY_TO) is not None:
            yield from self.ctx.reply(message, response)

    def authorize(self, message: Message, op: str) -> bool:
        """Per-service access check; default allows every sender."""
        return True
