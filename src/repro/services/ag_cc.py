"""ag_cc: the compilation service of the Figure-3 activation chain.

ag_cc itself does not compile anything: it *"extracts the code and then
activates ag_exec with the code and the compiler as arguments.  Ag_exec
runs the compiler and stores the binary in the briefcase received from
ag_cc, and returns it"*.  Keeping the compiler behind ag_exec is the
paper's division of labour — ag_cc knows the pipeline, ag_exec owns
program execution.
"""

from __future__ import annotations

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.firewall.message import Message
from repro.services.base import ServiceAgent
from repro.vm import loader


class AgCc(ServiceAgent):
    """Source → binary, via ag_exec's installed compiler tool."""

    name = "ag_cc"

    #: Which ag_exec tool acts as "the compiler".
    compiler_tool = "cc"

    def op_compile(self, message: Message):
        payload = loader.read_payload(message.briefcase)
        if payload.kind != loader.KIND_SOURCE:
            raise ServiceError(
                f"ag_cc compiles py-source payloads, got {payload.kind!r}")
        request = Briefcase()
        request.put("TOOL", self.compiler_tool)
        loader.install_payload(request, payload)
        response = yield from self.ctx.call_service("ag_exec", "tool",
                                                    request)
        compiled = loader.read_payload(response)
        reply = Briefcase()
        loader.install_payload(reply, compiled)
        return reply
