"""ag_cabinet: persistent, per-principal folder storage (ag_ccabinet).

A cabinet lets an itinerant agent leave state at a site and pick it up
on a later visit (or let a successor instance pick it up) — persistence
across agent lifetimes, namespaced by principal so agents cannot read
each other's drawers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent

#: CPU per cabinet op.
CABINET_OP_SECONDS = 0.0003


class AgCabinet(ServiceAgent):
    """The persistent-state service."""

    name = "ag_cabinet"

    def __init__(self, node):
        super().__init__(node)
        #: (principal, drawer) → stored briefcase snapshot.
        self._drawers: Dict[Tuple[str, str], Briefcase] = {}

    def _key(self, message: Message) -> Tuple[str, str]:
        drawer = message.briefcase.get_text("DRAWER")
        if not drawer:
            raise ServiceError("cabinet request needs a DRAWER folder")
        return (message.sender.principal, drawer)

    def bytes_for_principal(self, principal: str) -> int:
        """Encoded bytes this principal has stored across its drawers."""
        return sum(codec.encoded_size(stored)
                   for (p, _), stored in self._drawers.items()
                   if p == principal)

    def op_put(self, message: Message):
        """Store every non-system folder of the request under the drawer.

        Storage is governed: the encoded size of everything a principal
        has in its drawers (counting this put, discounting the drawer it
        replaces) must fit its ``max_cabinet_bytes`` quota — the
        transient rejection travels back as the service's error reply.
        """
        key = self._key(message)
        yield from self.node.host.compute(CABINET_OP_SECONDS)
        stored = Briefcase()
        # System folders (CODE, WRAPPERS, ...) are stored too: checkpoints
        # must be relaunchable briefcases.
        skip = {wellknown.OP, wellknown.REPLY_TO, wellknown.MEET_TOKEN,
                wellknown.STATUS, "DRAWER"}
        for folder in message.briefcase.snapshot():
            if folder.name not in skip:
                stored.folder(folder.name).push_all(folder)
        principal = key[0]
        replaced = self._drawers.get(key)
        held = self.bytes_for_principal(principal) - \
            (codec.encoded_size(replaced) if replaced is not None else 0)
        self.node.firewall.governor.admit_cabinet(
            principal, held, codec.encoded_size(stored))
        self._drawers[key] = stored
        durability = getattr(self.node, "durability", None)
        if durability is not None:
            # On a durable host a checkpoint blob is a journal record
            # too: the cabinet drawer models disk, and the journal is
            # the disk's crash-consistent ledger.
            durability.note_checkpoint(principal, key[1], stored)
        return Briefcase()

    def op_get(self, message: Message):
        key = self._key(message)
        yield from self.node.host.compute(CABINET_OP_SECONDS)
        stored = self._drawers.get(key)
        if stored is None:
            raise ServiceError(f"no drawer {key[1]!r} for {key[0]!r}")
        response = stored.snapshot()
        return response

    def op_drop(self, message: Message):
        key = self._key(message)
        yield from self.node.host.compute(CABINET_OP_SECONDS)
        existed = self._drawers.pop(key, None) is not None
        response = Briefcase()
        response.put(wellknown.RESULTS, {"dropped": existed})
        return response

    def op_list(self, message: Message):
        principal = message.sender.principal
        yield from self.node.host.compute(CABINET_OP_SECONDS)
        drawers = sorted(d for (p, d) in self._drawers if p == principal)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"drawers": drawers})
        return response
