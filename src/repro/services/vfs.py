"""A tiny per-host virtual filesystem backing the ag_fs service.

Agents never touch a real filesystem in the simulation; ag_fs mediates
access to this in-memory store, with per-principal usage accounting and
an optional byte quota — the resource-allocation role the paper assigns
to service agents.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import ServiceError


class VirtualFS:
    """Path → bytes, with quota enforcement."""

    def __init__(self, quota_bytes: Optional[int] = None):
        self._files: Dict[str, bytes] = {}
        self._owner: Dict[str, str] = {}
        self.quota_bytes = quota_bytes

    @staticmethod
    def _check_path(path: str) -> str:
        if not path.startswith("/") or ".." in path.split("/"):
            raise ServiceError(f"invalid path {path!r}")
        return path

    @property
    def used_bytes(self) -> int:
        return sum(len(data) for data in self._files.values())

    def write(self, path: str, data: bytes, owner: str = "system") -> None:
        path = self._check_path(path)
        new_usage = self.used_bytes - len(self._files.get(path, b"")) + \
            len(data)
        if self.quota_bytes is not None and new_usage > self.quota_bytes:
            raise ServiceError(
                f"quota exceeded: {new_usage} > {self.quota_bytes} bytes")
        self._files[path] = bytes(data)
        self._owner[path] = owner

    def read(self, path: str) -> bytes:
        path = self._check_path(path)
        try:
            return self._files[path]
        except KeyError:
            raise ServiceError(f"no such file {path!r}") from None

    def delete(self, path: str) -> bool:
        path = self._check_path(path)
        self._owner.pop(path, None)
        return self._files.pop(path, None) is not None

    def exists(self, path: str) -> bool:
        return path in self._files

    def owner_of(self, path: str) -> Optional[str]:
        return self._owner.get(path)

    def listdir(self, prefix: str = "/") -> List[str]:
        prefix = self._check_path(prefix)
        return sorted(p for p in self._files if p.startswith(prefix))

    def stat(self, path: str) -> Dict[str, object]:
        data = self.read(path)
        return {"path": path, "size": len(data),
                "owner": self._owner.get(path, "system")}
