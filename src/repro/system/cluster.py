"""TaxCluster: a multi-host TAX deployment over the simulated network.

The cluster owns the kernel, the network, the shared key/trust material,
and the firewall directory; nodes are added per host.  This is the
top-level object experiments build (usually through
:mod:`repro.system.bootstrap`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core.uri import AgentUri
from repro.firewall.auth import KeyChain, TrustStore
from repro.firewall.firewall import FirewallDirectory
from repro.firewall.policy import Policy
from repro.obs.telemetry import Telemetry
from repro.sim.eventloop import Kernel
from repro.sim.host import HostRegistry, SimHost
from repro.sim.network import Network
from repro.system.node import TaxNode


class TaxCluster:
    """All the TAX nodes of one simulated world."""

    def __init__(self, kernel: Optional[Kernel] = None,
                 network: Optional[Network] = None,
                 web=None, telemetry: Optional[Telemetry] = None):
        self.kernel = kernel or Kernel(telemetry=telemetry)
        self.network = network or Network(self.kernel)
        self.web = web
        self.hosts = HostRegistry()
        self.nodes: Dict[str, TaxNode] = {}
        self.directory = FirewallDirectory()
        self.keychain = KeyChain()
        self._shared_secrets: Dict[str, bytes] = {}
        self._trusted: set = set()
        # Every deployment has the system principal, trusted everywhere.
        self.add_principal(SYSTEM_PRINCIPAL, trusted=True)

    @property
    def telemetry(self) -> Telemetry:
        """The system-wide telemetry hub (owned by the kernel)."""
        return self.kernel.telemetry

    # -- principals --------------------------------------------------------------------

    def add_principal(self, principal: str, trusted: bool = False) -> None:
        """Create a signing key and make every (future) node know it."""
        secret = self.keychain.create_key(principal)
        self._shared_secrets[principal] = secret
        if trusted:
            self._trusted.add(principal)
        for node in self.nodes.values():
            node.firewall.trust_store.add_principal(
                principal, secret, trusted=trusted)

    def _make_trust_store(self) -> TrustStore:
        store = TrustStore()
        for principal, secret in self._shared_secrets.items():
            store.add_principal(principal, secret,
                                trusted=principal in self._trusted)
        return store

    # -- nodes ----------------------------------------------------------------------------

    def add_node(self, host_name: str, arch: str = "x86-unix",
                 cpu_factor: float = 1.0,
                 policy: Optional[Policy] = None,
                 boot: bool = True) -> TaxNode:
        if host_name in self.nodes:
            raise ValueError(f"duplicate node {host_name!r}")
        host = self.hosts.add(
            SimHost(self.kernel, self.network, host_name,
                    arch=arch, cpu_factor=cpu_factor))
        node = TaxNode(
            self.kernel, self.network, host, directory=self.directory,
            trust_store=self._make_trust_store(), keychain=self.keychain,
            policy=policy, site_ordinal=len(self.nodes), web=self.web)
        self.nodes[host_name] = node
        if boot:
            node.boot()
        return node

    def node(self, host_name: str) -> TaxNode:
        try:
            return self.nodes[host_name]
        except KeyError:
            raise KeyError(f"no TAX node on host {host_name!r}") from None

    def node_names(self) -> List[str]:
        return sorted(self.nodes)

    def configure_breakers(self, config) -> None:
        """Install circuit breakers (a
        :class:`~repro.core.limits.BreakerConfig`) on every inter-host
        link; ``None`` removes them."""
        self.network.configure_breakers(config)

    # -- durability --------------------------------------------------------------------------

    def enable_durability(self, injector=None,
                          snapshot_interval: Optional[int] = None):
        """Give every node a crash-durable store + write-ahead journal.

        ``injector`` (a :class:`~repro.sim.faults.FaultInjector`) rolls
        the seeded storage faults; pass the scenario's injector so crash
        damage shares the run's seed.  Returns the per-host
        :class:`~repro.durability.recovery.HostDurability` controllers,
        keyed by host name.
        """
        from repro.durability.recovery import HostDurability
        kwargs = {}
        if snapshot_interval is not None:
            kwargs["snapshot_interval"] = snapshot_interval
        return {name: HostDurability(self.nodes[name], injector=injector,
                                     **kwargs)
                for name in sorted(self.nodes)}

    def enable_conservation(self):
        """Install the system-wide agent-conservation auditor
        (:class:`~repro.durability.conservation.ConservationAuditor`)
        on the kernel and return it."""
        from repro.durability.conservation import ConservationAuditor
        auditor = ConservationAuditor()
        self.kernel.auditor = auditor
        return auditor

    # -- addressing --------------------------------------------------------------------------

    def vm_uri(self, host_name: str, vm_name: str = "vm_python") -> AgentUri:
        """The launch address of a VM at a host (a ``go`` target)."""
        if host_name not in self.nodes:
            raise KeyError(f"no TAX node on host {host_name!r}")
        return AgentUri(host=host_name, name=vm_name)

    # -- running ------------------------------------------------------------------------------

    def run(self, generator, name: str = "scenario",
            until: Optional[float] = None):
        """Run a top-level scenario process to completion."""
        return self.kernel.run_process(generator, name=name, until=until)
