"""Deployment layer: nodes, clusters, and standard testbeds."""

from repro.system.bootstrap import (
    CLIENT_HOST,
    DEFAULT_EXTERNAL_HOSTS,
    SERVER_HOST,
    Testbed,
    build_campus_testbed,
    build_linkcheck_testbed,
)
from repro.system.cluster import TaxCluster
from repro.system.node import TaxNode

__all__ = [
    "CLIENT_HOST", "DEFAULT_EXTERNAL_HOSTS", "SERVER_HOST",
    "Testbed", "build_campus_testbed", "build_linkcheck_testbed",
    "TaxCluster", "TaxNode",
]
