"""TaxNode: one host's complete TAX installation.

A node bundles what the paper's Figure 1 shows on a single machine: the
firewall, the virtual machines behind it, and the standard service
agents — plus this simulation's local resources (the virtual filesystem
and, when the host also serves the web, access to the web deployment).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.briefcase import Briefcase
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.agent.context import AgentContext
from repro.agent.mailbox import Mailbox
from repro.firewall.admin import FirewallAdmin
from repro.firewall.auth import KeyChain, TrustStore
from repro.firewall.firewall import Firewall, FirewallDirectory
from repro.firewall.policy import Policy
from repro.services.ag_cabinet import AgCabinet
from repro.services.ag_cc import AgCc
from repro.services.ag_cron import AgCron
from repro.services.ag_exec import AgExec
from repro.services.ag_fs import AgFs
from repro.services.ag_locator import AgLocator
from repro.services.base import ServiceAgent
from repro.services.vfs import VirtualFS
from repro.sim.eventloop import Kernel
from repro.sim.host import SimHost
from repro.sim.network import Network
from repro.vm.base import VirtualMachine
from repro.vm.vm_bin import VmBin
from repro.vm.vm_pickle import VmPickle
from repro.vm.vm_python import VmPython
from repro.vm.vm_source import VmSource


class TaxNode:
    """Host + firewall + VMs + services."""

    def __init__(self, kernel: Kernel, network: Network, host: SimHost,
                 directory: FirewallDirectory,
                 trust_store: Optional[TrustStore] = None,
                 keychain: Optional[KeyChain] = None,
                 policy: Optional[Policy] = None,
                 site_ordinal: int = 0,
                 web=None,
                 fs_quota_bytes: Optional[int] = None):
        self.kernel = kernel
        self.network = network
        self.host = host
        self.keychain = keychain or KeyChain()
        self.web = web
        self.vfs = VirtualFS(quota_bytes=fs_quota_bytes)
        self.firewall = Firewall(
            kernel, network, host, trust_store=trust_store, policy=policy,
            directory=directory, site_ordinal=site_ordinal)
        self.vms: Dict[str, VirtualMachine] = {}
        self.services: Dict[str, ServiceAgent] = {}
        #: Crash-durability controller (installed by
        #: ``cluster.enable_durability()``); ``None`` on volatile hosts.
        self.durability = None
        self._booted = False
        #: Crash state: False between crash() and restart().  Wrappers
        #: and services consult this to stay silent while "down".
        self.alive = True
        self._down_span = None

    @property
    def telemetry(self):
        """The system-wide telemetry hub (owned by the kernel)."""
        return self.kernel.telemetry

    # -- boot ---------------------------------------------------------------------

    def boot(self) -> "TaxNode":
        """Start the standard VMs and service agents."""
        if self._booted:
            return self
        self._booted = True
        for vm in (VmPython(self), VmSource(self), VmBin(self),
                   VmPickle(self)):
            self.add_vm(vm)
        for service in (AgExec(self), AgCc(self), AgFs(self),
                        AgCabinet(self), AgCron(self), AgLocator(self),
                        FirewallAdmin(self)):
            self.add_service(service)
        return self

    def add_vm(self, vm: VirtualMachine) -> VirtualMachine:
        if vm.name in self.vms:
            raise ValueError(f"duplicate VM {vm.name!r}")
        self.vms[vm.name] = vm
        self.firewall.vms[vm.name] = vm
        vm.boot()
        return vm

    def add_service(self, service: ServiceAgent) -> ServiceAgent:
        if service.name in self.services:
            raise ValueError(f"duplicate service {service.name!r}")
        self.services[service.name] = service
        service.boot()
        return service

    # -- crash / restart ---------------------------------------------------------------

    def crash(self, reason: str = "host-crash") -> int:
        """Kill this host: resident agents die, queues are dead-lettered.

        The host drops out of the network first (in-flight transfers to
        or from it are lost), then every firewall registration — agents,
        VMs, services — is interrupted and destroyed.  Returns the
        number of registrations destroyed; a no-op (0) if already down.
        """
        if not self.alive:
            return 0
        self.alive = False
        if self.durability is not None:
            # Freeze the journal and apply storage damage *first*: the
            # queue flushes and registration kills below are crash-time
            # bookkeeping that must not look durable.
            self.durability.on_crash()
        self.host.set_up(False)
        telemetry = self.kernel.telemetry
        self._down_span = telemetry.tracer.begin(
            "host.down", category="fault", track=f"host:{self.host.name}",
            host=self.host.name, reason=reason)
        if telemetry.enabled:
            telemetry.metrics.inc("host.crashes", host=self.host.name)
        killed = self.firewall.crash(reason)
        if telemetry.enabled:
            # The black box: freeze this host's recent-event ring into a
            # post-mortem dump the chaos/overload documents can embed.
            telemetry.flight.dump(self.host.name, reason=reason)
        self.firewall.log(f"host {self.host.name} crashed ({reason})")
        return killed

    def restart(self) -> "TaxNode":
        """Bring a crashed host back: re-register VMs and services.

        Service *state* that models disk (cabinet drawers, the virtual
        filesystem) survives; registrations and agent processes do not.
        Dead-lettered messages from the crash are retransmitted with
        fresh TTLs instead of being lost.
        """
        if self.alive:
            return self
        self.alive = True
        self.host.set_up(True)
        if self._down_span is not None:
            self._down_span.end(outcome="restarted")
            self._down_span = None
        for vm in self.vms.values():
            vm.boot()
        for service in self.services.values():
            service.boot()
        if self.durability is not None:
            # Replay the journal before retransmitting: the restored
            # dead-letter ledger (not the crashed process's memory) is
            # what retransmission draws from on a durable host.
            self.durability.on_restart()
        retransmitted = self.firewall.retransmit_dead_letters()
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.flight.record(self.host.name, "restart",
                                    retransmitted=retransmitted)
        self.firewall.log(
            f"host {self.host.name} restarted "
            f"({retransmitted} dead letters retransmitted)")
        return self

    # -- driving the node from outside (experiments, tests) -----------------------------

    def driver(self, name: str = "driver",
               principal: str = SYSTEM_PRINCIPAL) -> AgentContext:
        """A registered pseudo-agent context for injecting work.

        The returned context can ``send``/``meet``/launch agents; run its
        generators with ``kernel.run_process`` (or inside any process).
        """
        mailbox = Mailbox(self.kernel)
        ctx = AgentContext(self, vm_name="vm_python",
                           briefcase=Briefcase(), principal=principal)

        def deliver(message):
            # Drivers honour a wrapper stack assigned after creation,
            # exactly like VM-launched agents do.
            filtered = ctx.wrappers.apply_receive(ctx, message)
            if filtered is None:
                return True
            return mailbox.deliver(filtered)

        registration = self.firewall.register_agent(
            name=name, principal=principal, vm_name="vm_python",
            deliver_fn=deliver)
        ctx.attach(registration, mailbox)
        return ctx

    def __repr__(self) -> str:
        return (f"<TaxNode {self.host.name!r} vms={sorted(self.vms)} "
                f"services={sorted(self.services)}>")
