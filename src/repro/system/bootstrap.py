"""Standard deployments: the topologies the experiments run on.

- :func:`build_linkcheck_testbed` — the paper's Section-5 setup: a client
  workstation and the department web server on a LAN (bandwidth/latency
  configurable up to WAN), plus external web hosts behind a WAN link.
- :func:`build_campus_testbed` — E4's "all the servers at the university
  campus": N web-server hosts, each with its own site, plus the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.telemetry import Telemetry
from repro.sim.network import (
    BANDWIDTH_1MBIT,
    BANDWIDTH_100MBIT,
    LATENCY_LAN,
    LATENCY_WAN,
)
from repro.system.cluster import TaxCluster
from repro.system.node import TaxNode
from repro.web.server import ServerModel, WebDeployment, WebServer
from repro.web.site import (
    Site,
    SiteSpec,
    external_stub_site,
    generate_site,
    paper_site_spec,
)

CLIENT_HOST = "client.cs.uit.no"
SERVER_HOST = "www.cs.uit.no"
DEFAULT_EXTERNAL_HOSTS = ("www.w3.org", "www.cornell.edu")


@dataclass
class Testbed:
    """A ready-to-run deployment."""

    cluster: TaxCluster
    deployment: WebDeployment
    client: TaxNode
    servers: List[TaxNode]
    sites: Dict[str, Site] = field(default_factory=dict)

    @property
    def kernel(self):
        return self.cluster.kernel

    @property
    def network(self):
        return self.cluster.network

    @property
    def telemetry(self):
        return self.cluster.telemetry

    @property
    def server(self) -> TaxNode:
        return self.servers[0]

    def site_of(self, host_name: str) -> Site:
        return self.sites[host_name]


def _add_external_web(cluster: TaxCluster, deployment: WebDeployment,
                      external_hosts: Sequence[str],
                      attached_hosts: Sequence[str],
                      wan_latency: float, wan_bandwidth: float) -> None:
    """External web hosts are plain web servers (no TAX node needed, but
    they still need a host on the network); every attached host reaches
    them over a WAN link."""
    from repro.sim.host import SimHost
    for ext in external_hosts:
        host = cluster.hosts.add(
            SimHost(cluster.kernel, cluster.network, ext))
        deployment.add(WebServer(host, external_stub_site(ext)))
        for attached in attached_hosts:
            cluster.network.link(attached, ext,
                                 latency=wan_latency,
                                 bandwidth=wan_bandwidth)


def build_linkcheck_testbed(
        spec: Optional[SiteSpec] = None,
        bandwidth: float = BANDWIDTH_100MBIT,
        latency: float = LATENCY_LAN,
        external_hosts: Sequence[str] = DEFAULT_EXTERNAL_HOSTS,
        wan_latency: float = LATENCY_WAN,
        wan_bandwidth: float = BANDWIDTH_1MBIT,
        server_model: Optional[ServerModel] = None,
        client_host: str = CLIENT_HOST,
        telemetry: Optional[Telemetry] = None) -> Testbed:
    """The Section-5 experiment world.

    One TAX node on the client workstation, one on the web server; the
    crawl target site is generated from ``spec`` (the paper's 917-page /
    3 MB workload by default).
    """
    spec = spec or paper_site_spec(external_hosts=tuple(external_hosts))
    deployment = WebDeployment()
    cluster = TaxCluster(web=deployment, telemetry=telemetry)

    client = cluster.add_node(client_host)
    server = cluster.add_node(spec.host)
    cluster.network.link(client_host, spec.host,
                         latency=latency, bandwidth=bandwidth)

    site = generate_site(spec)
    deployment.add(WebServer(server.host, site, model=server_model))
    _add_external_web(cluster, deployment, external_hosts,
                      [client_host, spec.host], wan_latency, wan_bandwidth)
    return Testbed(cluster=cluster, deployment=deployment, client=client,
                   servers=[server], sites={spec.host: site})


def build_campus_testbed(
        n_servers: int = 4,
        pages_per_server: int = 200,
        bytes_per_server: int = 700_000,
        bandwidth: float = BANDWIDTH_100MBIT,
        latency: float = LATENCY_LAN,
        client_bandwidth: float = BANDWIDTH_1MBIT,
        client_latency: float = LATENCY_WAN,
        external_hosts: Sequence[str] = DEFAULT_EXTERNAL_HOSTS,
        seed: int = 2000,
        client_host: str = "client.remote.example.org",
        telemetry: Optional[Telemetry] = None) -> Testbed:
    """E4's world: a campus of web servers on a fast LAN, audited from a
    client that reaches the campus over a slow link."""
    if n_servers < 1:
        raise ValueError("campus needs at least one server")
    deployment = WebDeployment()
    cluster = TaxCluster(web=deployment, telemetry=telemetry)
    client = cluster.add_node(client_host)

    servers: List[TaxNode] = []
    sites: Dict[str, Site] = {}
    server_names = [f"www{i:02d}.uit.no" for i in range(n_servers)]
    for i, name in enumerate(server_names):
        node = cluster.add_node(name)
        servers.append(node)
        spec = SiteSpec(
            host=name, n_pages=pages_per_server,
            total_bytes=bytes_per_server,
            external_hosts=tuple(external_hosts),
            seed=seed + i)
        site = generate_site(spec)
        sites[name] = site
        deployment.add(WebServer(node.host, site))
        cluster.network.link(client_host, name,
                             latency=client_latency,
                             bandwidth=client_bandwidth)
    # Campus LAN: full mesh between the servers.
    for i, a in enumerate(server_names):
        for b in server_names[i + 1:]:
            cluster.network.link(a, b, latency=latency, bandwidth=bandwidth)
    _add_external_web(cluster, deployment, external_hosts,
                      server_names + [client_host],
                      LATENCY_WAN, BANDWIDTH_1MBIT)
    return Testbed(cluster=cluster, deployment=deployment, client=client,
                   servers=servers, sites=sites)
