"""OpenMetrics text rendering of a :class:`MetricsRegistry` snapshot.

``repro metrics`` ends here: the registry's JSON-able snapshot becomes
the OpenMetrics text format (the Prometheus exposition format plus the
``# EOF`` terminator), so the simulator's numbers can be diffed in CI
and pasted into any Prometheus-compatible tooling.

Mapping rules:

- family names translate dots/dashes to underscores
  (``fw.queue_wait_seconds`` → ``fw_queue_wait_seconds``);
- counters gain the conventional ``_total`` suffix;
- histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (the registry stores *per-bucket* counts, so
  this module does the cumulation);
- output is sorted at every level — families by name, series by label
  key — making the text a deterministic pure function of the snapshot.
"""

from __future__ import annotations

from typing import Dict, List

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def metric_name(name: str) -> str:
    """An OpenMetrics-legal name for a ``subsystem.metric`` family."""
    return name.replace(".", "_").replace("-", "_")


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _labels(labels: Dict[str, str], extra: Dict[str, str] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"'
                    for key, value in sorted(merged.items()))
    return "{" + body + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, sample: dict) -> List[str]:
    lines: List[str] = []
    value = sample["value"]
    labels = sample["labels"]
    cumulative = 0
    # The snapshot's bucket counts are per-bucket; OpenMetrics wants
    # cumulative counts in ascending bound order with +inf last.
    bounds = sorted((key for key in value["buckets"] if key != "+inf"),
                    key=float)
    for bound in bounds:
        cumulative += value["buckets"][bound]
        lines.append(f"{name}_bucket{_labels(labels, {'le': bound})} "
                     f"{_number(cumulative)}")
    cumulative += value["buckets"].get("+inf", 0)
    lines.append(f"{name}_bucket{_labels(labels, {'le': '+Inf'})} "
                 f"{_number(cumulative)}")
    lines.append(f"{name}_sum{_labels(labels)} {_number(value['sum'])}")
    lines.append(f"{name}_count{_labels(labels)} "
                 f"{_number(value['count'])}")
    return lines


def render_openmetrics(snapshot: Dict[str, dict]) -> str:
    """The OpenMetrics text body for one registry snapshot."""
    lines: List[str] = []
    for family_name in sorted(snapshot):
        family = snapshot[family_name]
        kind = family["kind"]
        name = metric_name(family_name)
        lines.append(f"# TYPE {name} {kind}")
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        for sample in family["samples"]:
            if kind == "histogram":
                lines.extend(_histogram_lines(name, sample))
            elif kind == "counter":
                lines.append(f"{name}_total{_labels(sample['labels'])} "
                             f"{_number(sample['value'])}")
            else:
                lines.append(f"{name}{_labels(sample['labels'])} "
                             f"{_number(sample['value'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
