"""The metrics registry: counters, gauges and histograms with labels.

The registry is the system's numeric memory: every layer of the runtime
(kernel, network, firewalls, VMs, agents) increments named time series
here instead of keeping private ad-hoc tallies that vanish with their
owner.  The design goals, in order:

1. **Zero dependencies** — plain dictionaries, JSON-able snapshots.
2. **Cheap when disabled** — every recording method checks one boolean
   and returns; a disabled registry stores *nothing* and never allocates
   per-call, so instrumentation can stay unconditionally wired into hot
   paths.
3. **Deterministic** — no wall-clock anywhere; ordering of snapshot
   output is sorted, so two identical simulation runs produce identical
   snapshots.

Naming follows the ``subsystem.metric`` convention
(``fw.messages_queued``, ``net.bytes_on_wire``); labels are free-form
keyword arguments (``host=...``, ``agent=...``).  Label values are
stringified, and label *order* never matters — ``inc("x", a="1", b="2")``
and ``inc("x", b="2", a="1")`` hit the same series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Histogram bucket upper bounds (seconds-oriented); +inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, order-insensitive form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricError(ValueError):
    """A metric was redeclared with a conflicting kind."""


def estimate_quantile(sample: dict, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a histogram *sample* dict (the
    ``{"count", "sum", "min", "max", "buckets"}`` shape produced by
    :meth:`Histogram._sample_value`).

    Classic bucket-walk with linear interpolation inside the target
    bucket, clamped to the observed ``[min, max]`` so tiny populations
    do not extrapolate past real data.  Returns None for an empty
    sample.  Deterministic: pure arithmetic over the sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = sample.get("count", 0)
    if not count:
        return None
    bounds: List[Tuple[float, int]] = [
        (float(key), n) for key, n in sample["buckets"].items()
        if key != "+inf"]
    bounds.sort()
    rank = q * count
    lower = 0.0
    cumulative = 0
    minimum = sample.get("min")
    maximum = sample.get("max")
    for bound, n in bounds:
        if cumulative + n >= rank and n > 0:
            fraction = (rank - cumulative) / n
            estimate = lower + (bound - lower) * fraction
            break
        cumulative += n
        lower = bound
    else:
        # Target rank lands in the +inf bucket: the best deterministic
        # point estimate is the observed maximum.
        estimate = maximum if maximum is not None else lower
    if minimum is not None:
        estimate = max(estimate, minimum)
    if maximum is not None:
        estimate = min(estimate, maximum)
    return estimate


def summarize_sample(sample: dict) -> dict:
    """p50/p95/p99 + count/sum/min/max summary of a histogram sample."""
    return {
        "count": sample.get("count", 0),
        "sum": sample.get("sum", 0.0),
        "min": sample.get("min"),
        "max": sample.get("max"),
        "p50": estimate_quantile(sample, 0.50),
        "p95": estimate_quantile(sample, 0.95),
        "p99": estimate_quantile(sample, 0.99),
    }


class Metric:
    """One named family of series, distinguished by label sets."""

    kind = "metric"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, object] = {}

    # -- introspection -------------------------------------------------------

    def series(self) -> Dict[LabelKey, object]:
        return dict(self._series)

    def value(self, **labels):
        """The series value for exactly these labels (None if absent)."""
        return self._series.get(_label_key(labels))

    def samples(self) -> List[dict]:
        """Sorted, JSON-able ``{"labels": ..., "value": ...}`` samples."""
        return [{"labels": dict(key), "value": self._sample_value(raw)}
                for key, raw in sorted(self._series.items())]

    def _sample_value(self, raw):
        return raw

    def describe(self) -> dict:
        return {"kind": self.kind, "help": self.help,
                "samples": self.samples()}

    def clear(self) -> None:
        """Drop every series (counts, watermarks, histograms) while the
        family itself stays registered — see
        :meth:`MetricsRegistry.reset`."""
        self._series.clear()


class Counter(Metric):
    """Monotonically increasing value (int or float)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount


class Gauge(Metric):
    """A value that can go up and down (queue depths, temperatures)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self.registry.enabled:
            return
        self._series[_label_key(labels)] = value

    def add(self, delta: float, **labels) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + delta

    def set_max(self, value: float, **labels) -> None:
        """Raise the series to ``value`` if higher (high-watermark)."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None or value > current:
            self._series[key] = value


class _HistogramState:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bucket_counts = [0] * (n_buckets + 1)  # last = +inf


class Histogram(Metric):
    """Distribution of observed values over fixed buckets."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistogramState(len(self.buckets))
        state.count += 1
        state.total += value
        if state.minimum is None or value < state.minimum:
            state.minimum = value
        if state.maximum is None or value > state.maximum:
            state.maximum = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[i] += 1
                return
        state.bucket_counts[-1] += 1

    def _sample_value(self, raw: _HistogramState) -> dict:
        buckets = {f"{bound:g}": count for bound, count
                   in zip(self.buckets, raw.bucket_counts)}
        buckets["+inf"] = raw.bucket_counts[-1]
        return {"count": raw.count, "sum": raw.total,
                "min": raw.minimum, "max": raw.maximum,
                "buckets": buckets}


class MetricsRegistry:
    """All metric families of one deployment.

    Families are created lazily (``counter()``/``gauge()``/
    ``histogram()`` are get-or-create) and the convenience recorders
    (:meth:`inc`, :meth:`set_gauge`, :meth:`observe`) create the family
    of the right kind on first use, so call sites need no setup.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, Metric] = {}

    # -- family construction -------------------------------------------------

    def _family(self, cls, name: str, help: str = "", **kwargs) -> Metric:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(self, name, help, **kwargs)
        elif not isinstance(family, cls):
            raise MetricError(
                f"metric {name!r} is a {family.kind}, not a {cls.kind}")
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    # -- convenience recorders ----------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels) -> None:
        if not self.enabled:
            return
        self.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value, **labels)

    # -- reading -------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._families.get(name)

    def value(self, name: str, default=None, **labels):
        """The current value of one series (``default`` if absent)."""
        family = self._families.get(name)
        if family is None:
            return default
        found = family.value(**labels)
        return default if found is None else found

    def collect(self, prefix: str = "", **label_filter) -> List[dict]:
        """Flat sample list, filtered by name prefix and label equality.

        Each entry is ``{"name", "kind", "labels", "value"}``; used by
        the firewall admin agent to answer per-agent ``stat`` queries.
        """
        wanted = {k: str(v) for k, v in label_filter.items()}
        out: List[dict] = []
        for name in sorted(self._families):
            if not name.startswith(prefix):
                continue
            family = self._families[name]
            for sample in family.samples():
                labels = sample["labels"]
                if all(labels.get(k) == v for k, v in wanted.items()):
                    out.append({"name": name, "kind": family.kind,
                                "labels": labels,
                                "value": sample["value"]})
        return out

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able dump of every family (sorted, deterministic)."""
        return {name: self._families[name].describe()
                for name in sorted(self._families)}

    def reset(self) -> None:
        """The explicit **per-run reset**: clear every series in place.

        Families stay registered and — crucially — any family object a
        call site still holds (``gauge = metrics.gauge("fw.queue_peak_
        depth")``) stays *live*.  The registry used to drop the family
        dict wholesale, which orphaned such held references: their
        writes after the reset landed in a detached object and silently
        vanished from snapshots, while cumulative state recorded before
        the reset (peak watermarks via :meth:`Gauge.set_max`, counter
        totals) could leak into the next in-process run whenever the
        reset was skipped.  Back-to-back scenario cells in one process
        (the suite matrix runner) must either construct a fresh registry
        or call this; see ``docs/experiments.md``.
        """
        for family in self._families.values():
            family.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<MetricsRegistry {state} "
                f"families={len(self._families)}>")
