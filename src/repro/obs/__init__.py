"""repro.obs — system-wide telemetry for the TAX runtime.

Seven pieces, all zero-dependency and deterministic:

- :mod:`repro.obs.metrics` — the metrics registry (counters, gauges,
  histograms with labels) plus quantile/summary math;
- :mod:`repro.obs.tracing` — the span tracer (virtual-time intervals,
  JSONL and Chrome ``trace_event`` export with causal flow arrows);
- :mod:`repro.obs.propagation` — the causal trace context that rides
  message envelopes across hops (and the reserved ``TRACE-CONTEXT``
  briefcase folder it travels in on the raw wire);
- :mod:`repro.obs.flightrec` — the per-host flight recorder: a bounded
  ring of recent events frozen into a dump on crash or quarantine;
- :mod:`repro.obs.report` — per-trace itinerary + SLO report documents
  (canonical JSON, self-contained HTML);
- :mod:`repro.obs.openmetrics` — OpenMetrics text rendering of a
  registry snapshot;
- :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the kernel
  owns and every layer reaches as ``kernel.telemetry``.

See ``docs/observability.md`` for the metric catalog and trace schema.
(:mod:`repro.obs.demo` — the traced quickstart scenario behind ``repro
trace`` — is deliberately *not* imported here: it pulls in the system
layer, which itself imports this package.)
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    estimate_quantile,
    summarize_sample,
)
from repro.obs.tracing import (  # noqa: F401
    NULL_SPAN,
    Span,
    Tracer,
)
from repro.obs.propagation import (  # noqa: F401
    TraceContext,
    TraceIdAllocator,
)
from repro.obs.flightrec import FlightRecorder  # noqa: F401
from repro.obs.report import (  # noqa: F401
    build_report,
    render_report_html,
    render_report_json,
)
from repro.obs.openmetrics import render_openmetrics  # noqa: F401
from repro.obs.telemetry import Telemetry  # noqa: F401

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "DEFAULT_BUCKETS", "estimate_quantile", "summarize_sample",
    "Span", "Tracer", "NULL_SPAN",
    "TraceContext", "TraceIdAllocator", "FlightRecorder",
    "build_report", "render_report_html", "render_report_json",
    "render_openmetrics",
    "Telemetry",
]
