"""repro.obs — system-wide telemetry for the TAX runtime.

Three pieces, all zero-dependency and deterministic:

- :mod:`repro.obs.metrics` — the metrics registry (counters, gauges,
  histograms with labels);
- :mod:`repro.obs.tracing` — the span tracer (virtual-time intervals,
  JSONL and Chrome ``trace_event`` export);
- :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the kernel
  owns and every layer reaches as ``kernel.telemetry``.

See ``docs/observability.md`` for the metric catalog and trace schema.
(:mod:`repro.obs.demo` — the traced quickstart scenario behind ``repro
trace`` — is deliberately *not* imported here: it pulls in the system
layer, which itself imports this package.)
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracing import (  # noqa: F401
    NULL_SPAN,
    Span,
    Tracer,
)
from repro.obs.telemetry import Telemetry  # noqa: F401

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "DEFAULT_BUCKETS", "Span", "Tracer", "NULL_SPAN", "Telemetry",
]
