"""Flight recorder: bounded per-host ring buffers for post-mortems.

Counters say *how many* admissions were rejected; they cannot say what
the last thirty events on a host were when it crashed.  The flight
recorder keeps exactly that: a small ``deque(maxlen=N)`` per host fed by
the firewall (admissions, rejections, quarantines), the network
(breaker transitions), the fault injector, and the mobility layer
(hops).  On crash or poison quarantine the ring is frozen into a
*dump* — the black box the chaos and overload experiments embed in
their JSON documents.

Everything is gated on ``enabled`` and timestamps come from the bound
virtual clock, so the disabled path allocates nothing and dumps are
deterministic for a fixed seed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

#: Events retained per host before the oldest are overwritten.
DEFAULT_CAPACITY = 64

#: Post-mortem dumps retained (oldest evicted) — a chaos scenario can
#: crash many hosts; the document should stay bounded.
MAX_DUMPS = 16


class FlightRecorder:
    """Per-host ring buffer of recent events, dumpable on failure."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._rings: Dict[str, Deque[dict]] = {}
        #: Frozen post-mortems, oldest first (bounded by MAX_DUMPS).
        self.dumps: List[dict] = []
        self.dumps_evicted = 0

    # -- recording -----------------------------------------------------------

    def record(self, host: str, kind: str, **detail) -> None:
        """Append one event to ``host``'s ring (no-op when disabled)."""
        if not self.enabled:
            return
        ring = self._rings.get(host)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[host] = ring
        event = {"t": round(self.clock(), 9), "kind": kind}
        if detail:
            event.update(sorted(detail.items()))
        ring.append(event)

    # -- reading -------------------------------------------------------------

    def snapshot(self, host: str) -> List[dict]:
        """The host's ring, oldest first (copies; ring keeps recording)."""
        ring = self._rings.get(host)
        return [dict(event) for event in ring] if ring else []

    def hosts(self) -> List[str]:
        return sorted(self._rings)

    # -- post-mortems --------------------------------------------------------

    def dump(self, host: str, reason: str) -> Optional[dict]:
        """Freeze ``host``'s ring into a post-mortem document.

        Returns the dump (also appended to :attr:`dumps`), or None when
        disabled.  The ring itself keeps recording — a restarted host
        that crashes again produces a second, later dump.
        """
        if not self.enabled:
            return None
        document = {
            "host": host,
            "reason": reason,
            "at": round(self.clock(), 9),
            "capacity": self.capacity,
            "events": self.snapshot(host),
        }
        self.dumps.append(document)
        if len(self.dumps) > MAX_DUMPS:
            del self.dumps[0]
            self.dumps_evicted += 1
        return document

    def reset(self) -> None:
        self._rings.clear()
        self.dumps = []
        self.dumps_evicted = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<FlightRecorder {state} hosts={len(self._rings)} "
                f"dumps={len(self.dumps)}>")
