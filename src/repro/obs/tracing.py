"""The span tracer: begin/end intervals in *virtual* kernel time.

Spans record what the simulation spent its virtual seconds on — an agent
instance running at a host, a ``go`` hop, a network transfer, a message
sitting in a firewall queue, a synchronous cost-ledger segment.  Each
span lives on a named **track** (one row in a trace viewer: a host, an
agent, a link); spans on the same track nest by time containment, which
is exactly how Chrome's ``trace_event`` format and Perfetto render them.

Two export formats:

- **JSONL** (:meth:`Tracer.to_jsonl`): one JSON object per line, stable
  and greppable — the machine-readable archive format;
- **Chrome trace_event** (:meth:`Tracer.to_chrome`): a
  ``{"traceEvents": [...]}`` document loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Virtual seconds
  map to trace microseconds.

Like the metrics registry, a disabled tracer is a true no-op:
:meth:`begin` hands back a shared null span whose ``end`` does nothing,
so instrumentation never needs an ``if`` at the call site.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

#: Virtual seconds → trace_event microseconds.
_US = 1_000_000.0

#: Default cap on retained finished spans (a runaway-scenario backstop).
DEFAULT_MAX_SPANS = 200_000


class Span:
    """One open or finished interval on a track."""

    __slots__ = ("tracer", "name", "category", "track", "start", "end_time",
                 "args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: str, start: float, args: Dict):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end_time: Optional[float] = None
        self.args = args

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def annotate(self, **args) -> "Span":
        """Attach extra args to the span (e.g. an outcome discovered late)."""
        self.args.update(args)
        return self

    def end(self, at: Optional[float] = None, **args) -> "Span":
        """Finish the span at ``at`` (default: now).  Idempotent."""
        if self.end_time is not None:
            return self
        self.args.update(args)
        self.end_time = self.tracer.clock() if at is None else at
        self.tracer._finish(self)
        return self

    def to_dict(self) -> dict:
        return {"kind": "span", "name": self.name, "cat": self.category,
                "track": self.track, "start": self.start,
                "end": self.end_time, "dur": self.duration,
                "args": self.args}

    def __repr__(self) -> str:
        state = f"[{self.start:g}..{self.end_time:g}]" if self.finished \
            else f"[{self.start:g}..)"
        return f"<Span {self.name!r} {self.track} {state}>"


class _NullSpan:
    """The span a disabled tracer hands out; every method is a no-op."""

    __slots__ = ()
    name = category = track = ""
    start = 0.0
    end_time: Optional[float] = None
    finished = False
    duration: Optional[float] = None
    args: Dict = {}

    def annotate(self, **args) -> "_NullSpan":
        return self

    def end(self, at=None, **args) -> "_NullSpan":
        return self

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and instant events against a virtual clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True,
                 max_spans: int = DEFAULT_MAX_SPANS):
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.instants: List[dict] = []
        self.dropped = 0
        self._open = 0

    # -- recording -----------------------------------------------------------

    def begin(self, name: str, category: str = "", track: str = "main",
              **args):
        """Open a span at the current instant; call ``.end()`` to finish.

        Spans may straddle ``yield``s — keep the handle, end it later.
        """
        if not self.enabled:
            return NULL_SPAN
        self._open += 1
        return Span(self, name, category, track, self.clock(), args)

    def record(self, name: str, start: float, end: float,
               category: str = "", track: str = "main", **args):
        """A finished span at explicit virtual times (for costs accounted
        synchronously and spent later)."""
        if not self.enabled:
            return NULL_SPAN
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(self, name, category, track, start, args)
        span.end_time = end
        self._keep(span)
        return span

    def instant(self, name: str, category: str = "", track: str = "main",
                at: Optional[float] = None, **args) -> None:
        """A point event (a monitor report, an expiry, a rejection)."""
        if not self.enabled:
            return
        if len(self.instants) >= self.max_spans:
            self.dropped += 1
            return
        self.instants.append({
            "kind": "instant", "name": name, "cat": category,
            "track": track, "t": self.clock() if at is None else at,
            "args": args})

    def span(self, name: str, category: str = "", track: str = "main",
             **args):
        """Context manager for spans that do not straddle a yield."""
        return _SpanContext(self, name, category, track, args)

    def _finish(self, span: Span) -> None:
        self._open -= 1
        self._keep(span)

    def _keep(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- introspection -------------------------------------------------------

    @property
    def open_count(self) -> int:
        """Spans begun but not yet ended."""
        return max(self._open, 0)

    def find(self, name: Optional[str] = None,
             track: Optional[str] = None,
             category: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (track is None or s.track == track)
                and (category is None or s.category == category)]

    def reset(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.dropped = 0
        self._open = 0

    # -- export --------------------------------------------------------------

    def _sorted_spans(self) -> List[Span]:
        # Start-ascending, then longest-first so parents precede children
        # at equal start times.
        return sorted(self.spans,
                      key=lambda s: (s.start, -(s.duration or 0.0),
                                     s.track, s.name))

    def to_jsonl(self) -> str:
        """One JSON object per line: spans then instants, time-sorted."""
        rows = [span.to_dict() for span in self._sorted_spans()]
        rows.extend(sorted(self.instants,
                           key=lambda i: (i["t"], i["track"], i["name"])))
        return "\n".join(json.dumps(row, sort_keys=True) for row in rows)

    def to_chrome(self) -> dict:
        """The ``trace_event`` document (Perfetto / chrome://tracing)."""
        tracks = sorted({s.track for s in self.spans} |
                        {i["track"] for i in self.instants})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": "TAX simulation (virtual time)"}}]
        for track, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": track}})
        for span in self._sorted_spans():
            events.append({
                "name": span.name, "cat": span.category or "span",
                "ph": "X", "pid": 1, "tid": tids[span.track],
                "ts": span.start * _US,
                "dur": (span.duration or 0.0) * _US,
                "args": span.args})
        for inst in sorted(self.instants,
                           key=lambda i: (i["t"], i["track"], i["name"])):
            events.append({
                "name": inst["name"], "cat": inst["cat"] or "instant",
                "ph": "i", "s": "t", "pid": 1, "tid": tids[inst["track"]],
                "ts": inst["t"] * _US, "args": inst["args"]})
        events.extend(self._flow_events(tids))
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"clock": "virtual-seconds",
                              "dropped_spans": self.dropped,
                              "open_spans": self.open_count}}

    def _flow_events(self, tids: Dict[str, int]) -> List[dict]:
        """Perfetto flow (``s``/``f``) arrows between causally linked
        spans on *different* tracks.

        Spans stamped by the propagation layer carry ``span_id`` /
        ``parent_span_id`` args; each cross-track parent→child edge
        becomes one flow: the start (``s``) anchors inside the parent
        slice, the finish (``f``, ``bp:"e"``) binds to the child's
        enclosing slice at its start.  Enumeration follows the already
        deterministic span sort, so exports stay byte-identical across
        runs.
        """
        by_id: Dict[str, Span] = {}
        ordered = self._sorted_spans()
        for span in ordered:
            span_id = span.args.get("span_id")
            if isinstance(span_id, str) and span_id not in by_id:
                by_id[span_id] = span
        flows: List[dict] = []
        flow_id = 0
        for child in ordered:
            parent_id = child.args.get("parent_span_id")
            parent = by_id.get(parent_id) if parent_id else None
            if parent is None or parent is child or \
                    parent.track == child.track:
                continue
            flow_id += 1
            anchor = min(max(child.start, parent.start),
                         parent.end_time if parent.finished
                         else child.start)
            flows.append({
                "name": "trace", "cat": "flow", "ph": "s", "id": flow_id,
                "pid": 1, "tid": tids[parent.track],
                "ts": anchor * _US})
            flows.append({
                "name": "trace", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow_id, "pid": 1, "tid": tids[child.track],
                "ts": child.start * _US})
        return flows

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace document; returns the event count."""
        document = self.to_chrome()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        return len(document["traceEvents"])

    def export_jsonl(self, path: str) -> int:
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return 0 if not text else text.count("\n") + 1

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<Tracer {state} spans={len(self.spans)} "
                f"open={self.open_count} instants={len(self.instants)}>")


class _SpanContext:
    """``with tracer.span(...)``: begin on enter, end on exit."""

    __slots__ = ("_tracer", "_params", "span")

    def __init__(self, tracer, name, category, track, args):
        self._tracer = tracer
        self._params = (name, category, track, args)
        self.span = None

    def __enter__(self):
        name, category, track, args = self._params
        self.span = self._tracer.begin(name, category, track, **args)
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.span.end(outcome="error" if exc_type else "ok")
        return False
