"""Causal trace propagation: one context, carried across every hop.

PR-1's tracer sees each host in isolation: a ``go``/``spawn``/``meet``
chain shatters into disconnected per-host spans.  This module defines
the compact W3C-traceparent-style context that stitches them back
together: a ``trace_id`` naming the whole itinerary, a ``span_id``
naming the current causal node, the parent's span id, and a hop count.

Two carriers, one context:

* **In-simulation**, the context rides the :class:`~repro.firewall.
  message.Message` envelope (the ``trace`` field), exactly like ``hops``
  and ``priority`` already do.  Envelope metadata costs zero wire bytes,
  which is what keeps the disabled-telemetry run *byte-identical* to the
  enabled one (``TestNoOpOverhead``) — the clock advances by encoded
  briefcase size, so a folder that only exists when telemetry is on
  would change virtual time.
* **On the raw wire** (``Firewall.receive_wire``, i.e. bytes arriving
  from outside the simulated world), the context travels in the reserved
  system folder :data:`~repro.core.wellknown.TRACE_CONTEXT` as a single
  traceparent-style header line.  :func:`inject` writes it before
  encoding; :func:`extract` pops it back onto the envelope after
  decoding, so the folder never survives past the trust boundary.

Identifiers are allocated from a deterministic per-:class:`~repro.obs.
telemetry.Telemetry` counter (never wall-clock or entropy — DET002):
kernel event order is deterministic, so two identical runs mint
identical ids and every exported artifact diffs byte-for-byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import wellknown
from repro.core.errors import BriefcaseError

#: Version nibble of the header line (mirrors W3C traceparent "00-").
HEADER_VERSION = "00"


@dataclass(frozen=True)
class TraceContext:
    """One causal node of an itinerary: (trace, span, parent, hop)."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    hop: int = 0

    def to_header(self) -> str:
        """Render as a traceparent-style line:
        ``00-<trace_id>-<span_id>-<parent|->-<hop hex>``."""
        parent = self.parent_span_id or "-"
        return (f"{HEADER_VERSION}-{self.trace_id}-{self.span_id}-"
                f"{parent}-{self.hop:02x}")

    @classmethod
    def from_header(cls, header: str) -> Optional["TraceContext"]:
        """Parse :meth:`to_header` output; None on any malformation
        (a hostile wire peer must not be able to crash the firewall)."""
        parts = header.strip().split("-")
        if len(parts) == 6 and parts[3] == "" and parts[4] == "":
            # The "-" no-parent sentinel splits into two empty fields.
            parts = [parts[0], parts[1], parts[2], "-", parts[5]]
        if len(parts) != 5 or parts[0] != HEADER_VERSION:
            return None
        version, trace_id, span_id, parent, hop_hex = parts
        if not trace_id or not span_id:
            return None
        try:
            hop = int(hop_hex, 16)
        except ValueError:
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   parent_span_id=parent if parent != "-" else None,
                   hop=hop)


class TraceIdAllocator:
    """Deterministic id mint shared by one Telemetry instance."""

    def __init__(self) -> None:
        self._traces = itertools.count(1)
        self._spans = itertools.count(1)

    def new_trace_id(self) -> str:
        return f"t{next(self._traces):08x}"

    def new_span_id(self) -> str:
        return f"s{next(self._spans):08x}"

    def root(self) -> TraceContext:
        """A fresh root context (hop 0, no parent)."""
        return TraceContext(trace_id=self.new_trace_id(),
                            span_id=self.new_span_id())

    def child(self, parent: TraceContext,
              advance_hop: bool = False) -> TraceContext:
        """A child node of ``parent``: fresh span id, linked parentage.
        ``advance_hop`` marks a host boundary (go/spawn/launch)."""
        return TraceContext(
            trace_id=parent.trace_id,
            span_id=self.new_span_id(),
            parent_span_id=parent.span_id,
            hop=parent.hop + (1 if advance_hop else 0))

    def reset(self) -> None:
        self._traces = itertools.count(1)
        self._spans = itertools.count(1)


# -- briefcase (raw wire) carrier ------------------------------------------


def inject(briefcase, context: Optional[TraceContext]) -> None:
    """Write ``context`` into the reserved system folder (pre-encode)."""
    if context is None:
        return
    briefcase.drop(wellknown.TRACE_CONTEXT)
    briefcase.put(wellknown.TRACE_CONTEXT, context.to_header())


def extract(briefcase) -> Optional[TraceContext]:
    """Pop the trace folder off a just-decoded briefcase.

    Returns the parsed context (None when absent or malformed).  The
    folder is *always* stripped when present — resident briefcases never
    carry it, so telemetry state cannot leak into agent-visible wire
    bytes on the next hop.
    """
    if not briefcase.has(wellknown.TRACE_CONTEXT):
        return None
    try:
        header = briefcase.get_text(wellknown.TRACE_CONTEXT)
    except BriefcaseError:
        # Corrupted in flight into non-UTF8: no context.
        header = None
    briefcase.drop(wellknown.TRACE_CONTEXT)
    if header is None:
        return None
    return TraceContext.from_header(header)


# -- span annotation helpers -----------------------------------------------


def span_args(context: Optional[TraceContext]) -> Dict[str, object]:
    """Span args for a span that *is* the context's causal node."""
    if context is None:
        return {}
    args: Dict[str, object] = {"trace_id": context.trace_id,
                               "span_id": context.span_id,
                               "hop": context.hop}
    if context.parent_span_id is not None:
        args["parent_span_id"] = context.parent_span_id
    return args


def link_args(context: Optional[TraceContext]) -> Dict[str, object]:
    """Span args for an observation *about* the context's node (queue
    waits, retries, rejections): child-linked, no identity of its own."""
    if context is None:
        return {}
    return {"trace_id": context.trace_id,
            "parent_span_id": context.span_id}
