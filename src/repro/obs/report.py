"""Itinerary reports: causal traces + SLO summaries as one document.

``repro report`` is the human-facing end of the propagation layer: it
groups the tracer's spans by ``trace_id`` into per-agent itineraries
(which host, when, with what outcome, parent-linked hop by hop), joins
the SLO histograms (hop latency, queue wait, launch time, admission
sizes) as p50/p95/p99 summaries, and renders the result two ways:

- **canonical JSON** (:func:`render_report_json`) — ``sort_keys`` +
  fixed rounding, a pure function of the run, so two identical runs
  diff byte-for-byte (CI asserts this);
- **self-contained HTML** (:func:`render_report_html`) — inline CSS,
  no external resources: a timeline of residencies and hops per trace
  plus the SLO table, openable from a CI artifact without a server.

The builder reads only a :class:`~repro.obs.telemetry.Telemetry`
object; composing it with a workload (the traced quickstart for the
CLI) happens in :mod:`repro.cli`.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from repro.obs.metrics import summarize_sample
from repro.obs.telemetry import Telemetry

SCHEMA = "repro.report/1"

#: Histogram families summarised in the SLO section (when present).
SLO_FAMILIES = (
    "agent.hop_seconds",
    "fw.queue_wait_seconds",
    "fw.admission_bytes",
    "vm.launch_seconds",
    "net.transfer_seconds",
)

#: Counter families totalled in the overview section (when present).
OVERVIEW_COUNTERS = (
    "agent.hops",
    "agent.migration_failures",
    "faults.injected",
    "fw.dead_letters",
    "fw.delivered",
    "fw.queue_rejected",
    "host.crashes",
    "net.messages",
    "transport.retries",
)

#: Span names that constitute an itinerary (residencies and hops).
_RESIDENCY_PREFIX = "run:"
_HOP_NAMES = ("go", "spawn")


def _r(value: Optional[float]) -> Optional[float]:
    """Fixed rounding so float repr noise never breaks byte-diffs."""
    return None if value is None else round(value, 9)


def _span_row(span) -> dict:
    row = {
        "name": span.name,
        "track": span.track,
        "start": _r(span.start),
        "end": _r(span.end_time),
        "duration": _r(span.duration),
        "outcome": span.args.get("outcome"),
        "span_id": span.args.get("span_id"),
        "parent_span_id": span.args.get("parent_span_id"),
        "hop": span.args.get("hop"),
    }
    if span.name.startswith(_RESIDENCY_PREFIX):
        row["kind"] = "residency"
        row["agent"] = span.args.get("agent")
        row["host"] = span.track.split(":", 1)[-1]
    else:
        row["kind"] = "hop"
        row["agent"] = span.args.get("agent")
        row["src"] = span.args.get("src")
        row["dst_host"] = span.args.get("dst_host")
    return row


def build_report(telemetry: Telemetry, meta: Optional[dict] = None) -> dict:
    """The deterministic report document for one finished run."""
    traces: Dict[str, List[dict]] = {}
    for span in telemetry.tracer._sorted_spans():
        trace_id = span.args.get("trace_id")
        if trace_id is None:
            continue
        if not (span.name.startswith(_RESIDENCY_PREFIX)
                or span.name in _HOP_NAMES):
            continue
        traces.setdefault(trace_id, []).append(_span_row(span))

    trace_docs = []
    for trace_id in sorted(traces):
        rows = traces[trace_id]
        residencies = [r for r in rows if r["kind"] == "residency"]
        hosts = sorted({r["host"] for r in residencies})
        agents = sorted({r["agent"] for r in rows if r.get("agent")})
        trace_docs.append({
            "trace_id": trace_id,
            "agents": agents,
            "hosts": hosts,
            "n_hops": sum(1 for r in rows
                          if r["kind"] == "hop" and r["outcome"] == "ok"),
            "itinerary": rows,
        })

    slo: Dict[str, list] = {}
    for family_name in SLO_FAMILIES:
        family = telemetry.metrics.get(family_name)
        if family is None:
            continue
        entries = []
        for sample in family.samples():
            summary = summarize_sample(sample["value"])
            entries.append({
                "labels": sample["labels"],
                "count": summary["count"],
                "sum": _r(summary["sum"]),
                "min": _r(summary["min"]),
                "max": _r(summary["max"]),
                "p50": _r(summary["p50"]),
                "p95": _r(summary["p95"]),
                "p99": _r(summary["p99"]),
            })
        if entries:
            slo[family_name] = entries

    overview: Dict[str, float] = {}
    for counter_name in OVERVIEW_COUNTERS:
        family = telemetry.metrics.get(counter_name)
        if family is None:
            continue
        overview[counter_name] = sum(
            sample["value"] for sample in family.samples())

    document = {
        "schema": SCHEMA,
        "meta": dict(sorted((meta or {}).items())),
        "traces": trace_docs,
        "slo": slo,
        "overview": overview,
        "flight_recorder": {
            "hosts": telemetry.flight.hosts(),
            "dumps": list(telemetry.flight.dumps),
        },
    }
    return document


def render_report_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, indent=2)


# -- self-contained HTML ----------------------------------------------------

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2em; background: #fafafa; color: #222; }
h1, h2 { font-weight: 600; }
.trace { border: 1px solid #ccc; background: #fff; border-radius: 6px;
         padding: 1em; margin-bottom: 1.5em; }
.lane { position: relative; height: 22px; margin: 3px 0; }
.lane .label { position: absolute; left: 0; width: 14em; overflow: hidden;
               text-overflow: ellipsis; white-space: nowrap;
               font-size: 12px; line-height: 22px; }
.lane .rail { position: absolute; left: 15em; right: 0; top: 0;
              bottom: 0; background: #f0f0f0; border-radius: 3px; }
.bar { position: absolute; top: 3px; height: 16px; border-radius: 3px;
       min-width: 2px; }
.bar.residency { background: #4a90d9; }
.bar.hop { background: #e0a030; }
.bar.failed { background: #d05050; }
table { border-collapse: collapse; margin: 1em 0; background: #fff; }
th, td { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px;
         text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
.meta { color: #666; font-size: 12px; }
"""


def _timeline_html(trace: dict) -> List[str]:
    rows = trace["itinerary"]
    starts = [r["start"] for r in rows if r["start"] is not None]
    ends = [r["end"] for r in rows if r["end"] is not None]
    if not starts or not ends:
        return []
    t0, t1 = min(starts), max(ends)
    width = max(t1 - t0, 1e-9)
    out = []
    for row in rows:
        if row["start"] is None:
            continue
        end = row["end"] if row["end"] is not None else t1
        left = 100.0 * (row["start"] - t0) / width
        bar_w = max(100.0 * (end - row["start"]) / width, 0.3)
        if row["kind"] == "residency":
            label = f"run @ {row['host']}"
            css = "residency"
        else:
            label = f"{row['name']} → {row.get('dst_host') or '?'}"
            css = "hop"
        if row["outcome"] not in ("ok", "done", "moved", None):
            css = "failed"
        title = (f"{row['name']} [{_fmt(row['start'])}s – {_fmt(end)}s] "
                 f"outcome={row['outcome']}")
        out.append(
            f'<div class="lane"><span class="label">'
            f'{html.escape(label)}</span><span class="rail">'
            f'<span class="bar {css}" title="{html.escape(title)}" '
            f'style="left:{left:.3f}%;width:{bar_w:.3f}%"></span>'
            f'</span></div>')
    return out


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report_html(document: dict) -> str:
    parts = [
        "<!DOCTYPE html>", "<html><head><meta charset='utf-8'>",
        "<title>repro itinerary report</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Itinerary report</h1>",
        f"<p class='meta'>schema {html.escape(document['schema'])}"
        f" · {len(document['traces'])} trace(s)</p>",
    ]
    for trace in document["traces"]:
        parts.append("<div class='trace'>")
        parts.append(
            f"<h2>trace {html.escape(trace['trace_id'])}</h2>"
            f"<p class='meta'>agents: "
            f"{html.escape(', '.join(trace['agents']) or '-')} · hosts: "
            f"{html.escape(', '.join(trace['hosts']) or '-')} · "
            f"{trace['n_hops']} hop(s)</p>")
        parts.extend(_timeline_html(trace))
        parts.append("</div>")
    if document["slo"]:
        parts.append("<h2>SLO summaries</h2>")
        parts.append("<table><tr><th class='l'>family</th>"
                     "<th class='l'>labels</th><th>count</th><th>p50</th>"
                     "<th>p95</th><th>p99</th><th>max</th></tr>")
        for family in sorted(document["slo"]):
            for entry in document["slo"][family]:
                labels = ", ".join(f"{k}={v}" for k, v
                                   in sorted(entry["labels"].items()))
                parts.append(
                    f"<tr><td class='l'>{html.escape(family)}</td>"
                    f"<td class='l'>{html.escape(labels)}</td>"
                    f"<td>{entry['count']}</td>"
                    f"<td>{_fmt(entry['p50'])}</td>"
                    f"<td>{_fmt(entry['p95'])}</td>"
                    f"<td>{_fmt(entry['p99'])}</td>"
                    f"<td>{_fmt(entry['max'])}</td></tr>")
        parts.append("</table>")
    if document["overview"]:
        parts.append("<h2>Overview counters</h2><table>")
        parts.append("<tr><th class='l'>counter</th><th>total</th></tr>")
        for name in sorted(document["overview"]):
            parts.append(f"<tr><td class='l'>{html.escape(name)}</td>"
                         f"<td>{_fmt(document['overview'][name])}</td>"
                         f"</tr>")
        parts.append("</table>")
    dumps = document["flight_recorder"]["dumps"]
    if dumps:
        parts.append(f"<h2>Flight-recorder dumps ({len(dumps)})</h2>")
        for dump in dumps:
            parts.append(
                f"<p class='meta'>{html.escape(dump['host'])} at "
                f"t={_fmt(dump['at'])}s — {html.escape(dump['reason'])}, "
                f"{len(dump['events'])} event(s)</p>")
    parts.append("<script type='application/json' id='report-data'>")
    parts.append(render_report_json(document))
    parts.append("</script></body></html>")
    return "\n".join(parts) + "\n"
