"""A traced reference scenario: the quickstart itinerary with telemetry.

This is the Figure-4 "hello world" itinerant agent from
``examples/quickstart.py``, run on a three-host LAN with the system
telemetry enabled — the scenario behind ``repro trace``.  It exists so
the trace exporters always have a known-good workload whose spans can be
checked: each ``go`` hop on the agent track must contain the
``net.transfer`` span that carried the briefcase, each ``vm.launch``
must sit inside the hop that triggered it, and the ``run:hello`` spans
on the host tracks must tile the agent's lifetime.

Deliberately *not* imported from :mod:`repro.obs`'s ``__init__``: this
module pulls in the system layer, which itself imports the obs package.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.telemetry import Telemetry

#: The quickstart agent: greet, hop to the next HOSTS entry, report home.
HELLO_AGENT = '''
def hello_agent(ctx, bc):
    bc.append("GREETINGS", "Hello world from " + ctx.host_name)
    nxt = bc.folder("HOSTS").pop_first()
    if nxt is None:
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
        return "done"
    try:
        yield from ctx.go(nxt.as_text())
    except Exception:
        bc.append("GREETINGS", "Unable to reach " + nxt.as_text())
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
'''

DEMO_HOSTS = ("cl1.cs.uit.no", "cl2.cs.uit.no", "cl3.cs.uit.no")


def run_traced_quickstart(telemetry: Optional[Telemetry] = None,
                          hosts=DEMO_HOSTS):
    """Run the hello itinerary under telemetry; returns the cluster.

    The returned cluster's ``telemetry`` holds the complete trace:
    ``run:hello`` spans on each ``host:*`` track, ``go`` hops on
    ``agent:hello``, launches on ``vm:*``, transfers on ``net:*``.
    """
    from repro.core.briefcase import Briefcase
    from repro.core import wellknown
    from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
    from repro.system.cluster import TaxCluster
    from repro.vm import loader

    telemetry = telemetry or Telemetry(enabled=True)
    cluster = TaxCluster(telemetry=telemetry)
    hosts = list(hosts)
    for host in hosts:
        cluster.add_node(host)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            cluster.network.link(a, b, latency=LATENCY_LAN,
                                 bandwidth=BANDWIDTH_100MBIT)

    payload = loader.compile_source(
        loader.pack_source(HELLO_AGENT, "hello_agent"))
    briefcase = Briefcase()
    loader.install_payload(briefcase, payload, agent_name="hello")
    briefcase.folder("HOSTS").push_all(
        [f"tacoma://{host}/vm_python" for host in hosts[1:]])

    driver = cluster.node(hosts[0]).driver()
    briefcase.put("HOME", str(driver.uri))

    def scenario():
        reply = yield from driver.meet(
            cluster.vm_uri(hosts[0]), briefcase, timeout=60)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise RuntimeError(reply.get_text(wellknown.ERROR))
        final = yield from driver.recv(timeout=600)
        return final.briefcase

    result = cluster.run(scenario())
    return cluster, result
