"""Telemetry: the one observability object a deployment owns.

The :class:`Telemetry` facade bundles the metrics registry and the span
tracer behind a single enabled/disabled switch.  The kernel owns one
(disabled by default, so plain simulations pay a boolean check and
nothing else); everything holding a kernel reference —  networks,
firewalls, VMs, agent contexts — reaches it as ``kernel.telemetry``.

The clock is bound late (:meth:`bind_clock`) because the telemetry
object is constructed before the kernel whose virtual clock it reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.propagation import TraceContext, TraceIdAllocator
from repro.obs.tracing import Tracer


class Telemetry:
    """Metrics registry + span tracer + flight recorder behind one
    switch, plus the deterministic trace-id mint."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = False,
                 max_spans: Optional[int] = None):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        if max_spans is None:
            self.tracer = Tracer(clock, enabled=enabled)
        else:
            self.tracer = Tracer(clock, enabled=enabled,
                                 max_spans=max_spans)
        self.flight = FlightRecorder(enabled=enabled, clock=clock)
        self.ids = TraceIdAllocator()

    # -- switching -----------------------------------------------------------

    def enable(self) -> "Telemetry":
        self.enabled = True
        self.metrics.enabled = True
        self.tracer.enabled = True
        self.flight.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        self.metrics.enabled = False
        self.tracer.enabled = False
        self.flight.enabled = False
        return self

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a virtual clock (done by the kernel)."""
        self.tracer.clock = clock
        self.flight.clock = clock

    # -- causal trace contexts ----------------------------------------------

    def new_trace(self) -> Optional[TraceContext]:
        """Root a fresh itinerary trace (None when disabled — callers
        thread the None through, keeping the no-op path allocation-free).
        """
        if not self.enabled:
            return None
        return self.ids.root()

    def child_context(self, parent: Optional[TraceContext],
                      advance_hop: bool = False
                      ) -> Optional[TraceContext]:
        """A child causal node of ``parent`` (root when parent is None).
        ``advance_hop`` marks a host boundary (go/spawn/launch)."""
        if not self.enabled:
            return None
        if parent is None:
            return self.ids.root()
        return self.ids.child(parent, advance_hop=advance_hop)

    # -- cost-ledger flushing ------------------------------------------------

    def flush_ledger(self, ledger, track: str,
                     start: Optional[float] = None, **labels) -> float:
        """Turn a synchronous :class:`~repro.sim.ledger.CostLedger` into
        metrics and back-to-back cost spans.

        Synchronous programs (the Webbot) account their virtual costs
        into a ledger and sleep once for the total; without this flush
        those seconds vanish when the ledger is discarded.  Each category
        becomes a ``cost.seconds``/``cost.bytes`` series and one span on
        ``track``, laid end-to-end from ``start`` (default: now) — the
        shape the sleep actually represents.

        Returns the ledger's total seconds (what the caller must sleep).
        ``ledger`` is duck-typed: anything with ``seconds_by_category``
        and ``bytes_by_category`` dicts works.
        """
        total = sum(ledger.seconds_by_category.values())
        if not self.enabled:
            return total
        cursor = self.tracer.clock() if start is None else start
        for category in sorted(ledger.seconds_by_category):
            seconds = ledger.seconds_by_category[category]
            self.metrics.inc("cost.seconds", seconds,
                             category=category, **labels)
            self.tracer.record(f"cost:{category}", cursor, cursor + seconds,
                               category="cost", track=track,
                               seconds=seconds, **labels)
            cursor += seconds
        for category in sorted(ledger.bytes_by_category):
            self.metrics.inc("cost.bytes",
                             ledger.bytes_by_category[category],
                             category=category, **labels)
        return total

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Machine-readable state: metrics plus tracer tallies."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "spans": len(self.tracer.spans),
            "open_spans": self.tracer.open_count,
            "instants": len(self.tracer.instants),
            "dropped_spans": self.tracer.dropped,
        }

    def agent_stats(self, agent_name: str) -> Dict[str, object]:
        """The per-agent counters the admin ``stat`` op reports."""
        value = self.metrics.value
        return {
            "enabled": self.enabled,
            "messages_in": value("agent.messages_in", 0, agent=agent_name),
            "messages_out": value("agent.messages_out", 0,
                                  agent=agent_name),
            "bytes_out": value("agent.bytes_out", 0, agent=agent_name),
            "hops": value("agent.hops", 0, agent=agent_name),
            "cost_seconds": sum(
                s["value"] for s in self.metrics.collect(
                    "cost.seconds", agent=agent_name)),
        }

    def reset(self) -> None:
        """The per-run reset: wipe metrics series, spans, flight-recorder
        rings and the trace-id mint while keeping every registered
        family (and the enabled/disabled switch) intact.

        Scenario plugins that reuse a telemetry hub across back-to-back
        in-process runs (the suite matrix runner) must call this between
        cells — otherwise cumulative state (peak watermarks, counter
        totals, recorder dumps) from one cell corrupts the next cell's
        document.  Constructing a fresh :class:`Telemetry` per run is
        equivalent and is what the built-in scenario drivers do.
        """
        self.metrics.reset()
        self.tracer.reset()
        self.flight.reset()
        self.ids.reset()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<Telemetry {state} "
                f"spans={len(self.tracer.spans)}>")


def standalone_tracer(clock=None, enabled: bool = True) -> Tracer:
    """A facade-sanctioned span tracer for tools that run *outside* a
    kernel (the monitor log collecting reports in test harnesses).

    Everything simulation-attached must go through the kernel's
    :class:`Telemetry` hub so spans reach exports and honour
    ``enable()``/``disable()`` (OBS001); a standalone tool has no hub,
    and this factory is the one sanctioned way for it to own a private
    timeline instead of constructing :class:`Tracer` directly.
    """
    return Tracer(clock, enabled=enabled)
