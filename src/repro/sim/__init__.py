"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed (Unix workstations on a
100 Mbit LAN) with a deterministic virtual-time simulation:

- :mod:`repro.sim.eventloop` — the kernel (events, timeouts, processes).
- :mod:`repro.sim.network` — latency/bandwidth links with traffic accounting.
- :mod:`repro.sim.host` — hosts with architecture tags and CPU factors.
- :mod:`repro.sim.rng` — seeded, forkable random streams.
"""

from repro.sim.errors import (
    DeadKernel,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopProcess,
)
from repro.sim.eventloop import AllOf, AnyOf, Event, Kernel, Process, Timeout
from repro.sim.host import DEFAULT_ARCH, HostRegistry, SimHost
from repro.sim.network import (
    BANDWIDTH_1MBIT,
    BANDWIDTH_10MBIT,
    BANDWIDTH_100MBIT,
    LATENCY_LAN,
    LATENCY_METRO,
    LATENCY_WAN,
    Link,
    LinkDownError,
    LinkStats,
    Network,
    NetworkError,
    NoRouteError,
)
from repro.sim.rng import RandomStream, stream_from

__all__ = [
    "AllOf", "AnyOf", "Event", "Kernel", "Process", "Timeout",
    "DeadKernel", "EventAlreadyTriggered", "Interrupt", "SimulationError",
    "StopProcess",
    "DEFAULT_ARCH", "HostRegistry", "SimHost",
    "BANDWIDTH_1MBIT", "BANDWIDTH_10MBIT", "BANDWIDTH_100MBIT",
    "LATENCY_LAN", "LATENCY_METRO", "LATENCY_WAN",
    "Link", "LinkDownError", "LinkStats", "Network", "NetworkError",
    "NoRouteError",
    "RandomStream", "stream_from",
]
