"""Simulated hosts: a name, an architecture tag, and a CPU speed factor.

Architecture tags drive the paper's `ag_exec` behaviour of selecting the
binary matching the local machine from a list of per-architecture payloads
(paper section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.eventloop import Kernel
from repro.sim.network import Network

#: Default reference architecture tag.
DEFAULT_ARCH = "x86-unix"


@dataclass
class CpuStats:
    """Accumulated CPU accounting for a host."""

    busy_seconds: float = 0.0
    operations: int = 0

    def record(self, seconds: float) -> None:
        self.busy_seconds += seconds
        self.operations += 1


class SimHost:
    """A machine on the simulated network.

    ``cpu_factor`` scales work: a host with ``cpu_factor=2.0`` performs a
    reference workload in half the reference time.  This lets experiments
    model a beefy server vs a thin client.
    """

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 arch: str = DEFAULT_ARCH, cpu_factor: float = 1.0):
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        self.kernel = kernel
        self.network = network
        self.name = name
        self.arch = arch
        self.cpu_factor = cpu_factor
        self.cpu_stats = CpuStats()
        #: Crash state (mirrored into the network's host-up map, which
        #: is what transfers consult).
        self.up = True
        network.add_host(name)

    def set_up(self, up: bool) -> None:
        """Crash or revive this host, keeping the network map in sync."""
        self.up = up
        self.network.set_host_up(self.name, up)

    def cpu_seconds(self, reference_seconds: float) -> float:
        """Wall time this host needs for a reference-time workload."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be non-negative")
        return reference_seconds / self.cpu_factor

    def _record_cpu(self, seconds: float) -> None:
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("host.cpu_seconds", seconds,
                                  host=self.name)

    def compute(self, reference_seconds: float):
        """A process step spending CPU time: ``yield from host.compute(s)``."""
        seconds = self.cpu_seconds(reference_seconds)
        self.cpu_stats.record(seconds)
        self._record_cpu(seconds)
        yield self.kernel.timeout(seconds)
        return seconds

    def charge_compute(self, reference_seconds: float) -> float:
        """Record CPU time and return its duration without waiting.

        The synchronous counterpart of :meth:`compute`, for code that
        accumulates cost into a ledger (see `repro.bench.metrics`).
        """
        seconds = self.cpu_seconds(reference_seconds)
        self.cpu_stats.record(seconds)
        self._record_cpu(seconds)
        return seconds

    def __repr__(self) -> str:
        return (f"<SimHost {self.name!r} arch={self.arch} "
                f"cpu_factor={self.cpu_factor:g}>")


class HostRegistry:
    """Name → :class:`SimHost` lookup for a simulation."""

    def __init__(self):
        self._hosts = {}

    def add(self, host: SimHost) -> SimHost:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        return host

    def get(self, name: str) -> SimHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def find(self, name: str) -> Optional[SimHost]:
        return self._hosts.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def __iter__(self):
        return iter(self._hosts.values())

    def __len__(self) -> int:
        return len(self._hosts)
