"""Cost ledgers: virtual-time accounting for synchronous code.

Agent code in the simulator is asynchronous (generator processes yielding
kernel events), but the paper's whole point is to run *unmodified,
synchronous* programs — the Webbot — inside agents.  Such a program cannot
yield.  Instead, its environment (HTTP client, exec service) records every
cost into a :class:`CostLedger`; when the program returns, the hosting
agent sleeps once for the accumulated total.

This is exact whenever the synchronous program is the only activity whose
timing matters while it runs, which holds for every experiment in the
paper (a single crawl at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostLedger:
    """Accumulated virtual-time costs, broken down by category."""

    seconds_by_category: Dict[str, float] = field(default_factory=dict)
    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    events: int = 0

    def add(self, category: str, seconds: float, nbytes: int = 0) -> None:
        if seconds < 0 or nbytes < 0:
            raise ValueError("costs must be non-negative")
        self.seconds_by_category[category] = \
            self.seconds_by_category.get(category, 0.0) + seconds
        if nbytes:
            self.bytes_by_category[category] = \
                self.bytes_by_category.get(category, 0) + nbytes
        self.events += 1

    def add_network(self, seconds: float, nbytes: int) -> None:
        self.add("network", seconds, nbytes)

    def add_cpu(self, seconds: float) -> None:
        self.add("cpu", seconds)

    def add_server(self, seconds: float) -> None:
        self.add("server", seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_category.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def seconds(self, category: str) -> float:
        return self.seconds_by_category.get(category, 0.0)

    def bytes(self, category: str) -> int:
        return self.bytes_by_category.get(category, 0)

    def merge(self, other: "CostLedger") -> None:
        for category, seconds in other.seconds_by_category.items():
            self.seconds_by_category[category] = \
                self.seconds_by_category.get(category, 0.0) + seconds
        for category, nbytes in other.bytes_by_category.items():
            self.bytes_by_category[category] = \
                self.bytes_by_category.get(category, 0) + nbytes
        self.events += other.events

    def snapshot(self) -> "CostLedger":
        return CostLedger(dict(self.seconds_by_category),
                          dict(self.bytes_by_category), self.events)

    def reset(self) -> None:
        self.seconds_by_category.clear()
        self.bytes_by_category.clear()
        self.events = 0

    def __repr__(self) -> str:
        parts = ", ".join(f"{cat}={sec:.4f}s"
                          for cat, sec in sorted(self.seconds_by_category.items()))
        return f"<CostLedger {self.total_seconds:.4f}s total ({parts})>"
