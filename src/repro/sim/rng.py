"""Seeded random-number streams for reproducible simulations.

Every stochastic component takes a :class:`RandomStream` (or a seed) so a
whole experiment is reproducible from a single integer.  Streams can be
forked: ``stream.fork("site")`` derives an independent child stream whose
sequence does not depend on how much of the parent was consumed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence


class RandomStream:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = 0, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomStream":
        """An independent child stream, deterministic in (seed, path)."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    # -- draws ----------------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        return scale * self._random.paretovariate(alpha)

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        k = min(k, len(seq))
        return self._random.sample(list(seq), k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def bounded_lognormal(self, mu: float, sigma: float,
                          low: float, high: float) -> float:
        """A lognormal draw clamped to [low, high].

        Used for page-size distributions, where a heavy tail is realistic
        but single pathological draws would distort small experiments.
        """
        return max(low, min(high, self.lognormal(mu, sigma)))

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """An index in [0, n) drawn from a Zipf-like distribution."""
        if n <= 0:
            raise ValueError("zipf_index requires n >= 1")
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        point = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if point <= acc:
                return i
        return n - 1

    def __repr__(self) -> str:
        return f"<RandomStream seed={self.seed} name={self.name!r}>"


def derive_seed(seed: int, name: str) -> int:
    """Derive a child integer seed from ``(seed, name)``.

    This is the one derivation every layer shares: a suite seed derives
    per-cell seeds (``derive_seed(suite_seed, "cell/" + cell_id)``), and
    a cell seed derives its named :class:`RandomStream`\\ s.  Because the
    child depends only on the parent seed and the *name* — never on
    draw order or on how many siblings were derived first — identical
    cells are byte-identical regardless of matrix position.
    """
    return RandomStream._derive(seed, name)


def retry_stream(seed: int, role: str) -> RandomStream:
    """The named retry-jitter stream convention scenario drivers share.

    Every scenario driver (chaos, partition, crashtest, overload) must
    derive its retry streams through this helper — one seed, one
    ``retry/<role>`` namespace — instead of ad-hoc seed arithmetic
    (``seed + index``) or hand-rolled stream names, so two drivers
    running the same cell agree on every draw.
    """
    return RandomStream(seed, name=f"retry/{role}")


def stream_from(seed_or_stream: Optional[object], name: str) -> RandomStream:
    """Coerce an int seed, a stream, or None into a :class:`RandomStream`."""
    if seed_or_stream is None:
        return RandomStream(0, name)
    if isinstance(seed_or_stream, RandomStream):
        return seed_or_stream.fork(name)
    if isinstance(seed_or_stream, int):
        return RandomStream(seed_or_stream, name)
    raise TypeError(f"expected int seed or RandomStream, got {seed_or_stream!r}")
