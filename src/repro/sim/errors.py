"""Exception types for the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.eventloop.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(BaseException):
    """Raised inside a process to terminate it immediately with a value.

    Derives from BaseException so that agent code catching a broad
    ``except Exception`` (the Figure-4 "Unable to reach" pattern) cannot
    accidentally swallow the successful-``go`` termination signal.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class DeadKernel(SimulationError):
    """An operation was attempted on a kernel that has finished running."""


class EventAlreadyTriggered(SimulationError):
    """An event was triggered (succeed/fail) more than once."""
