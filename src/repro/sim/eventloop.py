"""A small discrete-event simulation kernel.

The kernel is a classic event-heap design in the style of SimPy: virtual
time only advances when the event at the head of the heap is processed, and
concurrency is expressed with generator-based *processes*.

A process is an ordinary Python generator that yields :class:`Event`
instances.  When the yielded event triggers, the kernel resumes the
generator, sending the event's value in (or throwing its exception).  A
:class:`Process` is itself an event that triggers when the generator
returns, so processes can wait for each other by yielding the process
object.

Example::

    kernel = Kernel()

    def worker(kernel):
        yield kernel.timeout(5.0)
        return "done"

    proc = kernel.spawn(worker(kernel))
    kernel.run()
    assert kernel.now == 5.0 and proc.value == "done"

The kernel is deliberately single-threaded and deterministic: events
scheduled for the same instant fire in scheduling order.

Hot paths (see ``docs/performance.md``): event classes use
``__slots__``; :meth:`Kernel.run` / :meth:`Kernel.run_until` dispatch
events through :meth:`Kernel._drain_fast` whenever telemetry is
disabled — small heaps get a plain inlined pop loop, large heaps get a
*sorted-batch drain* (sort the pending entries once, walk them
linearly, merge in a side-heap of newly posted events) — falling back
to :meth:`Kernel.step`, which pays the metrics cost, the moment
telemetry is enabled.  Same-instant event bursts can be scheduled in
one amortised call with :meth:`Kernel.succeed_many`.  The fast drain
can be turned off with :func:`set_fast_dispatch` (the perf harness
measures both regimes); semantics are identical either way.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.obs.telemetry import Telemetry
from repro.sim.errors import (
    DeadKernel,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopProcess,
)

#: Sentinel for "event has not produced a value yet".
_PENDING = object()

#: Master switch for the inlined dispatch loop in Kernel.run/run_until.
#: Flip with :func:`set_fast_dispatch`; the perf harness runs its
#: baseline legs with this off.
_fast_dispatch = True


def set_fast_dispatch(enabled: bool) -> bool:
    """Enable/disable the inlined dispatch loop; returns the old state.

    With fast dispatch off, :meth:`Kernel.run` and
    :meth:`Kernel.run_until` process every event through
    :meth:`Kernel.step`, exactly as the original implementation did.
    Virtual-time behaviour is identical either way.
    """
    global _fast_dispatch
    previous = _fast_dispatch
    _fast_dispatch = bool(enabled)
    return previous


def fast_dispatch_enabled() -> bool:
    return _fast_dispatch


#: Ambient runtime sanitizer (see :mod:`repro.analysis.sanitizer`).
#: When set, every kernel constructed afterwards carries it as
#: ``kernel.sanitizer`` and the agent-context taps feed it briefcase
#: observations.  Kept here (not in repro.analysis) so the simulation
#: layer never imports the analysis layer.
_ambient_sanitizer: Optional[Any] = None


def set_ambient_sanitizer(sanitizer: Optional[Any]) -> Optional[Any]:
    """Install the ambient sanitizer; returns the previous one."""
    global _ambient_sanitizer
    previous = _ambient_sanitizer
    _ambient_sanitizer = sanitizer
    return previous


def ambient_sanitizer() -> Optional[Any]:
    return _ambient_sanitizer


class Event:
    """A happening at a point in simulated time.

    Events start *pending*.  They are *triggered* exactly once, either with
    :meth:`succeed` (carrying a value) or :meth:`fail` (carrying an
    exception).  Callbacks attached before triggering run when the kernel
    processes the event; callbacks attached afterwards run immediately.
    """

    __slots__ = ("kernel", "callbacks", "_value", "_exception")

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled onto the event heap."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._value = value
        self.kernel._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.kernel._post(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        """Hook run by the kernel when the event's turn comes.

        The callback loop is inlined here (rather than delegated to
        :meth:`_run_callbacks`) to save one method call per dispatched
        event on the kernel hot path.
        """
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.kernel.now:g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Unlike manually-triggered events, a timeout is scheduled at
    construction but does not count as *triggered* until its instant
    arrives (its value is assigned when it fires).
    """

    __slots__ = ("delay", "_deferred_value")

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._deferred_value = value
        kernel._post(self, delay=delay)

    def _fire(self) -> None:
        if self._value is _PENDING and self._exception is None:
            self._value = self._deferred_value
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is a dict mapping each already-triggered event to its value
    (in the common case, a single entry).  A failing child fails the
    AnyOf with the same exception.
    """

    __slots__ = ("events",)

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        done = {e: e._value for e in self.events
                if e.triggered and e.ok}
        self.succeed(done)


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered.

    The value is a dict mapping each event to its value, in the original
    order.  A failing child fails the AllOf immediately.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})


class Process(Event):
    """A running generator, driven by the events it yields.

    The process object is itself an event: it triggers with the
    generator's return value when the generator finishes, or fails with
    the exception that escaped it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        super().__init__(kernel)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"spawn() requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current instant.
        bootstrap = Event(kernel)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a no-op.  The event the
        process was waiting on keeps its ``_resume`` callback (callbacks
        cannot be detached), but :meth:`_resume` ignores wake-ups from
        any event the process is no longer waiting on, so the stale
        event firing later cannot spuriously resume the generator.
        """
        if self.triggered:
            return
        wake = Event(self.kernel)
        wake.add_callback(lambda _e: self._throw(Interrupt(cause)))
        wake.succeed(None)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # Stale wake-up: the process was interrupted (or re-waited)
            # while this event was pending and has since moved on to a
            # different target.  Resuming here would send the wrong
            # value into the generator.
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - escaping process error
            self.fail(exc)
            return
        self._wait_for(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value)
            return
        except BaseException as escaped:  # noqa: BLE001
            self.fail(escaped)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.kernel is not self.kernel:
            self._throw(SimulationError(
                f"process {self.name!r} yielded event from another kernel"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Kernel:
    """The event loop: a heap of (time, sequence, event) triples."""

    def __init__(self, start_time: float = 0.0,
                 telemetry: Optional[Telemetry] = None):
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._sequence = 0
        self._running = False
        self._dead = False
        self.processed_events = 0
        #: The deployment's telemetry; disabled by default so plain
        #: simulations pay one boolean check per event and nothing else.
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry(enabled=False)
        self.telemetry.bind_clock(lambda: self._now)
        #: Runtime briefcase sanitizer, or None (the usual case); agent
        #: contexts check this once per tap.
        self.sanitizer: Optional[Any] = _ambient_sanitizer
        #: System-wide agent-conservation auditor (a
        #: :class:`~repro.durability.conservation.ConservationAuditor`),
        #: or None; firewalls check this at registration transitions.
        self.auditor: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        if self._dead:
            raise DeadKernel("cannot spawn on a finished kernel")
        return Process(self, generator, name=name)

    # -- scheduling ----------------------------------------------------------

    def _post(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def _post_many(self, events: List[Event], delay: float = 0.0) -> None:
        """Schedule a same-instant burst of events in one amortised call.

        Events fire in list order (consecutive sequence numbers).  For a
        burst at least as large as the existing heap, an extend +
        ``heapify`` (O(total)) replaces per-event pushes (O(k log n));
        ordering is unaffected because the heap's total order is the
        unique (time, sequence) pair, not its internal layout.
        """
        when = self._now + delay
        seq = self._sequence
        entries = [(when, seq + i, event) for i, event in enumerate(events)]
        self._sequence = seq + len(entries)
        heap = self._heap
        if len(entries) > 8 and len(entries) >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)

    def succeed_many(self, events: List[Event], value: Any = None) -> None:
        """Trigger a burst of pending events with one scheduling call.

        Equivalent to ``for e in events: e.succeed(value)`` (same firing
        order) but pays one :meth:`_post_many` instead of N heap pushes —
        the batched path for same-instant event bursts (queue flushes,
        fan-out wake-ups, benchmark setup).
        """
        for event in events:
            if event.triggered:
                raise EventAlreadyTriggered(f"{event!r} already triggered")
            event._value = value
        self._post_many(events)

    # -- execution -----------------------------------------------------------

    #: Heap size at which the fast drain switches from a plain pop loop
    #: to the sorted-batch drain (sorting tiny heaps costs more than it
    #: saves).
    _BATCH_MIN = 64

    def _drain_fast(self, stop_event: Optional[Event] = None) -> None:
        """Dispatch events until the heap drains, ``stop_event``
        triggers, telemetry turns on, or fast dispatch is disabled.

        Two regimes, chosen by heap size:

        - **small heap** (< ``_BATCH_MIN``): a plain pop-and-fire loop —
          :func:`heapq.heappop` on a short heap is already cheap;
        - **large heap**: the *sorted-batch drain*.  The pending heap is
          detached and sorted once (Timsort in C, exploiting the heap
          array's partial order), then walked linearly; events posted
          *during* the drain go to a fresh side-heap that is merged by
          comparing its head against the next batch entry.  Because the
          schedule's total order is the unique ``(time, sequence)`` pair,
          the merge reproduces exactly the order N individual
          ``heappop`` calls would have produced — at a fraction of the
          comparisons.

        On any exit (including an escaping callback error) the leftover
        batch suffix and side-heap are merged back into ``self._heap``
        and the dispatch count is written back, so the kernel is always
        left consistent.
        """
        count = self.processed_events
        pop = heapq.heappop
        telemetry = self.telemetry
        batch_min = self._BATCH_MIN
        try:
            while True:
                batch = self._heap
                n = len(batch)
                if not n or not _fast_dispatch or telemetry.enabled:
                    return
                if stop_event is not None and (
                        stop_event._value is not _PENDING
                        or stop_event._exception is not None):
                    return
                if n < batch_min:
                    heap = batch
                    while heap:
                        when, _seq, event = pop(heap)
                        if when < self._now:
                            raise SimulationError(
                                "event scheduled in the past")
                        self._now = when
                        count += 1
                        event._fire()
                        if telemetry.enabled or not _fast_dispatch:
                            return
                        if stop_event is not None and (
                                stop_event._value is not _PENDING
                                or stop_event._exception is not None):
                            return
                        if len(heap) >= batch_min:
                            break  # grown enough to be worth batching
                    continue
                batch.sort()  # (time, seq) unique: total order, stable
                self._heap = heap = []
                i = 0
                try:
                    while i < n:
                        if heap and heap[0] < batch[i]:
                            when, _seq, event = pop(heap)
                        else:
                            when, _seq, event = batch[i]
                            i += 1
                        if when < self._now:
                            raise SimulationError(
                                "event scheduled in the past")
                        self._now = when
                        count += 1
                        event._fire()
                        if telemetry.enabled or not _fast_dispatch:
                            return
                        if stop_event is not None and (
                                stop_event._value is not _PENDING
                                or stop_event._exception is not None):
                            return
                finally:
                    if i < n:
                        # Bail-out mid-batch: merge the unfired suffix
                        # with whatever was posted during the drain.
                        del batch[:i]
                        batch.extend(heap)
                        heapq.heapify(batch)
                        self._heap = batch
                # Batch exhausted; self._heap holds only events posted
                # during the drain — loop around and re-batch those.
        finally:
            self.processed_events = count

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.processed_events += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc("kernel.events_dispatched")
            metrics.set_gauge("kernel.heap_depth", len(self._heap))
        event._fire()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the heap is empty, ``until`` is reached, or
        ``max_events`` events have been processed.  Returns the clock.

        When telemetry is disabled (the default) events are dispatched
        through :meth:`_drain_fast` — no per-event :meth:`step` call,
        sorted-batch draining for large heaps — with identical
        semantics; dispatch falls back to :meth:`step` whenever
        telemetry is (or becomes) enabled or :func:`set_fast_dispatch`
        turned the fast path off.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run)")
        self._running = True
        processed = 0
        telemetry = self.telemetry
        unconstrained = until is None and max_events is None
        try:
            while self._heap:
                if unconstrained and _fast_dispatch \
                        and not telemetry.enabled:
                    self._drain_fast()
                    continue  # re-evaluate regime (telemetry mid-flip)
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until(self, event: Event, until: Optional[float] = None) -> None:
        """Run only until ``event`` triggers (or the deadline/heap ends).

        Unlike :meth:`run`, this leaves later-scheduled events (stale
        timeouts, idle service loops) unprocessed, so the clock reflects
        when the awaited event actually happened.  Uses the same
        :meth:`_drain_fast` dispatch fast path as :meth:`run`.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run)")
        self._running = True
        telemetry = self.telemetry
        try:
            while self._heap and not event.triggered:
                if until is None and _fast_dispatch \
                        and not telemetry.enabled:
                    self._drain_fast(stop_event=event)
                    continue  # re-evaluate regime (telemetry mid-flip)
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn ``generator``, run until it finishes, return its result.

        Convenience for the very common "run one top-level scenario"
        pattern.  Raises the process's exception if it failed, and
        :class:`SimulationError` if the kernel drained before the process
        finished (deadlock).
        """
        proc = self.spawn(generator, name=name)
        self.run_until(proc, until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish "
                f"(deadlock or until={until!r} too small)")
        return proc.value
