"""Simulated network: hosts joined by latency/bandwidth links.

The cost model is the standard first-order one: sending ``n`` bytes over a
link costs ``latency + n / bandwidth`` seconds.  This is exactly the
trade-off the paper's experiment measures (remote crawling pays the
network cost per page; a mobile agent pays it once for the agent and once
for the condensed result), so it is sufficient to reproduce the shape of
the results.

Bandwidth is not shared between concurrent flows (documented limitation;
the paper's experiment has one active transfer at a time).

Links are directional pairs created symmetrically by :meth:`Network.link`.
Every host implicitly has a loopback link to itself with near-zero cost,
so "local" interactions are effectively free, as on a real host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.sim.eventloop import Kernel

#: Bytes per second for 100 Mbit/s Ethernet (the paper's LAN).
BANDWIDTH_100MBIT = 100_000_000 / 8
#: Bytes per second for 10 Mbit/s Ethernet.
BANDWIDTH_10MBIT = 10_000_000 / 8
#: Bytes per second for a 1 Mbit/s WAN path.
BANDWIDTH_1MBIT = 1_000_000 / 8

#: Typical one-way latencies in seconds.
LATENCY_LAN = 0.0005
LATENCY_METRO = 0.005
LATENCY_WAN = 0.050

LOOPBACK_BANDWIDTH = 10_000_000_000 / 8
LOOPBACK_LATENCY = 0.00001


class NetworkError(SimulationError):
    """Base class for network failures."""


class NoRouteError(NetworkError):
    """There is no link between the two hosts."""


class LinkDownError(NetworkError):
    """The link exists but is partitioned."""


@dataclass
class LinkStats:
    """Traffic counters for one direction of a link."""

    messages: int = 0
    payload_bytes: int = 0
    busy_seconds: float = 0.0

    def record(self, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.payload_bytes += nbytes
        self.busy_seconds += seconds


@dataclass
class Link:
    """One direction of a network path between two named hosts."""

    src: str
    dst: str
    latency: float
    bandwidth: float
    up: bool = True
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return self.latency + nbytes / self.bandwidth


class Network:
    """A set of named hosts and the links between them."""

    def __init__(self, kernel: Kernel,
                 default_latency: Optional[float] = None,
                 default_bandwidth: Optional[float] = None):
        self.kernel = kernel
        self._links: Dict[Tuple[str, str], Link] = {}
        self._hosts: set = set()
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str) -> None:
        self._hosts.add(name)

    @property
    def hosts(self) -> Iterable[str]:
        return sorted(self._hosts)

    def link(self, a: str, b: str, latency: float = LATENCY_LAN,
             bandwidth: float = BANDWIDTH_100MBIT) -> None:
        """Create (or replace) a symmetric link between hosts ``a`` and ``b``."""
        if a == b:
            raise ValueError("loopback links are implicit; do not create them")
        self.add_host(a)
        self.add_host(b)
        self._links[(a, b)] = Link(a, b, latency, bandwidth)
        self._links[(b, a)] = Link(b, a, latency, bandwidth)

    def link_between(self, src: str, dst: str) -> Link:
        """The link used for src→dst traffic (creating defaults/loopback)."""
        if src == dst:
            key = (src, src)
            if key not in self._links:
                self._links[key] = Link(src, src, LOOPBACK_LATENCY,
                                        LOOPBACK_BANDWIDTH)
            return self._links[key]
        try:
            return self._links[(src, dst)]
        except KeyError:
            if self.default_latency is not None and \
                    self.default_bandwidth is not None and \
                    src in self._hosts and dst in self._hosts:
                self.link(src, dst, self.default_latency,
                          self.default_bandwidth)
                return self._links[(src, dst)]
            raise NoRouteError(f"no link {src} -> {dst}") from None

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        """Partition or heal both directions of a link."""
        for key in ((a, b), (b, a)):
            if key in self._links:
                self._links[key].up = up
            else:
                raise NoRouteError(f"no link {key[0]} -> {key[1]}")

    # -- traffic --------------------------------------------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Cost in seconds of moving ``nbytes`` from src to dst (no effect)."""
        return self.link_between(src, dst).transfer_time(nbytes)

    def _record_traffic(self, link: Link, nbytes: int,
                        seconds: float) -> None:
        telemetry = self.kernel.telemetry
        if not telemetry.enabled:
            return
        metrics = telemetry.metrics
        metrics.inc("net.bytes_on_wire", nbytes, src=link.src, dst=link.dst)
        metrics.inc("net.messages", src=link.src, dst=link.dst)
        metrics.observe("net.transfer_seconds", seconds,
                        src=link.src, dst=link.dst)

    def transfer(self, src: str, dst: str, nbytes: int):
        """A process step that spends the transfer time and records stats.

        Usage inside a process: ``yield from net.transfer(a, b, n)``.
        Returns the elapsed seconds.
        """
        link = self.link_between(src, dst)
        if not link.up:
            raise LinkDownError(f"link {src} -> {dst} is partitioned")
        seconds = link.transfer_time(nbytes)
        link.stats.record(nbytes, seconds)
        self._record_traffic(link, nbytes, seconds)
        span = self.kernel.telemetry.tracer.begin(
            "net.transfer", category="net", track=f"net:{src}->{dst}",
            bytes=nbytes)
        yield self.kernel.timeout(seconds)
        span.end()
        return seconds

    def charge(self, src: str, dst: str, nbytes: int) -> float:
        """Record a transfer and return its duration *without* waiting.

        Used by synchronous code (e.g. the stationary robot's HTTP client)
        that accumulates cost into a ledger and sleeps once at the end.
        Raises if the link is partitioned.
        """
        link = self.link_between(src, dst)
        if not link.up:
            raise LinkDownError(f"link {src} -> {dst} is partitioned")
        seconds = link.transfer_time(nbytes)
        link.stats.record(nbytes, seconds)
        self._record_traffic(link, nbytes, seconds)
        return seconds

    # -- accounting -----------------------------------------------------------

    def stats_between(self, src: str, dst: str) -> LinkStats:
        return self.link_between(src, dst).stats

    def total_remote_bytes(self) -> int:
        """Total payload bytes that crossed any non-loopback link."""
        return sum(link.stats.payload_bytes
                   for (a, b), link in self._links.items() if a != b)

    def total_remote_messages(self) -> int:
        return sum(link.stats.messages
                   for (a, b), link in self._links.items() if a != b)

    def reset_stats(self) -> None:
        for link in self._links.values():
            link.stats = LinkStats()
