"""Simulated network: hosts joined by latency/bandwidth links.

The cost model is the standard first-order one: sending ``n`` bytes over a
link costs ``latency + n / bandwidth`` seconds.  This is exactly the
trade-off the paper's experiment measures (remote crawling pays the
network cost per page; a mobile agent pays it once for the agent and once
for the condensed result), so it is sufficient to reproduce the shape of
the results.

Bandwidth is not shared between concurrent flows (documented limitation;
the paper's experiment has one active transfer at a time).

Links are directional pairs created symmetrically by :meth:`Network.link`.
Every host implicitly has a loopback link to itself with near-zero cost,
so "local" interactions are effectively free, as on a real host.

**Message coalescing** (off by default; see
:meth:`Network.configure_coalescing`): when enabled, transfers that
start on the same directional link *at the same virtual instant* share
a single latency charge — the first pays ``latency + n/bandwidth``,
each subsequent same-instant transfer pays only its serialisation time
``n/bandwidth``.  N same-instant, same-destination messages therefore
cost one latency plus their summed bandwidth time, the classic batching
win for chatty agent protocols.  The rule is a pure function of the
virtual clock, so it is deterministic; with coalescing disabled
(default) every byte-for-byte report is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.errors import CircuitOpenError
from repro.core.limits import BreakerConfig, CircuitBreaker
from repro.sim.errors import SimulationError
from repro.sim.eventloop import Kernel

#: Bytes per second for 100 Mbit/s Ethernet (the paper's LAN).
BANDWIDTH_100MBIT = 100_000_000 / 8
#: Bytes per second for 10 Mbit/s Ethernet.
BANDWIDTH_10MBIT = 10_000_000 / 8
#: Bytes per second for a 1 Mbit/s WAN path.
BANDWIDTH_1MBIT = 1_000_000 / 8

#: Typical one-way latencies in seconds.
LATENCY_LAN = 0.0005
LATENCY_METRO = 0.005
LATENCY_WAN = 0.050

LOOPBACK_BANDWIDTH = 10_000_000_000 / 8
LOOPBACK_LATENCY = 0.00001


class NetworkError(SimulationError):
    """Base class for network failures."""

    #: Retryability marker read by :func:`repro.core.errors.is_transient`.
    transient = None


class NoRouteError(NetworkError):
    """There is no link between the two hosts."""

    transient = False


class LinkDownError(NetworkError):
    """The link exists but is partitioned."""

    transient = True


class HostDownError(NetworkError):
    """An endpoint host is crashed (transfers to/from it fail)."""

    transient = True


class TransferDroppedError(NetworkError):
    """The message was lost on the wire (injected fault)."""

    transient = True


class TransferCorruptedError(NetworkError):
    """The payload arrived garbled and failed its integrity check."""

    transient = True


@dataclass
class LinkStats:
    """Traffic counters for one direction of a link."""

    messages: int = 0
    payload_bytes: int = 0
    busy_seconds: float = 0.0

    def record(self, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.payload_bytes += nbytes
        self.busy_seconds += seconds


@dataclass
class Link:
    """One direction of a network path between two named hosts."""

    src: str
    dst: str
    latency: float
    bandwidth: float
    up: bool = True
    stats: LinkStats = field(default_factory=LinkStats)

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return self.latency + nbytes / self.bandwidth


class Network:
    """A set of named hosts and the links between them."""

    def __init__(self, kernel: Kernel,
                 default_latency: Optional[float] = None,
                 default_bandwidth: Optional[float] = None):
        self.kernel = kernel
        self._links: Dict[Tuple[str, str], Link] = {}
        self._hosts: set = set()
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        #: Hosts currently crashed (everything else is implicitly up).
        self._down_hosts: set = set()
        #: Optional fault injector (see :mod:`repro.sim.faults`): asked
        #: for a verdict on every non-loopback transfer.
        self.fault_injector = None
        #: Circuit-breaker configuration (None disables breakers).
        self.breaker_config: Optional[BreakerConfig] = None
        #: (src, dst) → breaker, created lazily per directional link.
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        #: Message coalescing (off by default; semantics-preserving when
        #: off — see :meth:`configure_coalescing`).
        self.coalescing_enabled = False
        #: (src, dst) → virtual instant of the last transfer start, used
        #: to detect same-instant bursts eligible for coalescing.
        self._coalesce_marks: Dict[Tuple[str, str], float] = {}
        #: Transfers that rode an already-paid latency window.
        self.coalesced_messages = 0

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str) -> None:
        self._hosts.add(name)

    @property
    def hosts(self) -> Iterable[str]:
        return sorted(self._hosts)

    def link(self, a: str, b: str, latency: float = LATENCY_LAN,
             bandwidth: float = BANDWIDTH_100MBIT) -> None:
        """Create (or replace) a symmetric link between hosts ``a`` and ``b``."""
        if a == b:
            raise ValueError("loopback links are implicit; do not create them")
        self.add_host(a)
        self.add_host(b)
        self._links[(a, b)] = Link(a, b, latency, bandwidth)
        self._links[(b, a)] = Link(b, a, latency, bandwidth)

    def link_between(self, src: str, dst: str) -> Link:
        """The link used for src→dst traffic (creating defaults/loopback)."""
        if src == dst:
            key = (src, src)
            if key not in self._links:
                self._links[key] = Link(src, src, LOOPBACK_LATENCY,
                                        LOOPBACK_BANDWIDTH)
            return self._links[key]
        try:
            return self._links[(src, dst)]
        except KeyError:
            if self.default_latency is not None and \
                    self.default_bandwidth is not None and \
                    src in self._hosts and dst in self._hosts:
                self.link(src, dst, self.default_latency,
                          self.default_bandwidth)
                return self._links[(src, dst)]
            raise NoRouteError(f"no link {src} -> {dst}") from None

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        """Partition or heal both directions of a link."""
        for key in ((a, b), (b, a)):
            if key in self._links:
                self._links[key].up = up
            else:
                raise NoRouteError(f"no link {key[0]} -> {key[1]}")

    def set_link_up_oneway(self, src: str, dst: str, up: bool) -> None:
        """Fail or heal only the src→dst direction of a link.

        The asymmetric-failure primitive: with dst→src up but src→dst
        down, dst's requests arrive and src's acks are lost — exactly
        the ambiguity the exactly-once landing handshake must survive.
        """
        link = self._links.get((src, dst))
        if link is None:
            raise NoRouteError(f"no link {src} -> {dst}")
        link.up = up

    def partition(self, groups) -> int:
        """Split the network: every directional link whose endpoints sit
        in *different* groups goes down.  Hosts absent from every group
        keep all their links (they are on "both sides").  Returns the
        number of link directions taken down.
        """
        membership: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for host in group:
                membership[host] = index
        downed = 0
        for (src, dst), link in self._links.items():
            if src == dst:
                continue
            side_a = membership.get(src)
            side_b = membership.get(dst)
            if side_a is not None and side_b is not None \
                    and side_a != side_b:
                if link.up:
                    downed += 1
                link.up = False
        return downed

    def heal(self) -> int:
        """Bring every non-loopback link back up (both directions).

        Undoes partitions *and* pairwise link-down state; returns the
        number of link directions that were down.
        """
        healed = 0
        for (src, dst), link in self._links.items():
            if src != dst and not link.up:
                link.up = True
                healed += 1
        return healed

    def set_host_up(self, name: str, up: bool) -> None:
        """Crash or revive a host (affects every transfer touching it)."""
        if up:
            self._down_hosts.discard(name)
        else:
            self._down_hosts.add(name)

    def host_is_up(self, name: str) -> bool:
        return name not in self._down_hosts

    def _check_endpoints(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if name in self._down_hosts:
                raise HostDownError(f"host {name} is down")

    # -- coalescing ------------------------------------------------------------

    def configure_coalescing(self, enabled: bool) -> None:
        """Enable/disable same-instant message coalescing (default off).

        With coalescing on, the *first* transfer starting on a
        directional link at virtual instant ``t`` pays the full
        ``latency + n/bandwidth``; every further transfer starting on
        that link at the same instant ``t`` pays only ``n/bandwidth``
        (it rides in the already-dispatched frame).  Loopback transfers
        never coalesce.  Decisions depend only on the virtual clock, so
        two identical runs coalesce identically — asserted by the
        determinism test in ``tests/test_perf_fastpaths.py``.
        """
        self.coalescing_enabled = bool(enabled)
        self._coalesce_marks.clear()

    def _coalesced_transfer_time(self, src: str, dst: str,
                                 link: Link, nbytes: int) -> Tuple[float, bool]:
        """(seconds, coalesced?) for a transfer starting now."""
        if not self.coalescing_enabled or src == dst:
            return link.transfer_time(nbytes), False
        key = (src, dst)
        now = self.kernel.now
        if self._coalesce_marks.get(key) == now:
            return nbytes / link.bandwidth, True
        self._coalesce_marks[key] = now
        return link.transfer_time(nbytes), False

    # -- circuit breakers ------------------------------------------------------

    def configure_breakers(self, config: Optional[BreakerConfig]) -> None:
        """Install (or remove, with ``None``) per-link circuit breakers.

        A breaker guards one *direction* of a link: after
        ``failure_threshold`` consecutive transfer failures, calls
        fast-fail with the transient
        :class:`~repro.core.errors.CircuitOpenError` — no latency spent,
        no doomed bytes on the wire — until a cooldown elapses and a
        half-open probe succeeds.
        """
        self.breaker_config = config
        self._breakers.clear()

    def breaker_between(self, src: str,
                        dst: str) -> Optional[CircuitBreaker]:
        """The breaker guarding src→dst traffic (None when disabled or
        loopback)."""
        if self.breaker_config is None or src == dst:
            return None
        key = (src, dst)
        breaker = self._breakers.get(key)
        if breaker is None:
            def note(old: str, new: str, now: float,
                     _src: str = src, _dst: str = dst) -> None:
                telemetry = self.kernel.telemetry
                if telemetry.enabled:
                    telemetry.metrics.inc("net.breaker_transitions",
                                          src=_src, dst=_dst,
                                          old=old, new=new)
                    # Breaker flips are exactly the kind of "what just
                    # happened here" context a post-mortem needs.
                    telemetry.flight.record(_src, "breaker",
                                            dst=_dst, old=old, new=new)
            breaker = self._breakers[key] = CircuitBreaker(
                self.breaker_config, on_transition=note)
        return breaker

    def breaker_snapshots(self) -> Dict[str, dict]:
        """Deterministic ``"src->dst" → breaker state`` map."""
        return {f"{src}->{dst}": self._breakers[(src, dst)].snapshot()
                for src, dst in sorted(self._breakers)}

    def _breaker_failure(self, breaker: Optional[CircuitBreaker],
                         exc: NetworkError) -> None:
        # NoRouteError is permanent misconfiguration, not link health;
        # tripping a breaker on it would convert a permanent error into
        # a transient CircuitOpenError and mislead retry loops.
        if breaker is not None and not isinstance(exc, NoRouteError):
            breaker.record_failure(self.kernel.now)

    # -- traffic --------------------------------------------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Cost in seconds of moving ``nbytes`` from src to dst (no effect)."""
        return self.link_between(src, dst).transfer_time(nbytes)

    def _record_traffic(self, link: Link, nbytes: int,
                        seconds: float) -> None:
        telemetry = self.kernel.telemetry
        if not telemetry.enabled:
            return
        metrics = telemetry.metrics
        metrics.inc("net.bytes_on_wire", nbytes, src=link.src, dst=link.dst)
        metrics.inc("net.messages", src=link.src, dst=link.dst)
        metrics.observe("net.transfer_seconds", seconds,
                        src=link.src, dst=link.dst)

    def transfer(self, src: str, dst: str, nbytes: int):
        """A process step that spends the transfer time and records stats.

        Usage inside a process: ``yield from net.transfer(a, b, n)``.
        Returns the elapsed seconds.  Link stats are charged only for
        transfers that *complete*: a partitioned link, a crashed
        endpoint (before or during the transfer), or an injected fault
        raises without recording traffic.
        """
        breaker = self.breaker_between(src, dst)
        if breaker is not None and not breaker.allow(self.kernel.now):
            telemetry = self.kernel.telemetry
            if telemetry.enabled:
                telemetry.metrics.inc("net.breaker_rejected",
                                      src=src, dst=dst)
            raise CircuitOpenError(
                f"link {src} -> {dst}: circuit open "
                f"(fast-failed without spending wire time)")
        try:
            link = self.link_between(src, dst)
            if not link.up:
                raise LinkDownError(f"link {src} -> {dst} is partitioned")
            self._check_endpoints(src, dst)
        except NetworkError as exc:
            self._breaker_failure(breaker, exc)
            raise
        verdict = None
        if self.fault_injector is not None and src != dst:
            verdict = self.fault_injector.verdict(src, dst, nbytes)
        seconds, coalesced = self._coalesced_transfer_time(
            src, dst, link, nbytes)
        if coalesced:
            self.coalesced_messages += 1
            telemetry = self.kernel.telemetry
            if telemetry.enabled:
                telemetry.metrics.inc("net.coalesced", src=src, dst=dst)
        span = self.kernel.telemetry.tracer.begin(
            "net.transfer", category="net", track=f"net:{src}->{dst}",
            bytes=nbytes)
        yield self.kernel.timeout(seconds)
        try:
            # An endpoint that crashed while the bytes were in flight
            # drops the transfer.
            self._check_endpoints(src, dst)
            if verdict == "drop":
                raise TransferDroppedError(
                    f"message {src} -> {dst} lost on the wire")
            if verdict == "corrupt":
                raise TransferCorruptedError(
                    f"payload {src} -> {dst} failed its integrity check")
        except NetworkError as exc:
            self._breaker_failure(breaker, exc)
            span.end(outcome="failed", error=str(exc))
            return self._record_failure(link, exc)
        if breaker is not None:
            breaker.record_success(self.kernel.now)
        link.stats.record(nbytes, seconds)
        self._record_traffic(link, nbytes, seconds)
        span.end(outcome="ok")
        return seconds

    def _record_failure(self, link: Link, exc: NetworkError):
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("net.transfer_failures",
                                  src=link.src, dst=link.dst,
                                  kind=type(exc).__name__)
        raise exc

    def charge(self, src: str, dst: str, nbytes: int) -> float:
        """Record a transfer and return its duration *without* waiting.

        Used by synchronous code (e.g. the stationary robot's HTTP client)
        that accumulates cost into a ledger and sleeps once at the end.
        Raises if the link is partitioned or an endpoint is down.
        """
        link = self.link_between(src, dst)
        if not link.up:
            raise LinkDownError(f"link {src} -> {dst} is partitioned")
        self._check_endpoints(src, dst)
        seconds = link.transfer_time(nbytes)
        link.stats.record(nbytes, seconds)
        self._record_traffic(link, nbytes, seconds)
        return seconds

    # -- accounting -----------------------------------------------------------

    def stats_between(self, src: str, dst: str) -> LinkStats:
        return self.link_between(src, dst).stats

    def total_remote_bytes(self) -> int:
        """Total payload bytes that crossed any non-loopback link."""
        return sum(link.stats.payload_bytes
                   for (a, b), link in self._links.items() if a != b)

    def total_remote_messages(self) -> int:
        return sum(link.stats.messages
                   for (a, b), link in self._links.items() if a != b)

    def reset_stats(self) -> None:
        for link in self._links.values():
            link.stats = LinkStats()
