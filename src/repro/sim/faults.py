"""Deterministic fault injection for the simulated network and hosts.

A :class:`FaultPlan` is a *schedule*: a sorted list of
:class:`FaultEvent` entries (link partitions/heals, host crashes and
restarts) plus per-message drop/corruption probabilities.  Plans are
either built explicitly (``plan.crash(at=3.0, host="b")``) or generated
from a seed via :meth:`FaultPlan.generate`; both paths are fully
deterministic — identical seeds replay identical fault schedules, which
is what makes chaos runs reproducible byte-for-byte.

The *application* of a plan is split in two:

- timed events are driven by :class:`repro.chaos.engine.ChaosEngine`,
  a kernel process that fires each event at its virtual time;
- probabilistic per-message faults are rolled by a
  :class:`FaultInjector` installed on the :class:`repro.sim.network.Network`,
  which asks for a verdict on every non-loopback transfer.

All injected faults flow into telemetry as ``faults.injected`` counters
labelled by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStream, stream_from

#: Event kinds understood by the chaos engine.
KIND_LINK_DOWN = "link-down"
KIND_LINK_UP = "link-up"
KIND_CRASH = "crash"
KIND_RESTART = "restart"

_KINDS = (KIND_LINK_DOWN, KIND_LINK_UP, KIND_CRASH, KIND_RESTART)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what happens, to whom, and when."""

    at: float
    kind: str
    host: Optional[str] = None
    link: Optional[Tuple[str, str]] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind in (KIND_CRASH, KIND_RESTART) and self.host is None:
            raise ValueError(f"{self.kind} event needs a host")
        if self.kind in (KIND_LINK_DOWN, KIND_LINK_UP) and self.link is None:
            raise ValueError(f"{self.kind} event needs a link")

    def to_dict(self) -> dict:
        body = {"at": self.at, "kind": self.kind}
        if self.host is not None:
            body["host"] = self.host
        if self.link is not None:
            body["link"] = list(self.link)
        return body


@dataclass
class FaultPlan:
    """A deterministic schedule of faults plus message-level fault rates."""

    name: str = "plan"
    events: List[FaultEvent] = field(default_factory=list)
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0

    def __post_init__(self):
        for p in (self.drop_probability, self.corrupt_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")

    # -- building -----------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def link_down(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_LINK_DOWN, link=(a, b)))

    def link_up(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_LINK_UP, link=(a, b)))

    def flap(self, at: float, a: str, b: str,
             duration: float) -> "FaultPlan":
        """Partition a link at ``at`` and heal it ``duration`` later."""
        self.link_down(at, a, b)
        return self.link_up(at + duration, a, b)

    def crash(self, at: float, host: str,
              outage: Optional[float] = None) -> "FaultPlan":
        """Crash ``host`` at ``at``; with ``outage`` set, restart it after."""
        self.add(FaultEvent(at, KIND_CRASH, host=host))
        if outage is not None:
            self.restart(at + outage, host)
        return self

    def restart(self, at: float, host: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_RESTART, host=host))

    # -- consuming ----------------------------------------------------------------

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (time, then kind/target for stability)."""
        return sorted(self.events,
                      key=lambda e: (e.at, e.kind, e.host or "",
                                     e.link or ()))

    @property
    def horizon(self) -> float:
        return max((e.at for e in self.events), default=0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "drop_probability": self.drop_probability,
            "corrupt_probability": self.corrupt_probability,
            "events": [e.to_dict() for e in self.sorted_events()],
        }

    # -- seeded generation ----------------------------------------------------------

    @classmethod
    def generate(cls, seed_or_stream, hosts: Sequence[str],
                 links: Sequence[Tuple[str, str]] = (),
                 horizon: float = 60.0,
                 crashes: int = 1,
                 outage: Tuple[float, float] = (2.0, 8.0),
                 flaps: int = 0,
                 flap_duration: Tuple[float, float] = (0.5, 2.0),
                 drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 name: str = "generated") -> "FaultPlan":
        """A random-but-reproducible plan drawn from a seeded stream.

        ``hosts`` are crash candidates; ``links`` are flap candidates.
        The same ``(seed, arguments)`` always yields the same plan.
        """
        rng = stream_from(seed_or_stream, f"faultplan/{name}")
        plan = cls(name=name, drop_probability=drop_probability,
                   corrupt_probability=corrupt_probability)
        hosts = list(hosts)
        links = list(links)
        for _ in range(crashes if hosts else 0):
            host = rng.choice(hosts)
            at = rng.uniform(0.0, horizon)
            plan.crash(at, host, outage=rng.uniform(*outage))
        for _ in range(flaps if links else 0):
            a, b = rng.choice(links)
            at = rng.uniform(0.0, horizon)
            plan.flap(at, a, b, rng.uniform(*flap_duration))
        return plan


class FaultInjector:
    """Per-message fault roller installed on a :class:`Network`.

    The network asks for a :meth:`verdict` on every non-loopback
    transfer; the injector rolls its seeded stream and answers ``None``
    (deliver), ``"drop"`` or ``"corrupt"``.  Because the stream is
    consumed once per transfer in simulation order, the whole fault
    sequence is a pure function of the seed.
    """

    def __init__(self, plan: FaultPlan, seed_or_stream=0,
                 telemetry=None):
        self.plan = plan
        self.rng: RandomStream = stream_from(
            seed_or_stream, f"faults/{plan.name}")
        self.telemetry = telemetry
        self.rolls = 0
        self.dropped = 0
        self.corrupted = 0

    def _count(self, kind: str, src: str = "", dst: str = "") -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("faults.injected", kind=kind)
            if src:
                self.telemetry.flight.record(src, "fault",
                                             kind=kind, dst=dst)

    def verdict(self, src: str, dst: str, nbytes: int) -> Optional[str]:
        self.rolls += 1
        if self.plan.drop_probability and \
                self.rng.chance(self.plan.drop_probability):
            self.dropped += 1
            self._count("drop", src, dst)
            return "drop"
        if self.plan.corrupt_probability and \
                self.rng.chance(self.plan.corrupt_probability):
            self.corrupted += 1
            self._count("corrupt", src, dst)
            return "corrupt"
        return None

    def stats(self) -> Dict[str, int]:
        return {"rolls": self.rolls, "dropped": self.dropped,
                "corrupted": self.corrupted}
