"""Deterministic fault injection for the simulated network and hosts.

A :class:`FaultPlan` is a *schedule*: a sorted list of
:class:`FaultEvent` entries (link partitions/heals, host crashes and
restarts) plus per-message drop/corruption probabilities.  Plans are
either built explicitly (``plan.crash(at=3.0, host="b")``) or generated
from a seed via :meth:`FaultPlan.generate`; both paths are fully
deterministic — identical seeds replay identical fault schedules, which
is what makes chaos runs reproducible byte-for-byte.

The *application* of a plan is split in two:

- timed events are driven by :class:`repro.chaos.engine.ChaosEngine`,
  a kernel process that fires each event at its virtual time;
- probabilistic per-message faults are rolled by a
  :class:`FaultInjector` installed on the :class:`repro.sim.network.Network`,
  which asks for a verdict on every non-loopback transfer.

All injected faults flow into telemetry as ``faults.injected`` counters
labelled by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStream, stream_from

#: Event kinds understood by the chaos engine.
KIND_LINK_DOWN = "link-down"
KIND_LINK_UP = "link-up"
KIND_CRASH = "crash"
KIND_RESTART = "restart"
#: One *direction* of a link fails/heals (asymmetric failure: requests
#: arrive but acks are lost — the classic exactly-once hazard).
KIND_LINK_DOWN_ONEWAY = "link-down-oneway"
KIND_LINK_UP_ONEWAY = "link-up-oneway"
#: Group-level split-brain: every link crossing a group boundary goes
#: down at once.  ``heal`` restores every non-loopback link.
KIND_PARTITION = "partition"
KIND_HEAL = "heal"

_KINDS = (KIND_LINK_DOWN, KIND_LINK_UP, KIND_CRASH, KIND_RESTART,
          KIND_LINK_DOWN_ONEWAY, KIND_LINK_UP_ONEWAY,
          KIND_PARTITION, KIND_HEAL)

_LINK_KINDS = (KIND_LINK_DOWN, KIND_LINK_UP,
               KIND_LINK_DOWN_ONEWAY, KIND_LINK_UP_ONEWAY)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what happens, to whom, and when."""

    at: float
    kind: str
    host: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    #: Partition membership: a tuple of host-name groups.  Links whose
    #: endpoints fall in *different* groups go down; hosts absent from
    #: every group keep all their links.
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind in (KIND_CRASH, KIND_RESTART) and self.host is None:
            raise ValueError(f"{self.kind} event needs a host")
        if self.kind in _LINK_KINDS and self.link is None:
            raise ValueError(f"{self.kind} event needs a link")
        if self.kind == KIND_PARTITION:
            if not self.groups or len(self.groups) < 2:
                raise ValueError("partition event needs >= 2 host groups")
            # Normalise to tuples so events stay hashable/frozen.
            object.__setattr__(
                self, "groups",
                tuple(tuple(group) for group in self.groups))

    def to_dict(self) -> dict:
        body = {"at": self.at, "kind": self.kind}
        if self.host is not None:
            body["host"] = self.host
        if self.link is not None:
            body["link"] = list(self.link)
        if self.groups is not None:
            body["groups"] = [sorted(group) for group in self.groups]
        return body


@dataclass(frozen=True)
class StorageFaults:
    """Seeded crash-time storage faults for a host's virtual disk.

    These model the three classic ways a write-ahead journal gets hurt
    by a real crash:

    - **slow fsync** — with ``slow_fsync_probability`` an fsync's data
      only becomes durable ``slow_fsync_delay`` seconds later (the
      device acknowledged out of its volatile cache); a crash inside
      that window loses the "synced" suffix;
    - **torn tail** — with ``torn_tail_probability`` the first write
      lost by a crash survives as a partial prefix (a write torn across
      sectors) instead of vanishing cleanly;
    - **lost suffix** — with ``lost_suffix_probability`` the crash
      additionally eats up to ``lost_suffix_max_bytes`` of *durable*
      tail (firmware that lied about an earlier fsync).

    All rolls happen on the injector's forked ``storage`` stream, so
    enabling storage faults never perturbs the drop/corrupt/delivery
    sequences of an existing plan.
    """

    torn_tail_probability: float = 0.0
    lost_suffix_probability: float = 0.0
    slow_fsync_probability: float = 0.0
    slow_fsync_delay: float = 0.2
    lost_suffix_max_bytes: int = 64

    def __post_init__(self):
        for p in (self.torn_tail_probability,
                  self.lost_suffix_probability,
                  self.slow_fsync_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("storage fault probabilities must be "
                                 "in [0, 1]")
        if self.slow_fsync_delay < 0:
            raise ValueError("slow_fsync_delay must be non-negative")
        if self.lost_suffix_max_bytes < 1:
            raise ValueError("lost_suffix_max_bytes must be positive")

    def to_dict(self) -> dict:
        return {
            "torn_tail_probability": self.torn_tail_probability,
            "lost_suffix_probability": self.lost_suffix_probability,
            "slow_fsync_probability": self.slow_fsync_probability,
            "slow_fsync_delay": self.slow_fsync_delay,
            "lost_suffix_max_bytes": self.lost_suffix_max_bytes,
        }


@dataclass
class FaultPlan:
    """A deterministic schedule of faults plus message-level fault rates."""

    name: str = "plan"
    events: List[FaultEvent] = field(default_factory=list)
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    #: Per-delivery fault rates (rolled on a stream forked from the
    #: injector's, so enabling them never perturbs drop/corrupt draws).
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    wire_corrupt_probability: float = 0.0
    #: Jitter range (seconds) for duplicated/reordered deliveries.
    reorder_delay: Tuple[float, float] = (0.05, 0.5)
    #: Crash-time storage faults (``None`` = perfectly honest disks).
    storage: Optional[StorageFaults] = None

    def __post_init__(self):
        for p in (self.drop_probability, self.corrupt_probability,
                  self.duplicate_probability, self.reorder_probability,
                  self.wire_corrupt_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")
        low, high = self.reorder_delay
        if low < 0 or high < low:
            raise ValueError("reorder_delay must be a non-negative range")

    @property
    def has_delivery_faults(self) -> bool:
        """True when any per-delivery fault rate is configured."""
        return bool(self.duplicate_probability or
                    self.reorder_probability or
                    self.wire_corrupt_probability)

    # -- building -----------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def link_down(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_LINK_DOWN, link=(a, b)))

    def link_up(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_LINK_UP, link=(a, b)))

    def flap(self, at: float, a: str, b: str,
             duration: float) -> "FaultPlan":
        """Partition a link at ``at`` and heal it ``duration`` later."""
        self.link_down(at, a, b)
        return self.link_up(at + duration, a, b)

    def crash(self, at: float, host: str,
              outage: Optional[float] = None) -> "FaultPlan":
        """Crash ``host`` at ``at``; with ``outage`` set, restart it after."""
        self.add(FaultEvent(at, KIND_CRASH, host=host))
        if outage is not None:
            self.restart(at + outage, host)
        return self

    def restart(self, at: float, host: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_RESTART, host=host))

    def link_down_oneway(self, at: float, src: str, dst: str) -> "FaultPlan":
        """Fail only the src→dst direction (asymmetric link failure)."""
        return self.add(FaultEvent(at, KIND_LINK_DOWN_ONEWAY,
                                   link=(src, dst)))

    def link_up_oneway(self, at: float, src: str, dst: str) -> "FaultPlan":
        return self.add(FaultEvent(at, KIND_LINK_UP_ONEWAY,
                                   link=(src, dst)))

    def partition(self, at: float, *groups) -> "FaultPlan":
        """Split the network into host groups at ``at`` (split-brain)."""
        return self.add(FaultEvent(
            at, KIND_PARTITION,
            groups=tuple(tuple(group) for group in groups)))

    def heal(self, at: float) -> "FaultPlan":
        """Bring every non-loopback link back up in both directions."""
        return self.add(FaultEvent(at, KIND_HEAL))

    def split_brain(self, at: float, duration: float,
                    *groups) -> "FaultPlan":
        """Partition at ``at`` and heal ``duration`` later."""
        self.partition(at, *groups)
        return self.heal(at + duration)

    # -- consuming ----------------------------------------------------------------

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (time, then kind/target for stability)."""
        return sorted(self.events,
                      key=lambda e: (e.at, e.kind, e.host or "",
                                     e.link or (), e.groups or ()))

    @property
    def horizon(self) -> float:
        return max((e.at for e in self.events), default=0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "drop_probability": self.drop_probability,
            "corrupt_probability": self.corrupt_probability,
            "duplicate_probability": self.duplicate_probability,
            "reorder_probability": self.reorder_probability,
            "wire_corrupt_probability": self.wire_corrupt_probability,
            "reorder_delay": list(self.reorder_delay),
            "storage": self.storage.to_dict() if self.storage else None,
            "events": [e.to_dict() for e in self.sorted_events()],
        }

    # -- seeded generation ----------------------------------------------------------

    @classmethod
    def generate(cls, seed_or_stream, hosts: Sequence[str],
                 links: Sequence[Tuple[str, str]] = (),
                 horizon: float = 60.0,
                 crashes: int = 1,
                 outage: Tuple[float, float] = (2.0, 8.0),
                 flaps: int = 0,
                 flap_duration: Tuple[float, float] = (0.5, 2.0),
                 drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 reorder_probability: float = 0.0,
                 wire_corrupt_probability: float = 0.0,
                 name: str = "generated") -> "FaultPlan":
        """A random-but-reproducible plan drawn from a seeded stream.

        ``hosts`` are crash candidates; ``links`` are flap candidates.
        The same ``(seed, arguments)`` always yields the same plan.
        """
        rng = stream_from(seed_or_stream, f"faultplan/{name}")
        plan = cls(name=name, drop_probability=drop_probability,
                   corrupt_probability=corrupt_probability,
                   duplicate_probability=duplicate_probability,
                   reorder_probability=reorder_probability,
                   wire_corrupt_probability=wire_corrupt_probability)
        hosts = list(hosts)
        links = list(links)
        for _ in range(crashes if hosts else 0):
            host = rng.choice(hosts)
            at = rng.uniform(0.0, horizon)
            plan.crash(at, host, outage=rng.uniform(*outage))
        for _ in range(flaps if links else 0):
            a, b = rng.choice(links)
            at = rng.uniform(0.0, horizon)
            plan.flap(at, a, b, rng.uniform(*flap_duration))
        return plan


class FaultInjector:
    """Per-message fault roller installed on a :class:`Network`.

    The network asks for a :meth:`verdict` on every non-loopback
    transfer; the injector rolls its seeded stream and answers ``None``
    (deliver), ``"drop"`` or ``"corrupt"``.  Because the stream is
    consumed once per transfer in simulation order, the whole fault
    sequence is a pure function of the seed.
    """

    def __init__(self, plan: FaultPlan, seed_or_stream=0,
                 telemetry=None):
        self.plan = plan
        self.rng: RandomStream = stream_from(
            seed_or_stream, f"faults/{plan.name}")
        #: Delivery-level faults (duplicate / reorder / in-flight
        #: corruption) roll on a *forked* stream so turning them on never
        #: shifts the drop/corrupt sequence of an existing plan.
        self.delivery_rng: RandomStream = self.rng.fork("delivery")
        #: Storage faults roll on their own fork for the same reason.
        self.storage_rng: RandomStream = self.rng.fork("storage")
        self.telemetry = telemetry
        self.rolls = 0
        self.dropped = 0
        self.corrupted = 0
        self.delivery_rolls = 0
        self.duplicated = 0
        self.reordered = 0
        self.wire_corrupted = 0
        self.slow_fsyncs = 0
        self.torn_tails = 0
        self.lost_suffixes = 0

    def _count(self, kind: str, src: str = "", dst: str = "") -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc("faults.injected", kind=kind)
            if src:
                # (The ring event's own kind is "fault"; the fault's
                # kind rides along as a detail field.)
                self.telemetry.flight.record(src, "fault",
                                             fault=kind, dst=dst)

    def verdict(self, src: str, dst: str, nbytes: int) -> Optional[str]:
        self.rolls += 1
        if self.plan.drop_probability and \
                self.rng.chance(self.plan.drop_probability):
            self.dropped += 1
            self._count("drop", src, dst)
            return "drop"
        if self.plan.corrupt_probability and \
                self.rng.chance(self.plan.corrupt_probability):
            self.corrupted += 1
            self._count("corrupt", src, dst)
            return "corrupt"
        return None

    def delivery_verdict(self, src: str, dst: str,
                         nbytes: int) -> Optional[Tuple[str, float]]:
        """Roll the delivery-level faults for one forwarded message.

        Returns ``None`` (deliver normally) or a ``(kind, delay)`` pair:

        - ``("corrupt-wire", 0.0)`` — deliver the frame bit-flipped
          through the receiver's raw-wire path (poison quarantine food);
        - ``("duplicate", delay)`` — deliver normally *and* replay a
          copy ``delay`` seconds later;
        - ``("delay", delay)`` — hold the only copy for ``delay``
          seconds (reordering it past later traffic).
        """
        if not self.plan.has_delivery_faults:
            return None
        self.delivery_rolls += 1
        plan = self.plan
        if plan.wire_corrupt_probability and \
                self.delivery_rng.chance(plan.wire_corrupt_probability):
            self.wire_corrupted += 1
            self._count("corrupt-wire", src, dst)
            return ("corrupt-wire", 0.0)
        if plan.duplicate_probability and \
                self.delivery_rng.chance(plan.duplicate_probability):
            self.duplicated += 1
            self._count("duplicate", src, dst)
            return ("duplicate",
                    self.delivery_rng.uniform(*plan.reorder_delay))
        if plan.reorder_probability and \
                self.delivery_rng.chance(plan.reorder_probability):
            self.reordered += 1
            self._count("reorder", src, dst)
            return ("delay",
                    self.delivery_rng.uniform(*plan.reorder_delay))
        return None

    def fsync_delay(self, host: str) -> float:
        """Extra seconds before this fsync's data is actually durable.

        Normally 0.0 (an honest fsync); with the slow-fsync fault the
        write sits in the device's volatile cache for the configured
        delay — a crash inside the window loses it.
        """
        faults = self.plan.storage
        if faults is None or not faults.slow_fsync_probability:
            return 0.0
        if self.storage_rng.chance(faults.slow_fsync_probability):
            self.slow_fsyncs += 1
            self._count("slow-fsync", host)
            return faults.slow_fsync_delay
        return 0.0

    def storage_crash_verdict(self, host: str, first_lost_len: int,
                              durable_len: int
                              ) -> Tuple[Optional[int], int]:
        """Roll the crash-time faults for one file of a crashing disk.

        ``first_lost_len`` is the size of the first non-durable write
        (the torn-tail candidate); ``durable_len`` the durable bytes
        before the crash.  Returns ``(torn_keep, lost_suffix)``: the
        number of bytes of the torn write that survive as a prefix
        (``None`` = clean loss), and the durable tail bytes destroyed.
        """
        faults = self.plan.storage
        torn_keep: Optional[int] = None
        lost_suffix = 0
        if faults is None:
            return torn_keep, lost_suffix
        if first_lost_len > 1 and faults.torn_tail_probability and \
                self.storage_rng.chance(faults.torn_tail_probability):
            torn_keep = self.storage_rng.randint(1, first_lost_len - 1)
            self.torn_tails += 1
            self._count("torn-tail", host)
        if durable_len > 0 and faults.lost_suffix_probability and \
                self.storage_rng.chance(faults.lost_suffix_probability):
            lost_suffix = self.storage_rng.randint(
                1, min(faults.lost_suffix_max_bytes, durable_len))
            self.lost_suffixes += 1
            self._count("lost-suffix", host)
        return torn_keep, lost_suffix

    def flip_bit(self, data: bytes) -> bytes:
        """Deterministically corrupt one bit of a wire frame."""
        if not data:
            return data
        buffer = bytearray(data)
        index = self.delivery_rng.randint(0, len(buffer) - 1)
        buffer[index] ^= 1 << self.delivery_rng.randint(0, 7)
        return bytes(buffer)

    def stats(self) -> Dict[str, int]:
        return {"rolls": self.rolls, "dropped": self.dropped,
                "corrupted": self.corrupted,
                "delivery_rolls": self.delivery_rolls,
                "duplicated": self.duplicated,
                "reordered": self.reordered,
                "wire_corrupted": self.wire_corrupted,
                "slow_fsyncs": self.slow_fsyncs,
                "torn_tails": self.torn_tails,
                "lost_suffixes": self.lost_suffixes}
