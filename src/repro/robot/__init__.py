"""The web robot (COTS Webbot stand-in) and its surrounding tooling.

- :mod:`repro.robot.webbot` — the self-contained, agent-oblivious robot
  (this is the code the mobility wrapper ships by value);
- :mod:`repro.robot.linkcheck` — the wrapper-side second pass over
  rejected links;
- :mod:`repro.robot.report` — condensed dead-link reports.
"""

from repro.robot.checkbot import Checkbot, CheckbotConfig, run_checkbot
from repro.robot.linkcheck import (
    CHECKABLE_REASONS,
    probe_url,
    validate_rejected,
)
from repro.robot.loganalyzer import analyze_log, parse_log_line, \
    run_log_analysis
from repro.robot.report import DeadLinkReport, merge_reports
from repro.robot.webbot import (
    WEBBOT_VERSION,
    Webbot,
    WebbotConfig,
    extract_links,
    join_url,
    parse_robots_txt,
    run_webbot,
)

__all__ = [
    "Checkbot", "CheckbotConfig", "run_checkbot",
    "analyze_log", "parse_log_line", "run_log_analysis",
    "CHECKABLE_REASONS", "probe_url", "validate_rejected",
    "DeadLinkReport", "merge_reports",
    "WEBBOT_VERSION", "Webbot", "WebbotConfig", "extract_links",
    "join_url", "parse_robots_txt", "run_webbot",
]
