"""Checkbot: a second, independently-written stationary link checker.

The paper's footnote points at a whole catalogue of robots "implemented
in a wide variety of languages"; the wrapper claim only holds if it
mobilises *any* of them, not just the one it was built around.  This
module is therefore a deliberately different robot from
:mod:`repro.robot.webbot`:

- **breadth-first** traversal (Webbot is depth-first);
- scoping by an **allowed-hosts list** (Webbot uses a URI prefix);
- **inline validation** of off-site links with HEAD as they are found
  (Webbot logs them as rejected for a separate second pass);
- its own result vocabulary (``checked``/``broken``/``offsite_checked``).

It shares the self-containment contract: stdlib only, duck-typed HTTP
client, JSON-able result — so the mobility wrapper ships it exactly the
way it ships the Webbot, unchanged (experiment G1).
"""

import re

CHECKBOT_VERSION = "repro-checkbot/1.0"

_A_HREF_RE = re.compile(
    r"""<\s*a\b[^>]*?\bhref\s*=\s*(?:"([^"]*)"|'([^']*)')""",
    re.IGNORECASE | re.DOTALL)


def find_hrefs(html):
    """Anchor hrefs only (this robot does not chase assets)."""
    return [m.group(1) or m.group(2) or ""
            for m in _A_HREF_RE.finditer(html)]


def absolutize(base, reference):
    """Resolve a reference against a base URL; None for non-http."""
    reference = reference.split("#", 1)[0].strip()
    if not reference:
        return None
    lowered = reference.lower()
    if lowered.startswith("http://"):
        rest = reference[len("http://"):]
        netloc, slash, path = rest.partition("/")
        if not netloc:
            return None
        return "http://" + netloc.lower() + _clean("/" + path if slash
                                                   else "/")
    if "://" in reference or lowered.startswith("mailto:"):
        return None
    if not base.lower().startswith("http://"):
        return None
    rest = base[len("http://"):]
    netloc, _slash, base_path = rest.partition("/")
    base_path = "/" + base_path
    if reference.startswith("/"):
        return "http://" + netloc.lower() + _clean(reference)
    directory = base_path.rsplit("/", 1)[0] + "/"
    return "http://" + netloc.lower() + _clean(directory + reference)


def _clean(path):
    segments = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    cleaned = "/" + "/".join(segments)
    if path.endswith("/") and cleaned != "/":
        cleaned += "/"
    return cleaned


def host_of(url):
    if not url.lower().startswith("http://"):
        return None
    return url[len("http://"):].partition("/")[0].lower()


class CheckbotConfig:
    """This robot's own configuration vocabulary."""

    def __init__(self, start_urls, allowed_hosts=None, max_pages=None,
                 max_redirects=5):
        if not start_urls:
            raise ValueError("checkbot needs at least one start URL")
        self.start_urls = list(start_urls)
        if allowed_hosts is None:
            allowed_hosts = sorted({host_of(u) for u in start_urls
                                    if host_of(u)})
        self.allowed_hosts = [h.lower() for h in allowed_hosts]
        self.max_pages = max_pages
        self.max_redirects = max_redirects

    @classmethod
    def from_dict(cls, args):
        return cls(start_urls=args["start_urls"],
                   allowed_hosts=args.get("allowed_hosts"),
                   max_pages=args.get("max_pages"),
                   max_redirects=args.get("max_redirects", 5))


class Checkbot:
    """Breadth-first crawler with inline off-site validation."""

    def __init__(self, config, http):
        self.config = config
        self.http = http
        self.checked = 0
        self.ok_count = 0
        self.bytes_fetched = 0
        self.broken = []            # {"href", "parent", "code"}
        self.offsite_checked = 0
        self.seen = set()
        self._offsite_cache = {}    # url -> (code, alive)

    def _on_site(self, url):
        return host_of(url) in self.config.allowed_hosts

    def _head_follow(self, url):
        """HEAD with absolute-location redirect following."""
        if url in self._offsite_cache:
            return self._offsite_cache[url]
        current = url
        chain = {url}
        code, alive = 0, False
        for _ in range(self.config.max_redirects + 1):
            response = self.http.head(current)
            code = getattr(response, "status", 0)
            location = getattr(response, "location", None)
            if code in (301, 302) and location and location not in chain:
                chain.add(location)
                current = location
                continue
            alive = bool(getattr(response, "ok", False))
            break
        self._offsite_cache[url] = (code, alive)
        return code, alive

    def _get_follow(self, url):
        """GET following redirects; returns (final response, code)."""
        current = url
        chain = {url}
        response = self.http.get(current)
        for _ in range(self.config.max_redirects):
            code = getattr(response, "status", 0)
            location = getattr(response, "location", None)
            if code in (301, 302) and location and location not in chain:
                chain.add(location)
                current = location
                response = self.http.get(current)
                continue
            break
        return response, current

    def run(self):
        queue = list(self.config.start_urls)
        for url in queue:
            self.seen.add(url)
        parents = {url: "<start>" for url in queue}
        index = 0
        while index < len(queue):
            url = queue[index]
            index += 1
            if self.config.max_pages is not None and \
                    self.checked >= self.config.max_pages:
                break
            response, final_url = self._get_follow(url)
            code = getattr(response, "status", 0)
            self.checked += 1
            if not getattr(response, "ok", False):
                self.broken.append({"href": url,
                                    "parent": parents.get(url, "<start>"),
                                    "code": code})
                continue
            self.ok_count += 1
            body = getattr(response, "body", "") or ""
            self.bytes_fetched += len(body.encode("utf-8"))
            content_type = getattr(response, "content_type", "text/html")
            if not (content_type or "").startswith("text/html"):
                continue
            for raw in find_hrefs(body):
                child = absolutize(final_url, raw)
                if child is None:
                    continue
                if self._on_site(child):
                    if child not in self.seen:
                        self.seen.add(child)
                        parents[child] = url
                        queue.append(child)
                else:
                    # Off-site: validate inline, never crawl.
                    self.offsite_checked += 1
                    off_code, alive = self._head_follow(child)
                    if not alive:
                        record = {"href": child, "parent": url,
                                  "code": off_code}
                        if record not in self.broken:
                            self.broken.append(record)
        return self.result()

    def result(self):
        return {
            "version": CHECKBOT_VERSION,
            "start_urls": list(self.config.start_urls),
            "allowed_hosts": list(self.config.allowed_hosts),
            "checked": self.checked,
            "ok": self.ok_count,
            "bytes_fetched": self.bytes_fetched,
            "offsite_checked": self.offsite_checked,
            "broken": list(self.broken),
        }


def run_checkbot(args, env):
    """Binary-style entry point (same contract as the Webbot's)."""
    config = CheckbotConfig.from_dict(args)
    robot = Checkbot(config, env.http)
    return robot.run()
