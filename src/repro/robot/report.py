"""Dead-link reports: the condensed mining result shipped home.

The mobile agent's payoff is that only this report — not the 3 MB of
pages — crosses the network.  The report merges Webbot's own invalid-link
records with the second-pass results and renders the *"resulting list of
invalid URIs and the referring pages"* the paper describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class DeadLinkReport:
    """Merged dead-link findings for one crawled site."""

    site: str
    pages_scanned: int = 0
    bytes_scanned: int = 0
    links_seen: int = 0
    invalid: List[Dict] = field(default_factory=list)
    rejected_checked: int = 0

    @classmethod
    def from_webbot_result(cls, site: str, result: Dict,
                           second_pass_invalid: Optional[Iterable[Dict]] = None
                           ) -> "DeadLinkReport":
        """Combine a Webbot result dict with second-pass findings."""
        report = cls(
            site=site,
            pages_scanned=result.get("pages_scanned", 0),
            bytes_scanned=result.get("bytes_scanned", 0),
            links_seen=result.get("links_seen", 0),
            invalid=list(result.get("invalid", ())),
        )
        if second_pass_invalid is not None:
            extras = list(second_pass_invalid)
            report.invalid.extend(extras)
            report.rejected_checked = len(extras)
        report._dedupe()
        return report

    def _dedupe(self) -> None:
        seen = set()
        unique = []
        for record in self.invalid:
            key = (record.get("url"), record.get("referrer"))
            if key not in seen:
                seen.add(key)
                unique.append(record)
        self.invalid = unique

    # -- views -------------------------------------------------------------------

    @property
    def dead_count(self) -> int:
        return len(self.invalid)

    def dead_urls(self) -> List[str]:
        return sorted({record["url"] for record in self.invalid})

    def by_referrer(self) -> Dict[str, List[str]]:
        """referring page → broken URLs on it (the fix-it worklist)."""
        grouped: Dict[str, List[str]] = {}
        for record in self.invalid:
            grouped.setdefault(
                record.get("referrer", "<unknown>"), []).append(record["url"])
        return {ref: sorted(urls) for ref, urls in sorted(grouped.items())}

    # -- serialisation (briefcase payload) -------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "site": self.site,
            "pages_scanned": self.pages_scanned,
            "bytes_scanned": self.bytes_scanned,
            "links_seen": self.links_seen,
            "rejected_checked": self.rejected_checked,
            "invalid": self.invalid,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeadLinkReport":
        data = json.loads(text)
        report = cls(
            site=data["site"],
            pages_scanned=data["pages_scanned"],
            bytes_scanned=data["bytes_scanned"],
            links_seen=data["links_seen"],
            invalid=list(data["invalid"]),
            rejected_checked=data.get("rejected_checked", 0),
        )
        return report

    def render_text(self) -> str:
        """The human-readable audit report."""
        lines = [
            f"Dead-link report for {self.site}",
            f"  pages scanned : {self.pages_scanned}",
            f"  bytes scanned : {self.bytes_scanned}",
            f"  links seen    : {self.links_seen}",
            f"  broken refs   : {self.dead_count}",
            "",
        ]
        for referrer, dead in self.by_referrer().items():
            lines.append(f"  {referrer}")
            for url in dead:
                lines.append(f"    -> {url}")
        return "\n".join(lines)


def merge_reports(reports: Iterable[DeadLinkReport],
                  site: str = "<multiple>") -> DeadLinkReport:
    """Fold per-host reports from an itinerant audit into one."""
    merged = DeadLinkReport(site=site)
    for report in reports:
        merged.pages_scanned += report.pages_scanned
        merged.bytes_scanned += report.bytes_scanned
        merged.links_seen += report.links_seen
        merged.rejected_checked += report.rejected_checked
        merged.invalid.extend(report.invalid)
    merged._dedupe()
    return merged
