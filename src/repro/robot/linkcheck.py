"""Second-pass link validation.

The paper's mwWebbot wrapper *"examines the URIs logged as rejected by
Webbot, and looks these URIs [up] in a separate step.  It then combines
the URIs not found to be valid with the invalid URIs logged by Webbot."*

This module is that separate step: given Webbot's rejected-link records,
probe each distinct URL once (HEAD — validity needs no body) and report
the broken ones.  Unlike :mod:`repro.robot.webbot` this is *our* code
(part of the mobile agent), not the COTS program.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: Rejection reasons worth re-validating.  Scheme-rejected references
#: (mailto: etc.) cannot be checked over HTTP, and robots-rejected URLs
#: must not be probed at all (that would defeat the compliance).
CHECKABLE_REASONS = ("prefix", "depth", "page-limit")

#: Redirect chain length tolerated while probing.
MAX_PROBE_REDIRECTS = 5


def probe_url(url: str, http) -> "tuple[int, bool]":
    """HEAD a URL, following absolute redirects; returns (status, alive)."""
    current = url
    seen = {url}
    last_status = 0
    for _ in range(MAX_PROBE_REDIRECTS + 1):
        response = http.head(current)
        last_status = getattr(response, "status", 0)
        location = getattr(response, "location", None)
        if last_status in (301, 302) and location:
            if location in seen:
                return last_status, False  # redirect loop
            seen.add(location)
            current = location
            continue
        return last_status, bool(getattr(response, "ok", False))
    return last_status, False  # chain too long


def validate_rejected(rejected: Iterable[Dict], http,
                      reasons: Iterable[str] = CHECKABLE_REASONS
                      ) -> List[Dict]:
    """Probe rejected links; return records for the invalid ones.

    Each returned record mirrors Webbot's invalid-link records:
    ``{"url", "referrer", "reason": "http", "status"}``.  A URL referred
    to from several pages is probed once but reported per referrer, so
    every broken reference can be fixed at its source.
    """
    reasons = set(reasons)
    by_url: Dict[str, List[Dict]] = {}
    for record in rejected:
        if record.get("reason") in reasons:
            by_url.setdefault(record["url"], []).append(record)

    invalid: List[Dict] = []
    for url, records in by_url.items():
        status, alive = probe_url(url, http)
        if alive:
            continue
        for record in records:
            invalid.append({
                "url": url,
                "referrer": record.get("referrer", "<unknown>"),
                "reason": "http",
                "status": status,
            })
    return invalid
