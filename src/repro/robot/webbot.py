"""Webbot: a stationary, non-mobile web robot (W3C Webbot stand-in).

This module plays the role of the paper's COTS software: *"Webbot is one
such robot from the W3C organization ... implemented in C and can be used
to gather statistics on web pages such as link validity, age, and type of
web pages encountered.  Webbot gathers these statistics by following
links in depth first manner, subjected to certain constraints"* — a
maximum search-tree depth and a URI prefix restriction.

Faithfulness requirements, and how they are met:

- **Non-mobile and agent-oblivious.**  This module knows nothing about
  briefcases, firewalls, agents, or the simulator.  Its one dependency is
  a duck-typed HTTP client (anything with ``get(url)``/``head(url)``
  returning an object with ``status``/``body``/``ok``).  Both the
  stationary baseline and the mobile wrapper run *this exact code*.
- **Self-contained.**  The original Webbot was a single C binary carrying
  its own URI library (libwww).  Likewise this module imports only the
  standard library and contains its own URL joining and link extraction,
  so the mobility wrapper can ship the module's *source text* by value —
  the Python analogue of carrying the binary in the briefcase.
- **Rejected-link logging.**  Links not followed because of the prefix or
  depth constraint are logged with a reason, because the paper's
  mwWebbot wrapper validates exactly those in its second pass.
- **Plain-data results.**  The result is a JSON-able dict, so it crosses
  briefcase/host boundaries without shared classes.

(The paper notes the real Webbot "became unstable with a search tree
deeper than 4"; this clone is stable, but experiments honour the same
depth-4 constraint for workload fidelity.)
"""

import re

WEBBOT_VERSION = "repro-webbot/1.0"

# -- Webbot's private URL handling (its "libwww") ----------------------------------


def _strip_fragment(url):
    return url.split("#", 1)[0]


def _normalize_path(path):
    if not path.startswith("/"):
        path = "/" + path
    segments = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def _split_http(url):
    """('host[:port]', '/path') for an absolute http URL, else None."""
    if not url.lower().startswith("http://"):
        return None
    rest = url[len("http://"):]
    netloc, slash, path = rest.partition("/")
    if not netloc:
        return None
    return netloc.lower(), _normalize_path("/" + path if slash else "/")


def join_url(base, reference):
    """Resolve a (possibly relative) href against an absolute base URL.

    Returns the normalised absolute URL, or None for non-http schemes
    (mailto:, ftp:, ...).
    """
    reference = _strip_fragment(reference.strip())
    if not reference:
        return None
    lowered = reference.lower()
    if "://" in reference or lowered.startswith("mailto:"):
        parts = _split_http(reference)
        if parts is None:
            return None
        netloc, path = parts
        return "http://" + netloc + path
    base_parts = _split_http(base)
    if base_parts is None:
        return None
    netloc, base_path = base_parts
    if reference.startswith("/"):
        return "http://" + netloc + _normalize_path(reference)
    directory = base_path.rsplit("/", 1)[0] + "/"
    return "http://" + netloc + _normalize_path(directory + reference)


_HREF_RE = re.compile(
    r"""<\s*(?:a|link|area)\b[^>]*?\bhref\s*=\s*(?:"([^"]*)"|'([^']*)')""",
    re.IGNORECASE | re.DOTALL)
_SRC_RE = re.compile(
    r"""<\s*(?:img|frame|script)\b[^>]*?\bsrc\s*=\s*(?:"([^"]*)"|'([^']*)')""",
    re.IGNORECASE | re.DOTALL)


def extract_links(html):
    """All href/src references in document order (raw, un-joined)."""
    links = []
    for regex in (_HREF_RE, _SRC_RE):
        for match in regex.finditer(html):
            links.append(match.group(1) or match.group(2) or "")
    return links


# -- configuration and result records ----------------------------------------------

REASON_PREFIX = "prefix"
REASON_DEPTH = "depth"
REASON_SCHEME = "scheme"
REASON_PAGE_LIMIT = "page-limit"
REASON_ROBOTS = "robots"
REASON_REDIRECT_LIMIT = "redirect-limit"

STATUS_CONNECT_FAILED = 0


def parse_robots_txt(text):
    """Disallow prefixes for User-agent ``*`` (the 1994 robots format)."""
    disallows = []
    applies = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        field, _colon, value = line.partition(":")
        field = field.strip().lower()
        value = value.strip()
        if field == "user-agent":
            applies = value == "*"
        elif field == "disallow" and applies and value:
            disallows.append(value)
    return disallows


class WebbotConfig:
    """Crawl constraints, mirroring the real Webbot's flags."""

    def __init__(self, start_url, prefix=None, max_depth=4,
                 max_pages=None, honor_robots=True, max_redirects=5):
        if _split_http(start_url) is None:
            raise ValueError("start_url must be an absolute http URL")
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if max_redirects < 0:
            raise ValueError("max_redirects must be non-negative")
        self.start_url = start_url
        self.prefix = prefix
        self.max_depth = max_depth
        self.max_pages = max_pages
        self.honor_robots = honor_robots
        self.max_redirects = max_redirects

    @classmethod
    def from_dict(cls, args):
        return cls(start_url=args["start_url"],
                   prefix=args.get("prefix"),
                   max_depth=args.get("max_depth", 4),
                   max_pages=args.get("max_pages"),
                   honor_robots=args.get("honor_robots", True),
                   max_redirects=args.get("max_redirects", 5))


def _link_record(url, referrer, reason, status=None):
    record = {"url": url, "referrer": referrer, "reason": reason}
    if status is not None:
        record["status"] = status
    return record


class Webbot:
    """Depth-first crawler with prefix/depth constraints."""

    def __init__(self, config, http):
        self.config = config
        self.http = http
        self.pages_scanned = 0
        self.bytes_scanned = 0
        self.links_seen = 0
        self.max_depth_seen = 0
        self.invalid = []          # followed but broken (404 / no connect)
        self.rejected = []         # not followed because of a constraint
        self.visited = set()
        self.status_counts = {}
        self.redirects_followed = 0
        self.content_type_counts = {}
        self._age_samples = []
        self._robots_cache = {}    # netloc -> list of disallow prefixes

    # -- constraint checks ------------------------------------------------------------

    def _constraint_reason(self, url, depth):
        if self.config.prefix is not None and \
                not url.startswith(self.config.prefix):
            return REASON_PREFIX
        if depth > self.config.max_depth:
            return REASON_DEPTH
        if self.config.max_pages is not None and \
                self.pages_scanned >= self.config.max_pages:
            return REASON_PAGE_LIMIT
        return None

    # -- robots.txt compliance ----------------------------------------------------------

    def _robots_disallows(self, netloc):
        if netloc not in self._robots_cache:
            response = self.http.get("http://" + netloc + "/robots.txt")
            if getattr(response, "ok", False):
                self._robots_cache[netloc] = parse_robots_txt(
                    getattr(response, "body", "") or "")
            else:
                self._robots_cache[netloc] = []
        return self._robots_cache[netloc]

    def _robots_blocked(self, url):
        if not self.config.honor_robots:
            return False
        parts = _split_http(url)
        if parts is None:
            return False
        netloc, path = parts
        return any(path.startswith(prefix)
                   for prefix in self._robots_disallows(netloc))

    # -- fetching (with redirect following) ----------------------------------------------

    def _fetch(self, url, referrer):
        """GET with redirect following; returns (response, final_url).

        A ``(None, url)`` return means the chain ended in a rejection
        that has already been logged (constraint or redirect limit).
        """
        current = url
        response = self.http.get(current)
        hops = 0
        while True:
            status = getattr(response, "status", STATUS_CONNECT_FAILED)
            self.status_counts[str(status)] = \
                self.status_counts.get(str(status), 0) + 1
            location = getattr(response, "location", None)
            if status not in (301, 302) or not location:
                return response, current
            hops += 1
            if hops > self.config.max_redirects:
                self.invalid.append(_link_record(
                    url, referrer, REASON_REDIRECT_LIMIT, status=status))
                return None, current
            target = join_url(current, location)
            if target is None or target in self.visited:
                return None, current  # non-http, loop, or already crawled
            reason = self._constraint_reason(target, 0)
            if reason == REASON_PREFIX:
                # The redirect leaves the crawl space: log it the way an
                # off-prefix link would be logged, but do not crawl on.
                self.rejected.append(
                    _link_record(target, current, REASON_PREFIX))
                return None, current
            if self._robots_blocked(target):
                # Compliance survives indirection: a redirect into a
                # disallowed area must not be followed either.
                self.rejected.append(
                    _link_record(target, current, REASON_ROBOTS))
                return None, current
            self.visited.add(target)
            self.redirects_followed += 1
            current = target
            response = self.http.get(current)

    # -- the crawl ----------------------------------------------------------------------

    def run(self):
        """Crawl depth-first from the start URL; returns the result dict."""
        start = join_url(self.config.start_url, "")
        if start is None:
            start = self.config.start_url
        stack = [(start, 0, "<start>")]
        while stack:
            url, depth, referrer = stack.pop()
            if url in self.visited:
                continue
            reason = self._constraint_reason(url, depth)
            if reason is not None:
                self.rejected.append(_link_record(url, referrer, reason))
                continue
            if self._robots_blocked(url):
                self.rejected.append(
                    _link_record(url, referrer, REASON_ROBOTS))
                continue
            self.visited.add(url)
            response, final_url = self._fetch(url, referrer)
            if response is None:
                continue
            status = getattr(response, "status", STATUS_CONNECT_FAILED)
            if not getattr(response, "ok", False):
                self.invalid.append(
                    _link_record(url, referrer, "http", status=status))
                continue
            body = getattr(response, "body", "") or ""
            self.pages_scanned += 1
            self.bytes_scanned += len(body.encode("utf-8"))
            self.max_depth_seen = max(self.max_depth_seen, depth)
            content_type = getattr(response, "content_type", "text/html") \
                or "unknown"
            self.content_type_counts[content_type] = \
                self.content_type_counts.get(content_type, 0) + 1
            age = getattr(response, "age_days", None)
            if age is not None:
                self._age_samples.append(age)
            if not content_type.startswith("text/html"):
                continue  # assets are counted and typed, never parsed
            children = []
            for raw in extract_links(body):
                self.links_seen += 1
                child = join_url(final_url, raw)
                if child is None:
                    self.rejected.append(
                        _link_record(raw, url, REASON_SCHEME))
                    continue
                if child not in self.visited:
                    children.append((child, depth + 1, url))
            # Reversed push keeps document order on a LIFO stack.
            stack.extend(reversed(children))
        return self.result()

    def result(self):
        """The crawl statistics as a plain JSON-able dict."""
        return {
            "version": WEBBOT_VERSION,
            "start_url": self.config.start_url,
            "prefix": self.config.prefix,
            "max_depth": self.config.max_depth,
            "pages_scanned": self.pages_scanned,
            "bytes_scanned": self.bytes_scanned,
            "links_seen": self.links_seen,
            "max_depth_seen": self.max_depth_seen,
            "redirects_followed": self.redirects_followed,
            "status_counts": dict(self.status_counts),
            "content_types": dict(self.content_type_counts),
            "age_days": {
                "min": min(self._age_samples),
                "max": max(self._age_samples),
                "mean": sum(self._age_samples) / len(self._age_samples),
            } if self._age_samples else None,
            "invalid": list(self.invalid),
            "rejected": list(self.rejected),
        }


def run_webbot(args, env):
    """Binary-style entry point: ``args`` is a plain dict, ``env`` provides
    the execution environment (must expose ``env.http``).

    This is the function the mobility wrapper invokes through ``ag_exec``,
    playing the role of ``main(argc, argv)`` in the real C binary.
    """
    config = WebbotConfig.from_dict(args)
    robot = Webbot(config, env.http)
    return robot.run()
