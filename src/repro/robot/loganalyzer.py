"""A stationary access-log analyzer (a second non-mobile mining program).

The paper claims the wrapper approach works for "a general class of
stationary data mining applications that need to be close to their data
source" — not just link-checking robots.  This module is a second such
application with a completely different shape: it downloads a web
server's access log (Common Log Format) and aggregates it into a small
statistics record.  The condensation ratio is extreme — megabytes of
log lines reduce to a few hundred bytes of aggregates — which is the
best case for the paper's move-the-computation argument (experiment D1).

Like :mod:`repro.robot.webbot`, this module is deliberately
self-contained (stdlib only, duck-typed HTTP client via ``env.http``),
so the mobility wrapper can ship its source by value, unchanged.
"""

LOGANALYZER_VERSION = "repro-loganalyzer/1.0"


def parse_log_line(line):
    """One Common Log Format line -> dict, or None if malformed.

    Format: ``host ident user [timestamp] "METHOD path HTTP/1.0" status
    bytes``.
    """
    try:
        head, _bracket, rest = line.partition("[")
        host = head.split()[0]
        timestamp, _close, rest = rest.partition("] ")
        if not rest.startswith('"'):
            return None
        request, _quote, tail = rest[1:].partition('" ')
        parts = request.split()
        if len(parts) < 2:
            return None
        method, path = parts[0], parts[1]
        tail_parts = tail.split()
        status = int(tail_parts[0])
        size = 0 if tail_parts[1] == "-" else int(tail_parts[1])
        return {"host": host, "time": timestamp, "method": method,
                "path": path, "status": status, "bytes": size}
    except (IndexError, ValueError):
        return None


def analyze_log(text, top_k=10):
    """Aggregate a whole log into a compact statistics dict."""
    hits = 0
    malformed = 0
    bytes_served = 0
    status_counts = {}
    page_hits = {}
    visitors = set()
    error_paths = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        record = parse_log_line(line)
        if record is None:
            malformed += 1
            continue
        hits += 1
        bytes_served += record["bytes"]
        status = str(record["status"])
        status_counts[status] = status_counts.get(status, 0) + 1
        page_hits[record["path"]] = page_hits.get(record["path"], 0) + 1
        visitors.add(record["host"])
        if record["status"] >= 400:
            error_paths[record["path"]] = \
                error_paths.get(record["path"], 0) + 1

    def top(counter):
        # Lists, not tuples: results must be identical after a JSON
        # round trip through a briefcase.
        ranked = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))
        return [[path, count] for path, count in ranked[:top_k]]

    return {
        "version": LOGANALYZER_VERSION,
        "hits": hits,
        "malformed": malformed,
        "bytes_served": bytes_served,
        "unique_visitors": len(visitors),
        "status_counts": status_counts,
        "top_pages": top(page_hits),
        "top_error_paths": top(error_paths),
    }


def run_log_analysis(args, env):
    """Binary-style entry point: fetch the log over HTTP and mine it.

    ``args``: ``{"log_url": ..., "top_k": 10}``.  When the program runs
    at the server itself the fetch crosses only the loopback link; when
    it runs at the client the whole log crosses the network — exactly
    the contrast of the Webbot experiment, with a far bigger
    condensation ratio.
    """
    response = env.http.get(args["log_url"])
    if not getattr(response, "ok", False):
        raise ValueError(
            f"could not fetch log {args['log_url']}: "
            f"status {getattr(response, 'status', 0)}")
    body = getattr(response, "body", "") or ""
    result = analyze_log(body, top_k=args.get("top_k", 10))
    result["log_url"] = args["log_url"]
    result["log_bytes"] = len(body.encode("utf-8"))
    return result
