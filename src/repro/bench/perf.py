"""Hot-path microbenchmark harness: ``repro perf --json BENCH_perf.json``.

Measures the optimised codec/kernel paths against the pre-optimisation
baselines **in the same process and the same file**, so every
``BENCH_perf.json`` records its own before/after:

- ``codec_decode`` — the allocation-lean decoder vs the reference
  cursor decoder (:func:`repro.core.codec.set_fast_paths`);
- ``codec_encode_cold`` — a cache-miss encode vs the uncached encode
  (sanity row: the two do essentially the same work);
- ``codec_hop_accounting`` — one hop's worth of byte-accounting
  (admission ``encoded_size`` + wire ``encode`` + telemetry
  ``encoded_size``) with and without the per-briefcase encoding cache;
- ``kernel_dispatch`` — the sorted-batch drain over ``__slots__``
  events vs a faithful in-file replica of the pre-optimisation kernel
  (dict-based event classes, per-event :meth:`step` call — see
  :class:`_BaselineKernel`, transcribed from the original source);
- ``e1_end_to_end`` — experiment E1 wall time with every fast path on
  vs every fast path off;
- ``telemetry_codec_roundtrip`` — the raw-wire cost of causal trace
  propagation: encode/decode with the reserved ``TRACE-CONTEXT`` folder
  injected and re-extracted vs the same round trip without it;
- ``telemetry_kernel_drain`` — the timeout-drain workload on a kernel
  with telemetry *enabled* (per-event counters, no fast drain) vs the
  default disabled kernel, quantifying what the no-op path saves.

The codec baseline legs run the *actual* old code (the reference
decoder and uncached encoder are kept in ``codec.py`` behind
:func:`~repro.core.codec.set_fast_paths`).  The kernel baseline cannot
be flag-selected that way — the optimisation includes ``__slots__`` on
the event classes themselves — so the pre-optimisation kernel is
replicated here verbatim instead.

Besides timings (which vary run to run), the harness emits a
**semantics document** on stdout that is a pure function of the seed:
digests of the E1 report under both regimes, a codec round-trip digest,
kernel event counts, and a coalescing determinism check.  CI runs the
command twice and diffs the two stdout documents byte-for-byte; the
command itself exits non-zero if any fast path changed observable
behaviour (e.g. the E1 report differs from the non-optimised path).

Wall-clock timing is inherently noisy; medians over ``--repeats``
samples are reported, and every sample times only its region of
interest (workload construction is excluded).  The speedup floors
asserted in this repo's acceptance (≥1.5× on ``codec_decode`` and
``kernel_dispatch``) hold with comfortable margin on CPython 3.10+.
"""

from __future__ import annotations

import gc
import hashlib
import heapq  # lint: disable=KER001 - pre-optimisation kernel replica
import json
import random
import statistics
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.sim import eventloop
from repro.sim.eventloop import Kernel
from repro.sim.network import Network

__all__ = ["run_perf", "render_semantics_json", "fast_paths",
           "make_codec_workload", "build_document",
           "build_profile_document", "semantics_ok",
           "PROFILE_NAMES", "PROFILE_DESCRIPTIONS"]

PROFILE_NAMES = ("full", "quick")

PROFILE_DESCRIPTIONS = {
    "full": "the full workloads and repeat counts (the tracked "
            "BENCH_perf.json numbers)",
    "quick": "smaller workloads / fewer repeats (the CI smoke)",
}


@contextmanager
def fast_paths(enabled: bool):
    """Run a block with every hot-path optimisation on or off at once
    (codec fast decoder + encoding cache, kernel fast drain)."""
    prior_codec = codec.set_fast_paths(enabled)
    prior_kernel = eventloop.set_fast_dispatch(enabled)
    try:
        yield
    finally:
        codec.set_fast_paths(prior_codec)
        eventloop.set_fast_dispatch(prior_kernel)


# -- replicated pre-optimisation kernel (the honest "before") ---------------------
#
# Transcribed from the pre-optimisation eventloop: no __slots__ (every
# event carries an instance __dict__), Timeout._fire delegating to
# _run_callbacks, and a run() loop that peeks the heap and calls step()
# once per event.  Only what the timeout-drain workload exercises is
# replicated; processes/AnyOf/AllOf are not needed for this benchmark.

_B_PENDING = object()


class _BaselineEvent:
    def __init__(self, kernel):
        self.kernel = kernel
        self.callbacks = []
        self._value = _B_PENDING
        self._exception = None

    def _run_callbacks(self):
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def _fire(self):
        self._run_callbacks()


class _BaselineTimeout(_BaselineEvent):
    def __init__(self, kernel, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._deferred_value = value
        kernel._post(self, delay=delay)

    def _fire(self):
        if self._value is _B_PENDING and self._exception is None:
            self._value = self._deferred_value
        self._run_callbacks()


class _BaselineTelemetry:
    enabled = False


class _BaselineKernel:
    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._sequence = 0
        self.processed_events = 0
        self.telemetry = _BaselineTelemetry()

    @property
    def now(self):
        return self._now

    def _post(self, event, delay=0.0):
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def timeout(self, delay, value=None):
        return _BaselineTimeout(self, delay, value)

    def step(self):
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise RuntimeError("event scheduled in the past")
        self._now = when
        self.processed_events += 1
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.inc("kernel.events_dispatched")
            metrics.set_gauge("kernel.heap_depth", len(self._heap))
        event._fire()

    def run(self):
        while self._heap:
            when = self._heap[0][0]  # noqa: F841 - pre-PR peek, kept verbatim
            self.step()
        return self._now


# -- workloads --------------------------------------------------------------------


def make_codec_workload(folders: int = 48, elements: int = 48,
                        element_size: int = 48) -> Briefcase:
    """A deterministic mid-sized briefcase (defaults: ~120 kB wire)."""
    briefcase = Briefcase()
    for f in range(folders):
        folder = briefcase.folder(f"FOLDER-{f:04d}")
        for e in range(elements):
            payload = bytes((f * 131 + e * 17 + i) % 256
                            for i in range(element_size))
            folder.push(payload)
    return briefcase


def _timer_delays(n_events: int, seed: int) -> List[float]:
    """Shuffled delays: fair to both legs (the sorted-batch drain must
    pay a real sort, the heap baseline real sift-downs)."""
    rng = random.Random(seed)
    return [rng.random() * 100.0 for _ in range(n_events)]


# -- measurement ------------------------------------------------------------------


def _median_seconds(sample: Callable[[], float], repeats: int) -> float:
    """Median of ``repeats`` samples; each sample times itself.

    Garbage from the previous sample is collected before each run so no
    leg pays for its predecessor's dead objects inside the timed region.
    """
    times = []
    for _ in range(repeats):
        gc.collect()
        times.append(sample())
    return statistics.median(times)


def _bench_pair(name: str, baseline: Callable[[], float],
                fast: Callable[[], float], repeats: int,
                workload: Dict) -> Dict:
    # Interleave a warm-up of each leg so allocator/caches are equally hot.
    baseline()
    fast()
    baseline_median = _median_seconds(baseline, repeats)
    fast_median = _median_seconds(fast, repeats)
    return {
        "name": name,
        "baseline_median_s": baseline_median,
        "fast_median_s": fast_median,
        "speedup": (baseline_median / fast_median
                    if fast_median > 0 else None),
        "repeats": repeats,
        "workload": workload,
    }


def _canonical(document) -> str:
    return json.dumps(document, indent=2, sort_keys=True)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- the suite --------------------------------------------------------------------


def _bench_codec(repeats: int, inner: int) -> List[Dict]:
    briefcase = make_codec_workload()
    with fast_paths(False):
        wire = codec.encode(briefcase)
    workload = {"folders": 48, "elements_per_folder": 48,
                "element_bytes": 48, "wire_bytes": len(wire),
                "inner_iterations": inner}
    rows = []

    def decode_leg(enabled: bool) -> Callable[[], float]:
        def sample() -> float:
            with fast_paths(enabled):
                start = time.perf_counter()
                for _ in range(inner):
                    codec.decode(wire)
                return time.perf_counter() - start
        return sample

    rows.append(_bench_pair("codec_decode", decode_leg(False),
                            decode_leg(True), repeats, workload))

    def encode_cold_leg(enabled: bool) -> Callable[[], float]:
        def sample() -> float:
            with fast_paths(enabled):
                start = time.perf_counter()
                for _ in range(inner):
                    # Mutate first so the fast leg cannot hit its cache:
                    # this row measures the cold encode itself.
                    briefcase.folder("FOLDER-0000").push(b"x")
                    briefcase.folder("FOLDER-0000").pop_last()
                    codec.encode(briefcase)
                return time.perf_counter() - start
        return sample

    rows.append(_bench_pair("codec_encode_cold", encode_cold_leg(False),
                            encode_cold_leg(True), repeats, workload))

    def hop_leg(enabled: bool) -> Callable[[], float]:
        def sample() -> float:
            with fast_paths(enabled):
                start = time.perf_counter()
                for _ in range(inner):
                    # One hop's byte-accounting: governor admission,
                    # the wire image, telemetry accounting.  The fast
                    # leg pays one encode; the baseline re-walks the
                    # briefcase three times.
                    briefcase.folder("FOLDER-0000").push(b"x")
                    briefcase.folder("FOLDER-0000").pop_last()
                    codec.encoded_size(briefcase)
                    codec.encode(briefcase)
                    codec.encoded_size(briefcase)
                return time.perf_counter() - start
        return sample

    rows.append(_bench_pair("codec_hop_accounting", hop_leg(False),
                            hop_leg(True), repeats, workload))
    return rows


def _bench_kernel(repeats: int, n_events: int, seed: int) -> Dict:
    delays = _timer_delays(n_events, seed)
    workload = {"events": n_events, "kind": "shuffled-timeout-drain",
                "seed": seed}

    def baseline() -> float:
        kernel = _BaselineKernel()
        for delay in delays:
            kernel.timeout(delay)
        start = time.perf_counter()
        kernel.run()
        return time.perf_counter() - start

    def fast() -> float:
        kernel = Kernel()
        for delay in delays:
            kernel.timeout(delay)
        with fast_paths(True):
            start = time.perf_counter()
            kernel.run()
            return time.perf_counter() - start

    return _bench_pair("kernel_dispatch", baseline, fast, repeats, workload)


def _bench_telemetry(repeats: int, inner: int, n_events: int,
                     seed: int) -> List[Dict]:
    """Telemetry-on vs telemetry-off: what does observability cost?

    Baseline legs run *with* telemetry (the slower regime), fast legs
    without, so ``speedup`` reads as "turning telemetry off buys this
    much".  The codec pair also exercises the propagation folder —
    inject + encode + decode + extract — because that is the only wire
    cost tracing can ever add.
    """
    from repro.obs.propagation import TraceIdAllocator, extract, inject
    from repro.obs.telemetry import Telemetry

    rows = []
    briefcase = make_codec_workload()
    context = TraceIdAllocator().root()
    with fast_paths(True):
        wire = codec.encode(briefcase)
    workload = {"folders": 48, "elements_per_folder": 48,
                "element_bytes": 48, "wire_bytes": len(wire),
                "inner_iterations": inner}

    def codec_leg(traced: bool) -> Callable[[], float]:
        def sample() -> float:
            with fast_paths(True):
                start = time.perf_counter()
                for _ in range(inner):
                    if traced:
                        inject(briefcase, context)
                    decoded = codec.decode(codec.encode(briefcase))
                    if traced:
                        extract(decoded)
                        extract(briefcase)  # restore the workload
                return time.perf_counter() - start
        return sample

    rows.append(_bench_pair("telemetry_codec_roundtrip",
                            codec_leg(True), codec_leg(False),
                            repeats, workload))

    delays = _timer_delays(n_events, seed)
    kernel_workload = {"events": n_events,
                       "kind": "shuffled-timeout-drain", "seed": seed}

    def drain_leg(enabled: bool) -> Callable[[], float]:
        def sample() -> float:
            kernel = Kernel(telemetry=Telemetry(enabled=enabled))
            for delay in delays:
                kernel.timeout(delay)
            with fast_paths(True):
                start = time.perf_counter()
                kernel.run()
                return time.perf_counter() - start
        return sample

    rows.append(_bench_pair("telemetry_kernel_drain", drain_leg(True),
                            drain_leg(False), repeats, kernel_workload))
    return rows


def _e1_report_dict(seed: int, telemetry: bool) -> Dict:
    from repro.bench.experiments import run_e1
    from repro.bench.runner import _report_to_dict

    return _report_to_dict(run_e1(seed=seed, telemetry=telemetry))


def _bench_e1(seed: int, repeats: int) -> Dict:
    def leg(enabled: bool) -> Callable[[], float]:
        def sample() -> float:
            with fast_paths(enabled):
                start = time.perf_counter()
                _e1_report_dict(seed, telemetry=False)
                return time.perf_counter() - start
        return sample

    return _bench_pair("e1_end_to_end", leg(False), leg(True),
                       repeats, {"seed": seed, "telemetry": False})


def _coalescing_determinism_digest() -> str:
    """Run the same coalesced burst twice; digest both outcomes.

    The digest covers completion times and link accounting of two
    independent runs, so any nondeterminism in the coalescing rule shows
    up as a digest change between invocations (CI diffs stdout) and as
    an internal mismatch (checked here).
    """
    outcomes = []
    for _ in range(2):
        kernel = Kernel()
        network = Network(kernel)
        network.link("a", "b", latency=0.05, bandwidth=10_000.0)
        network.configure_coalescing(True)
        done: List = []

        def sender(n):
            seconds = yield from network.transfer("a", "b", n)
            done.append((round(kernel.now, 9), round(seconds, 9), n))

        for size in (100, 300, 50, 700, 200):
            kernel.spawn(sender(size))
        kernel.run()
        stats = network.stats_between("a", "b")
        outcomes.append({
            "completions": sorted(done),
            "messages": stats.messages,
            "payload_bytes": stats.payload_bytes,
            "busy_seconds": round(stats.busy_seconds, 9),
            "coalesced": network.coalesced_messages,
        })
    if outcomes[0] != outcomes[1]:
        raise AssertionError(
            f"coalescing is nondeterministic: {outcomes[0]} != {outcomes[1]}")
    return _sha256(_canonical(outcomes[0]))


def _telemetry_semantics() -> Dict:
    """Prove telemetry is a pure observer: the traced quickstart run
    with telemetry enabled and disabled must move the same bytes over
    the same links and finish at the same virtual instant — tracing
    rides the message envelope, never the wire."""
    from repro.obs.demo import run_traced_quickstart
    from repro.obs.telemetry import Telemetry

    runs = {}
    for label, enabled in (("on", True), ("off", False)):
        cluster, result = run_traced_quickstart(
            telemetry=Telemetry(enabled=enabled))
        runs[label] = {
            "remote_bytes": cluster.network.total_remote_bytes(),
            "remote_messages": cluster.network.total_remote_messages(),
            "final_now": round(cluster.kernel.now, 9),
            "greetings": len(result.folder("GREETINGS").texts()),
        }
    return {
        "on": runs["on"],
        "off": runs["off"],
        "wire_identical":
            runs["on"]["remote_bytes"] == runs["off"]["remote_bytes"],
        "runs_identical": runs["on"] == runs["off"],
    }


def _semantics(seed: int) -> Dict:
    """Everything here must be a pure function of ``seed``."""
    briefcase = make_codec_workload()
    with fast_paths(False):
        wire = codec.encode(briefcase)
        reference = codec.decode(wire)
        reference_wire = codec.encode(reference)
    with fast_paths(True):
        fast_decoded = codec.decode(wire)
        fast_wire = codec.encode(fast_decoded)
    delays = _timer_delays(10_000, seed)
    kernel_counts = {}
    for label, enabled in (("baseline", False), ("fast", True)):
        kernel = Kernel()
        for delay in delays:
            kernel.timeout(delay)
        with fast_paths(enabled):
            kernel.run()
        kernel_counts[label] = {
            "processed_events": kernel.processed_events,
            "final_now": round(kernel.now, 9),
        }
    with fast_paths(True):
        e1_fast = _canonical(_e1_report_dict(seed, telemetry=False))
        e1_fast_telemetry = _canonical(
            _e1_report_dict(seed, telemetry=True))
    with fast_paths(False):
        e1_baseline = _canonical(_e1_report_dict(seed, telemetry=False))
        e1_baseline_telemetry = _canonical(
            _e1_report_dict(seed, telemetry=True))
    return {
        "schema": "repro-perf-semantics/1",
        "seed": seed,
        "codec": {
            "wire_sha256": _sha256(wire.hex()),
            "roundtrip_identical": (reference_wire == wire
                                    and fast_wire == wire),
            "decoders_agree": fast_decoded == reference,
        },
        "kernel": kernel_counts,
        "kernel_regimes_agree":
            kernel_counts["baseline"] == kernel_counts["fast"],
        "e1": {
            "report_sha256_fast": _sha256(e1_fast),
            "report_sha256_baseline": _sha256(e1_baseline),
            "reports_identical": e1_fast == e1_baseline,
            "telemetry_report_sha256_fast": _sha256(e1_fast_telemetry),
            "telemetry_report_sha256_baseline":
                _sha256(e1_baseline_telemetry),
            "telemetry_reports_identical":
                e1_fast_telemetry == e1_baseline_telemetry,
        },
        "coalescing_digest": _coalescing_determinism_digest(),
        "telemetry": _telemetry_semantics(),
    }


def build_document(seed: int = 2000, repeats: int = 5,
                   inner: int = 20, kernel_events: int = 30_000,
                   e1_repeats: int = 2) -> Dict:
    """Run the full suite; returns the BENCH_perf document."""
    wall_start = time.perf_counter()
    benchmarks: Dict[str, Dict] = {}
    for row in _bench_codec(repeats, inner):
        benchmarks[row.pop("name")] = row
    row = _bench_kernel(repeats, kernel_events, seed)
    benchmarks[row.pop("name")] = row
    row = _bench_e1(seed, e1_repeats)
    benchmarks[row.pop("name")] = row
    for row in _bench_telemetry(repeats, inner, kernel_events, seed):
        benchmarks[row.pop("name")] = row
    semantics = _semantics(seed)
    return {
        "schema": "repro-perf/1",
        "seed": seed,
        "benchmarks": benchmarks,
        "semantics": semantics,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def semantics_ok(document: Dict) -> bool:
    semantics = document["semantics"]
    return bool(semantics["codec"]["roundtrip_identical"]
                and semantics["codec"]["decoders_agree"]
                and semantics["kernel_regimes_agree"]
                and semantics["e1"]["reports_identical"]
                and semantics["e1"]["telemetry_reports_identical"]
                and semantics["telemetry"]["wire_identical"]
                and semantics["telemetry"]["runs_identical"])


def render_semantics_json(document: Dict) -> str:
    """The deterministic part of the document (what CI diffs)."""
    return _canonical(document["semantics"])


def build_profile_document(seed: int = 2000, profile: str = "full",
                           repeats: int = 5) -> Dict:
    """Run the suite under a named profile; an unknown profile raises
    ``ValueError`` (the shared ``--list``/unknown-name CLI contract)."""
    if profile not in PROFILE_NAMES:
        raise ValueError(f"unknown perf profile {profile!r} "
                         f"(have {list(PROFILE_NAMES)})")
    if profile == "quick":
        return build_document(seed=seed, repeats=max(2, repeats // 2),
                              inner=5, kernel_events=10_000,
                              e1_repeats=1)
    return build_document(seed=seed, repeats=repeats)


def print_medians(document: Dict, stream=None) -> None:
    """The human-readable medians table (stderr on the CLI)."""
    import sys

    stream = stream or sys.stderr
    for name, row in document["benchmarks"].items():
        print(f"{name:22s} baseline {row['baseline_median_s']*1e3:9.2f}ms"
              f"  fast {row['fast_median_s']*1e3:9.2f}ms"
              f"  speedup {row['speedup']:5.2f}x", file=stream)
    print(f"semantics: {'ok' if semantics_ok(document) else 'MISMATCH'} "
          f"({document['wall_seconds']:.1f}s wall)", file=stream)


def write_document(document: Dict, json_path: str) -> None:
    """Write the full timings document (raises ``OSError`` on failure)."""
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(_canonical(document) + "\n")


def run_perf(seed: int = 2000, repeats: int = 5, quick: bool = False,
             json_path: Optional[str] = None) -> int:
    """Library entry: run the suite, write ``json_path``, print semantics.

    stdout carries only the canonical semantics JSON (byte-identical
    across runs with the same seed — CI diffs it); the human-readable
    medians table goes to stderr.  Returns a non-zero exit code if any
    fast path changed observable behaviour.  (``repro perf`` routes the
    same pieces through the shared named-scenario CLI plumbing.)
    """
    import sys

    document = build_profile_document(
        seed=seed, profile="quick" if quick else "full", repeats=repeats)
    print_medians(document)
    ok = semantics_ok(document)
    if json_path:
        try:
            write_document(document, json_path)
        except OSError as exc:
            print(f"cannot write {json_path}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {json_path}", file=sys.stderr)
    print(render_semantics_json(document))
    return 0 if ok else 1
