"""The experiment suite: every quantitative artifact of the paper.

Each ``run_*`` function builds a fresh testbed, runs the strategies, and
returns an :class:`~repro.bench.metrics.ExperimentReport` with the rows
the paper reports (or implies) plus explicit paper-vs-measured claims.
See DESIGN.md section 2 for the experiment inventory.

All experiments are deterministic (seeded sites, virtual time).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.metrics import ExperimentReport
from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.mining.strategies import (
    CrawlTask,
    RunMetrics,
    run_mobile,
    run_repeated_remote,
    run_stationary,
)
from repro.mining.webbot_agent import WEBBOT_PRINCIPAL
from repro.sim.network import (
    BANDWIDTH_1MBIT,
    BANDWIDTH_10MBIT,
    BANDWIDTH_100MBIT,
    LATENCY_LAN,
    LATENCY_METRO,
    LATENCY_WAN,
)
from repro.system.bootstrap import (
    build_campus_testbed,
    build_linkcheck_testbed,
)
from repro.vm import loader
from repro.web.site import SiteSpec, paper_site_spec
from repro.wrappers.logwrap import LoggingWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers

#: Mean page size of the paper workload (3 MB / 917 pages).
PAPER_BYTES_PER_PAGE = 3_000_000 // 917

#: Network conditions for the E2 sweep: (label, bandwidth B/s, latency s).
E2_NETWORKS: List[Tuple[str, float, float]] = [
    ("100Mbit-LAN", BANDWIDTH_100MBIT, LATENCY_LAN),
    ("10Mbit-metro", BANDWIDTH_10MBIT, LATENCY_METRO),
    ("2Mbit-regional", 2_000_000 / 8, 0.020),
    ("1Mbit-WAN", BANDWIDTH_1MBIT, LATENCY_WAN),
    ("512Kbit-WAN", 512_000 / 8, 0.100),
]

#: Page counts for the E3 volume sweep.
E3_VOLUMES = (10, 50, 150, 450, 917, 1500)


def _task_for(testbed, host: str, check_rejected: bool = True,
              max_depth: int = 12) -> CrawlTask:
    return CrawlTask.for_site(testbed.site_of(host), max_depth=max_depth,
                              check_rejected=check_rejected)


def _speedup(stationary: RunMetrics, mobile: RunMetrics) -> float:
    return stationary.elapsed_seconds / mobile.elapsed_seconds


# -- E1: the Section-5 headline experiment -----------------------------------------


def run_e1(seed: int = 2000, telemetry: bool = False) -> ExperimentReport:
    """917 pages / 3 MB on a 100 Mbit LAN: mobile vs stationary Webbot.

    With ``telemetry=True`` each mode runs under an enabled
    :class:`~repro.obs.telemetry.Telemetry` and the report's extras gain
    a per-mode metrics snapshot (``extras["telemetry"][mode]``).
    """
    from repro.obs.telemetry import Telemetry

    report = ExperimentReport(
        "E1", "Section 5: local (mobile) vs remote (stationary) Webbot "
        "scan of 917 pages / 3 MB over 100 Mbit")
    report.headers = ["mode", "strategy", "elapsed_s", "remote_bytes",
                      "pages", "dead_links"]

    ratios: Dict[str, float] = {}
    snapshots: Dict[str, dict] = {}
    for mode, check_rejected in (("full-task", True), ("scan-only", False)):
        hub = Telemetry(enabled=True) if telemetry else None
        testbed = build_linkcheck_testbed(spec=paper_site_spec(seed=seed),
                                          telemetry=hub)
        task = _task_for(testbed, "www.cs.uit.no",
                         check_rejected=check_rejected)
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])
        for metrics in (stationary, mobile):
            report.add_row(mode, metrics.strategy, metrics.elapsed_seconds,
                           metrics.remote_bytes, metrics.pages_scanned,
                           metrics.dead_links_found)
        ratios[mode] = _speedup(stationary, mobile)
        if hub is not None:
            snapshots[mode] = hub.snapshot()
        if stationary.dead_links_found != mobile.dead_links_found:
            report.add_claim(
                "both deployments find the same dead links",
                f"stationary={stationary.dead_links_found} "
                f"mobile={mobile.dead_links_found}", False)

    if snapshots:
        report.extras["telemetry"] = snapshots
    full = ratios["full-task"]
    report.extras["ratio_full_task"] = full
    report.extras["ratio_scan_only"] = ratios["scan-only"]
    report.add_claim(
        "executing the scan locally is 16% faster than over a "
        "100 Mbit network (ratio 1.16)",
        f"full-task ratio {full:.3f} "
        f"(scan-only {ratios['scan-only']:.3f})",
        1.05 <= full <= 1.35)
    return report


# -- E2: WAN sweep -----------------------------------------------------------------------


def run_e2(seed: int = 2000,
           networks: Optional[Sequence[Tuple[str, float, float]]] = None
           ) -> ExperimentReport:
    """'If the client and server is separated by a wide area network ...
    the mobile Webbot would be even faster.'"""
    report = ExperimentReport(
        "E2", "Section 5 claim: the mobile agent's advantage grows as "
        "the network slows (LAN -> WAN sweep)")
    report.headers = ["network", "stationary_s", "mobile_s", "speedup"]
    speedups: List[float] = []
    for label, bandwidth, latency in (networks or E2_NETWORKS):
        testbed = build_linkcheck_testbed(
            spec=paper_site_spec(seed=seed),
            bandwidth=bandwidth, latency=latency)
        task = _task_for(testbed, "www.cs.uit.no")
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])
        speedup = _speedup(stationary, mobile)
        speedups.append(speedup)
        report.add_row(label, stationary.elapsed_seconds,
                       mobile.elapsed_seconds, speedup)
    report.extras["speedups"] = speedups
    monotone = all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))
    report.add_claim(
        "mobile speedup grows monotonically as bandwidth falls / "
        "latency rises",
        f"speedups {['%.2f' % s for s in speedups]}",
        monotone and speedups[-1] > speedups[0] * 1.5)
    return report


# -- E3: volume sweep --------------------------------------------------------------------------


def run_e3(seed: int = 2000,
           volumes: Sequence[int] = E3_VOLUMES,
           bandwidth: float = BANDWIDTH_100MBIT,
           latency: float = LATENCY_LAN) -> ExperimentReport:
    """'... and the volume of data much greater': gain vs site size."""
    report = ExperimentReport(
        "E3", "Section 5 claim: the mobile agent's advantage grows with "
        "the data volume (page-count sweep at fixed network)")
    report.headers = ["pages", "site_bytes", "stationary_s", "mobile_s",
                      "speedup", "mobile_remote_bytes"]
    speedups: List[float] = []
    for n_pages in volumes:
        spec = SiteSpec(
            host="www.cs.uit.no", n_pages=n_pages,
            total_bytes=max(n_pages * PAPER_BYTES_PER_PAGE, n_pages * 256),
            external_hosts=("www.w3.org", "www.cornell.edu"),
            external_dead_fraction=0.12, seed=seed)
        testbed = build_linkcheck_testbed(spec=spec, bandwidth=bandwidth,
                                          latency=latency)
        task = _task_for(testbed, "www.cs.uit.no")
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])
        speedup = _speedup(stationary, mobile)
        speedups.append(speedup)
        report.add_row(n_pages, testbed.site_of("www.cs.uit.no").total_bytes,
                       stationary.elapsed_seconds, mobile.elapsed_seconds,
                       speedup, mobile.remote_bytes)
    report.extras["speedups"] = speedups
    report.add_claim(
        "the gain grows with the mined volume (shipping the agent barely "
        "pays at small volumes, clearly pays at the paper's scale)",
        f"speedup smallest={speedups[0]:.3f} largest={speedups[-1]:.3f}",
        speedups[-1] > speedups[0] and speedups[-1] > 1.05)
    return report


# -- E4: itinerant multi-host audit ----------------------------------------------------------------


def run_e4(n_servers: int = 4, pages_per_server: int = 200,
           seed: int = 2000) -> ExperimentReport:
    """'If we were to check all the servers at the university campus ...
    Webbot needs to be run several times, and preferably relocated to a
    new host between each execution.'"""
    report = ExperimentReport(
        "E4", "Section 5 scenario: auditing a whole campus — itinerant "
        "agent vs repeated remote crawls from a distant client")
    report.headers = ["strategy", "elapsed_s", "remote_bytes", "pages",
                      "dead_links", "hops_or_crawls"]

    def fresh():
        return build_campus_testbed(n_servers=n_servers,
                                    pages_per_server=pages_per_server,
                                    seed=seed)

    testbed = fresh()
    tasks = [CrawlTask.for_site(testbed.sites[name])
             for name in sorted(testbed.sites)]
    remote = run_repeated_remote(testbed, tasks)
    report.add_row(remote.strategy, remote.elapsed_seconds,
                   remote.remote_bytes, remote.pages_scanned,
                   remote.dead_links_found, len(tasks))

    testbed2 = fresh()
    tasks2 = [CrawlTask.for_site(testbed2.sites[name])
              for name in sorted(testbed2.sites)]
    itinerant = run_mobile(testbed2, tasks2)
    report.add_row(itinerant.strategy, itinerant.elapsed_seconds,
                   itinerant.remote_bytes, itinerant.pages_scanned,
                   itinerant.dead_links_found, len(tasks2))

    speedup = _speedup(remote, itinerant)
    report.extras["speedup"] = speedup
    report.add_claim(
        "one itinerant agent beats repeatedly crawling each server over "
        "the wide-area link",
        f"speedup {speedup:.2f}x, bytes {remote.remote_bytes:,d} -> "
        f"{itinerant.remote_bytes:,d}",
        speedup > 1.5 and itinerant.remote_bytes < remote.remote_bytes / 5
        and itinerant.dead_links_found == remote.dead_links_found)
    return report


# -- F3: the activation chain ---------------------------------------------------------------------


def _trivial_agent_source() -> str:
    return (
        "def chain_probe(ctx, bc):\n"
        "    home = bc.get_text('HOME')\n"
        "    out = bc.snapshot()\n"
        "    out.append('TRAIL', 'alive on ' + ctx.host_name)\n"
        "    yield from ctx.send(home, out)\n"
        "    return 'ok'\n")


def run_f3(seed: int = 2000) -> ExperimentReport:
    """Figure 3: latency of launching the same agent as py-ref /
    py-marshal / signed binary / source-via-compile-chain."""
    from repro.system.cluster import TaxCluster
    from repro.sim.network import LATENCY_LAN as _LAT

    report = ExperimentReport(
        "F3", "Figure 3: remote activation latency by payload kind "
        "(vm_python vs vm_bin vs the vm_source compile chain)")
    report.headers = ["payload", "vm", "launch_latency_s",
                      "payload_bytes", "chain_services_used"]

    cluster = TaxCluster()
    cluster.add_principal(WEBBOT_PRINCIPAL, trusted=True)
    client = cluster.add_node("client.uit.no")
    server = cluster.add_node("server.uit.no")
    cluster.network.link("client.uit.no", "server.uit.no",
                         latency=_LAT, bandwidth=BANDWIDTH_100MBIT)
    driver = client.driver(principal=WEBBOT_PRINCIPAL)

    source = _trivial_agent_source()
    namespace: dict = {}
    exec(compile(source, "<probe>", "exec"), namespace)  # noqa: S102
    probe_fn = namespace["chain_probe"]

    source_payload = loader.pack_source(source, "chain_probe")
    marshal_payload = loader.compile_source(source_payload)
    binary_payload = loader.pack_binary_list(
        [(server.host.arch, marshal_payload)],
        cluster.keychain, WEBBOT_PRINCIPAL)
    cases = [
        ("py-ref", "vm_python",
         loader.pack_ref("repro.bench.experiments:_noop_probe")),
        ("py-marshal", "vm_python", marshal_payload),
        ("binary(signed)", "vm_bin", binary_payload),
        ("py-source", "vm_source", source_payload),
    ]
    del probe_fn  # only needed to sanity-check the source compiles

    latencies: Dict[str, float] = {}
    for label, vm, payload in cases:
        briefcase = Briefcase()
        loader.install_payload(briefcase, payload, agent_name="probe")
        briefcase.put("HOME", str(driver.uri))

        def scenario(briefcase=briefcase, vm=vm):
            start = cluster.kernel.now
            reply = yield from driver.meet(
                cluster.vm_uri("server.uit.no", vm), briefcase, timeout=600)
            if reply.get_text(wellknown.STATUS) != "ok":
                raise AssertionError(reply.get_text(wellknown.ERROR))
            launch_latency = cluster.kernel.now - start
            yield from driver.recv(timeout=600)   # the probe's TRAIL report
            return launch_latency

        latency = cluster.run(scenario(), name=f"f3-{label}")
        latencies[label] = latency
        exec_uses = server.services["ag_exec"].executions
        cc_uses = server.services["ag_cc"].requests_handled
        report.add_row(label, vm, latency, payload.size,
                       f"ag_cc={cc_uses} ag_exec_runs={exec_uses}")

    report.extras["latencies"] = latencies
    report.add_claim(
        "the compile-at-destination chain (Figure 3) works and costs "
        "more than launching a pre-compiled payload",
        f"source {latencies['py-source']:.4f}s vs marshal "
        f"{latencies['py-marshal']:.4f}s",
        latencies["py-source"] > latencies["py-marshal"])
    report.add_claim(
        "signed-binary launch (vm_bin) is competitive with vm_python",
        f"binary {latencies['binary(signed)']:.4f}s vs marshal "
        f"{latencies['py-marshal']:.4f}s",
        latencies["binary(signed)"] <
        latencies["py-marshal"] * 3)
    return report


def _noop_probe(ctx, bc):
    """py-ref probe agent used by F3 (must be importable)."""
    home = bc.get_text("HOME")
    out = bc.snapshot()
    out.append("TRAIL", "alive on " + ctx.host_name)
    yield from ctx.send(home, out)
    return "ok"


# -- F5: wrapper stacking overhead ----------------------------------------------------------------


def _echo_agent(ctx, bc):
    """Replies to every meet until told to stop (F5 measurement target)."""
    while True:
        message = yield from ctx.recv()
        if message.briefcase.get_text(wellknown.OP) == "stop":
            return "stopped"
        response = Briefcase()
        response.put(wellknown.STATUS, "ok")
        yield from ctx.reply(message, response)


def run_f5(depths: Sequence[int] = (0, 1, 2, 4, 8),
           round_trips: int = 50) -> ExperimentReport:
    """Figure 5 / section 4: cost of stacking wrappers 'in arbitrary
    depth' — per-message overhead per layer."""
    from repro.system.cluster import TaxCluster

    report = ExperimentReport(
        "F5", "Wrapper stack ablation: meet() round-trip latency vs "
        "stack depth (logging wrappers)")
    report.headers = ["stack_depth", "mean_roundtrip_s", "overhead_vs_0"]

    means: List[float] = []
    for depth in depths:
        cluster = TaxCluster()
        node = cluster.add_node("host.uit.no")
        driver = node.driver()
        briefcase = Briefcase()
        loader.install_payload(
            briefcase, loader.pack_ref(_echo_agent), agent_name="echo")
        if depth:
            install_wrappers(briefcase, [
                WrapperSpec.by_ref(LoggingWrapper, {"trace": False})
                for _ in range(depth)])

        def scenario(briefcase=briefcase):
            reply = yield from driver.meet(
                cluster.vm_uri("host.uit.no"), briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok"
            echo_uri = reply.get_text("AGENT-URI")
            start = cluster.kernel.now
            for _ in range(round_trips):
                ping = Briefcase()
                yield from driver.meet(echo_uri, ping, timeout=60)
            elapsed = cluster.kernel.now - start
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            yield from driver.send(echo_uri, stop)
            return elapsed / round_trips

        mean = cluster.run(scenario(), name=f"f5-depth{depth}")
        means.append(mean)
        report.add_row(depth, mean, mean - means[0])

    report.extras["means"] = list(means)
    report.add_claim(
        "wrappers can be stacked in arbitrary depth at modest per-layer "
        "cost (deepest stack < 2x the bare agent)",
        f"depth0 {means[0] * 1000:.3f}ms -> depth{depths[-1]} "
        f"{means[-1] * 1000:.3f}ms",
        means[-1] < means[0] * 2.0 and
        all(b >= a * 0.999 for a, b in zip(means, means[1:])))
    return report


# -- A1: condensation ablation ----------------------------------------------------------------------


def run_a1(seed: int = 2000) -> ExperimentReport:
    """Section 1's premise: the win exists because mining *condenses*.
    Ablate the condensation step (ship raw crawl logs home instead)."""
    report = ExperimentReport(
        "A1", "Ablation: result condensation (dead-link report) vs "
        "shipping the raw crawl log, on a 1 Mbit WAN")
    report.headers = ["strategy", "elapsed_s", "remote_bytes", "dead_links"]

    rows: Dict[str, RunMetrics] = {}
    spec = paper_site_spec(seed=seed)
    for label, kwargs in (
            ("stationary", None),
            ("mobile-condensed", {"condense": True}),
            ("mobile-raw", {"condense": False})):
        testbed = build_linkcheck_testbed(
            spec=spec, bandwidth=BANDWIDTH_1MBIT, latency=LATENCY_WAN)
        task = _task_for(testbed, "www.cs.uit.no")
        if kwargs is None:
            metrics = run_stationary(testbed, [task])
        else:
            metrics = run_mobile(testbed, [task], **kwargs)
            metrics.strategy = label
        rows[label] = metrics
        dead = metrics.dead_links_found if label != "mobile-raw" else \
            sum(len(r.get("invalid", ())) +
                len(r.get("second_pass_invalid", ()))
                for r in metrics.reports)
        report.add_row(label, metrics.elapsed_seconds,
                       metrics.remote_bytes, dead)

    condensed = rows["mobile-condensed"]
    raw = rows["mobile-raw"]
    stationary = rows["stationary"]
    report.add_claim(
        "condensing before shipping saves bytes (briefcase state "
        "dropping, section 3.1)",
        f"condensed {condensed.remote_bytes:,d}B vs raw "
        f"{raw.remote_bytes:,d}B",
        condensed.remote_bytes < raw.remote_bytes)
    report.add_claim(
        "even the un-condensed mobile agent beats pulling raw pages",
        f"raw-mobile {raw.elapsed_seconds:.1f}s vs stationary "
        f"{stationary.elapsed_seconds:.1f}s",
        raw.elapsed_seconds < stationary.elapsed_seconds)
    return report


# -- E5: fork-join parallel audit (extension) -------------------------------------------------------


def run_e5(n_servers: int = 4, pages_per_server: int = 200,
           seed: int = 2000) -> ExperimentReport:
    """spawn()-based fan-out: one clone per campus server, crawling
    concurrently, vs the sequential itinerary of E4."""
    from repro.mining.parallel import run_parallel_mobile

    report = ExperimentReport(
        "E5", "Extension: fork-join parallel audit (spawn() per server) "
        "vs the sequential itinerary")
    report.headers = ["strategy", "elapsed_s", "remote_bytes", "pages",
                      "dead_links"]

    def fresh():
        return build_campus_testbed(n_servers=n_servers,
                                    pages_per_server=pages_per_server,
                                    seed=seed)

    testbed = fresh()
    tasks = [CrawlTask.for_site(testbed.sites[name])
             for name in sorted(testbed.sites)]
    sequential = run_mobile(testbed, tasks)
    report.add_row(sequential.strategy, sequential.elapsed_seconds,
                   sequential.remote_bytes, sequential.pages_scanned,
                   sequential.dead_links_found)

    testbed2 = fresh()
    tasks2 = [CrawlTask.for_site(testbed2.sites[name])
              for name in sorted(testbed2.sites)]
    parallel = run_parallel_mobile(testbed2, tasks2)
    report.add_row(parallel.strategy, parallel.elapsed_seconds,
                   parallel.remote_bytes, parallel.pages_scanned,
                   parallel.dead_links_found)

    speedup = sequential.elapsed_seconds / parallel.elapsed_seconds
    report.extras["speedup"] = speedup
    report.add_claim(
        "forking one clone per server turns the audit's completion time "
        "from the sum of the crawls into (roughly) the slowest one",
        f"parallel speedup {speedup:.2f}x over the itinerary "
        f"(ideal {n_servers}x minus fan-out overheads)",
        speedup > n_servers * 0.5 and
        parallel.dead_links_found == sequential.dead_links_found)
    return report


# -- D1: a second mining application under the same wrapper ------------------------------------------


def run_d1(seed: int = 2000,
           log_sizes: Sequence[int] = (2_000, 10_000, 50_000)
           ) -> ExperimentReport:
    """Generality: the access-log analyzer under the unchanged mobility
    wrapper, where condensation is extreme (megabytes of log lines ->
    a few hundred bytes of aggregates), over a 1 Mbit WAN."""
    from repro.mining.logmining import (
        generate_access_log,
        publish_log,
        run_log_mobile,
        run_log_stationary,
    )

    report = ExperimentReport(
        "D1", "Second stationary mining app (access-log analyzer) under "
        "the same wrapper: log-size sweep on a 1 Mbit WAN")
    report.headers = ["log_lines", "log_bytes", "stationary_s",
                      "mobile_s", "speedup", "mobile_remote_bytes"]

    speedups: List[float] = []
    agree = True
    for n_requests in log_sizes:
        spec = paper_site_spec(seed=seed)
        testbed = build_linkcheck_testbed(
            spec=spec, bandwidth=BANDWIDTH_1MBIT, latency=LATENCY_WAN)
        site = testbed.site_of(spec.host)
        log_text = generate_access_log(site, n_requests, seed=seed)
        publish_log(site, log_text)

        stationary = run_log_stationary(testbed, spec.host)
        mobile = run_log_mobile(testbed, spec.host)
        speedup = _speedup(stationary, mobile)
        speedups.append(speedup)
        s_stats = dict(stationary.reports[0])
        m_stats = dict(mobile.reports[0])
        if any(s_stats.get(key) != m_stats.get(key)
               for key in ("hits", "unique_visitors", "bytes_served",
                           "top_pages")):
            agree = False
        report.add_row(n_requests, len(log_text.encode()),
                       stationary.elapsed_seconds, mobile.elapsed_seconds,
                       speedup, mobile.remote_bytes)

    report.extras["speedups"] = speedups
    report.add_claim(
        "the wrapper mobilises a second, very different stationary "
        "mining program unchanged, with identical results",
        f"aggregates agree at every size: {agree}", agree)
    report.add_claim(
        "with an extreme condensation ratio the mobile win dwarfs the "
        "Webbot case and grows with the data",
        f"speedups {['%.1f' % s for s in speedups]}",
        all(b >= a for a, b in zip(speedups, speedups[1:])) and
        speedups[-1] > 5)
    return report


# -- G1: wrapper generality across robots -------------------------------------------------------------


def run_g1(seed: int = 2000) -> ExperimentReport:
    """'This example demonstrates a general principle': mobilise a second,
    independently written robot (BFS Checkbot) with the unchanged
    wrapper and compare findings and cost against the Webbot."""
    from repro.mining.generality import run_checkbot_mobile

    report = ExperimentReport(
        "G1", "Generality: two different COTS robots under the same "
        "mobility wrapper (paper workload, 100 Mbit LAN)")
    report.headers = ["robot", "elapsed_s", "remote_bytes", "pages",
                      "distinct_dead"]

    spec = paper_site_spec(seed=seed)
    testbed = build_linkcheck_testbed(spec=spec)
    site = testbed.site_of(spec.host)
    webbot = run_mobile(testbed, [CrawlTask.for_site(site,
                                                     max_depth=10_000)])
    webbot_dead = {record["url"] for rep in webbot.reports
                   for record in rep["invalid"]}
    report.add_row("Webbot (DFS, prefix, 2nd pass)",
                   webbot.elapsed_seconds, webbot.remote_bytes,
                   webbot.pages_scanned, len(webbot_dead))

    testbed2 = build_linkcheck_testbed(spec=spec)
    checkbot = run_checkbot_mobile(testbed2, spec.host)
    checkbot_dead = {record["url"] for rep in checkbot.reports
                     for record in rep["invalid"]}
    report.add_row("Checkbot (BFS, host list, inline)",
                   checkbot.elapsed_seconds, checkbot.remote_bytes,
                   checkbot.pages_scanned, len(checkbot_dead))

    report.extras["agreement"] = webbot_dead == checkbot_dead
    report.add_claim(
        "the wrapper mobilises a general class of stationary mining "
        "applications: a second robot ships unchanged and finds the "
        "same dead links",
        f"distinct dead URLs: webbot={len(webbot_dead)}, "
        f"checkbot={len(checkbot_dead)}, identical="
        f"{webbot_dead == checkbot_dead}",
        webbot_dead == checkbot_dead and len(webbot_dead) > 0)
    return report


# -- R1: checkpointing overhead (fault-tolerance ablation) -------------------------------------------


def run_r1(n_servers: int = 3, pages_per_server: int = 150,
           seed: int = 2000) -> ExperimentReport:
    """What does carrying the checkpoint wrapper cost?

    The fault.py wrapper snapshots the agent's whole briefcase to a home
    cabinet at every arrival/departure.  This ablation runs the campus
    itinerary with and without it and prices the insurance in time and
    bytes; the recovery path itself is exercised by the integration
    tests.
    """
    from repro.wrappers.fault import CheckpointWrapper
    from repro.wrappers.stack import WrapperSpec

    report = ExperimentReport(
        "R1", "Ablation: checkpoint-to-cabinet wrapper on the campus "
        "itinerary (insurance cost in time and bytes)")
    report.headers = ["variant", "elapsed_s", "remote_bytes",
                      "dead_links"]

    def fresh():
        return build_campus_testbed(n_servers=n_servers,
                                    pages_per_server=pages_per_server,
                                    seed=seed)

    testbed = fresh()
    tasks = [CrawlTask.for_site(testbed.sites[name])
             for name in sorted(testbed.sites)]
    bare = run_mobile(testbed, tasks)
    report.add_row("no-checkpointing", bare.elapsed_seconds,
                   bare.remote_bytes, bare.dead_links_found)

    testbed2 = fresh()
    tasks2 = [CrawlTask.for_site(testbed2.sites[name])
              for name in sorted(testbed2.sites)]
    cabinet_uri = (f"tacoma://{testbed2.client.host.name}"
                   "//ag_cabinet")
    spec = WrapperSpec.by_ref(CheckpointWrapper, {
        "cabinet": cabinet_uri, "drawer": "r1-audit",
        "on": ["arrive"]})
    insured = run_mobile(testbed2, tasks2, extra_wrappers=[spec])
    report.add_row("checkpoint-per-hop", insured.elapsed_seconds,
                   insured.remote_bytes, insured.dead_links_found)

    time_overhead = insured.elapsed_seconds / bare.elapsed_seconds - 1
    byte_overhead = insured.remote_bytes / max(bare.remote_bytes, 1) - 1
    report.extras["time_overhead"] = time_overhead
    report.extras["byte_overhead"] = byte_overhead
    report.add_claim(
        "per-hop checkpointing is cheap in time (asynchronous posts) but "
        "pays real bytes (the briefcase travels home once per hop)",
        f"time +{time_overhead:.1%}, bytes +{byte_overhead:.1%}, same "
        f"findings ({insured.dead_links_found})",
        time_overhead < 0.10 and byte_overhead > 0.10 and
        insured.dead_links_found == bare.dead_links_found)
    return report


# -- M1: analytic model vs simulation ---------------------------------------------------------------


def run_m1(seed: int = 2000) -> ExperimentReport:
    """Validate the first-order cost model (repro.bench.model) against
    the simulation across the bandwidth sweep, and report the predicted
    crossover below which going mobile pays."""
    from repro.bench import model as cost_model
    from repro.mining.webbot_agent import build_webbot_program
    from repro.firewall.auth import KeyChain

    report = ExperimentReport(
        "M1", "Analytic cost model vs simulation (scan-only crawl): "
        "predicted and measured times per network")
    report.headers = ["network", "strategy", "measured_s", "predicted_s",
                      "rel_error"]

    keychain = KeyChain()
    keychain.create_key(WEBBOT_PRINCIPAL)
    program_bytes = build_webbot_program(keychain).size
    machine = cost_model.MachineParams()

    errors: List[float] = []
    networks = [("100Mbit-LAN", BANDWIDTH_100MBIT, LATENCY_LAN),
                ("10Mbit-metro", BANDWIDTH_10MBIT, LATENCY_METRO),
                ("1Mbit-WAN", BANDWIDTH_1MBIT, LATENCY_WAN)]
    for label, bandwidth, latency in networks:
        testbed = build_linkcheck_testbed(
            spec=paper_site_spec(seed=seed),
            bandwidth=bandwidth, latency=latency)
        task = _task_for(testbed, "www.cs.uit.no", check_rejected=False)
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])

        crawl = stationary.reports[0]
        invalid = len(crawl.get("invalid", ()))
        workload = cost_model.CrawlWorkload(
            pages=crawl["pages_scanned"],
            total_page_bytes=crawl["bytes_scanned"],
            requests_per_page=1 + invalid / max(crawl["pages_scanned"], 1))
        link = cost_model.LinkParams(latency, bandwidth)
        agent = cost_model.AgentParams(
            agent_bytes=program_bytes + 6_000,
            report_bytes=invalid * 200 + 1_000)

        predicted = {
            "stationary": cost_model.stationary_seconds(workload, link,
                                                        machine),
            "mobile": cost_model.mobile_seconds(workload, link, machine,
                                                agent),
        }
        for metrics in (stationary, mobile):
            key = "stationary" if metrics.strategy == "stationary" \
                else "mobile"
            rel = abs(predicted[key] - metrics.elapsed_seconds) / \
                metrics.elapsed_seconds
            errors.append(rel)
            report.add_row(label, key, metrics.elapsed_seconds,
                           predicted[key], rel)

    worst = max(errors)
    report.extras["worst_rel_error"] = worst
    report.add_claim(
        "a first-order latency/bandwidth/CPU model explains the "
        "simulated results",
        f"worst relative error {worst:.1%} across "
        f"{len(errors)} (network, strategy) points",
        worst < 0.25)

    # Where does going mobile stop paying?  (Predicted, paper workload.)
    workload_paper = cost_model.CrawlWorkload(pages=820,
                                              total_page_bytes=2_900_000)
    crossover = cost_model.crossover_bandwidth(
        workload_paper, LATENCY_LAN, machine,
        cost_model.AgentParams(agent_bytes=program_bytes + 6_000))
    report.extras["crossover_bandwidth"] = crossover
    report.add_claim(
        "at the paper's scale the mobile agent wins at any realistic "
        "bandwidth (the CPU is the same on both sides; the network cost "
        "is pure overhead)",
        f"predicted crossover bandwidth {crossover:.3g} B/s",
        crossover >= BANDWIDTH_100MBIT)
    return report


# -- R2: fault injection and end-to-end recovery ----------------------------------------------------


def run_e_fault(seed: int = 7) -> ExperimentReport:
    """Robustness: a mid-itinerary host crash, with and without the
    recovery kit (heartbeat monitor + checkpoint wrapper + transport
    retries + rear guard).

    Without recovery the crash silently eats the agent and the run times
    out with nothing; with it the rear guard relaunches the last
    checkpoint at home, the itinerary skips the dead host (reporting it
    unreachable) and every surviving site is still mined.  The insurance
    is priced in bytes on the wire.
    """
    from repro.chaos.scenario import run_chaos

    report = ExperimentReport(
        "R2", "Fault injection: mid-itinerary host crash — completion "
        "with vs without rear-guard recovery")
    report.headers = ["variant", "sites_visited", "completion_rate",
                      "unreachable", "relaunches", "remote_bytes",
                      "elapsed_s"]

    rows = {}
    for variant, recovery in (("no-recovery", False),
                              ("rear-guard-recovery", True)):
        document = run_chaos(seed=seed, plan="mid-crash",
                             recovery=recovery)
        agent = document["agent"]
        planned = agent["sites_planned"]
        rows[variant] = (agent, document)
        report.add_row(
            variant, agent["sites_visited"],
            agent["sites_visited"] / planned,
            ",".join(agent["unreachable_hosts"]) or "-",
            len(document["rear_guard"]["relaunches"]),
            document["stats"]["remote_bytes"],
            document["elapsed"])

    bare, bare_doc = rows["no-recovery"]
    insured, insured_doc = rows["rear-guard-recovery"]
    planned = insured["sites_planned"]
    byte_cost = insured_doc["stats"]["remote_bytes"] / \
        max(bare_doc["stats"]["remote_bytes"], 1)
    report.extras["byte_cost_factor"] = byte_cost
    report.extras["retries"] = insured_doc["stats"]["transport_retries"]
    report.add_claim(
        "a host crash kills the bare agent outright, while the recovery "
        "kit completes every surviving site and reports the dead host",
        f"bare: {bare['sites_visited']}/{planned} sites, timed out; "
        f"recovered: {insured['sites_visited']}/{planned} surviving "
        f"sites, {byte_cost:.1f}x bytes",
        bare["sites_visited"] == 0 and bare["timed_out"] and
        insured["sites_visited"] == planned - 1 and
        not insured["timed_out"] and
        len(insured["unreachable_hosts"]) == 1)
    return report


# -- R3: overload protection (admission control ablation) --------------------------------------------


def run_r3(seed: int = 7) -> ExperimentReport:
    """Robustness: one host flooded by N greedy principals, with and
    without the firewall governor.

    Ungoverned, the pending queue grows without bound (peak depth is the
    whole offered load) and every probe at a dead host is re-attempted
    forever.  Governed, the queue is capped, excess load is shed with
    *transient* rejections that sender retry policies absorb — the flood
    still completes — and the circuit breaker fast-fails the dead link.
    Poison wire buffers are quarantined in both modes (decoder
    hardening is unconditional).
    """
    from repro.bench.overload import run_overload

    report = ExperimentReport(
        "R3", "Overload protection: flooded host with vs without the "
        "firewall governor (admission control, bounded queues, breakers)")
    report.headers = ["variant", "completion_rate", "peak_queue_depth",
                      "sheds", "retries", "breaker_fast_fails",
                      "quarantined", "elapsed_s"]

    docs = {}
    for variant, governed in (("ungoverned", False), ("governed", True)):
        document = run_overload(seed=seed, governed=governed)
        docs[variant] = document
        sheds = document["stats"]["quota_rejected"] + \
            document["stats"]["queue_rejected"]
        report.add_row(
            variant, document["flood"]["completion_rate"],
            document["target"]["queue_peak_depth"], sheds,
            document["stats"]["transport_retries"],
            document["breaker"]["fast_failed"],
            document["target"]["quarantined"], document["elapsed"])

    bare, governed = docs["ungoverned"], docs["governed"]
    offered = bare["flood"]["offered"]
    queue_cap = governed["target"]["governor"]["queue_limits"][
        "max_messages"]
    report.extras["peak_depths"] = {
        "ungoverned": bare["target"]["queue_peak_depth"],
        "governed": governed["target"]["queue_peak_depth"]}
    report.add_claim(
        "without the governor the pending queue absorbs the entire "
        "offered load; with it, occupancy never exceeds the bound",
        f"peak depth {bare['target']['queue_peak_depth']} ungoverned vs "
        f"{governed['target']['queue_peak_depth']} governed "
        f"(bound {queue_cap}, offered {offered})",
        bare["target"]["queue_peak_depth"] >= offered and
        governed["target"]["queue_peak_depth"] <= queue_cap)
    report.add_claim(
        "governed shedding is transient: sender retries absorb every "
        "rejection and the flood still completes",
        f"completion {governed['flood']['completion_rate']:.0%} with "
        f"{governed['stats']['overload_rejections']} overload rejections "
        f"and {governed['stats']['transport_retries']} retries",
        governed["flood"]["completion_rate"] >= 0.95 and
        governed["stats"]["overload_rejections"] > 0 and
        governed["stats"]["transport_retries"] > 0)
    report.add_claim(
        "the circuit breaker fast-fails probes at the dead host instead "
        "of re-attempting the doomed link",
        f"fast-failed {governed['breaker']['fast_failed']} of "
        f"{governed['breaker']['probes']} probes (ungoverned: 0)",
        governed["breaker"]["fast_failed"] > 0 and
        bare["breaker"]["fast_failed"] == 0)
    report.add_claim(
        "no poison wire buffer crashes a firewall; hostile input is "
        "quarantined in both modes",
        f"quarantined {bare['target']['quarantined']} ungoverned, "
        f"{governed['target']['quarantined']} governed (the wire-limit "
        f"violation is only caught when governed)",
        bare["target"]["quarantined"] >= 2 and
        governed["target"]["quarantined"] >= 3)
    return report


EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "D1": run_d1,
    "G1": run_g1,
    "F3": run_f3,
    "F5": run_f5,
    "A1": run_a1,
    "M1": run_m1,
    "R1": run_r1,
    "R2": run_e_fault,
    "R3": run_r3,
}


#: Experiments whose driver takes a ``seed`` kwarg (the rest are pure
#: functions of their structural parameters).
SEEDED_EXPERIMENTS = frozenset({
    "E1", "E2", "E3", "E4", "E5", "A1", "D1", "F3", "G1", "M1", "R1",
    "R2", "R3",
})


def run_experiment(experiment_id: str, **kwargs) -> ExperimentReport:
    try:
        runner = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r} "
                       f"(have {sorted(EXPERIMENTS)})") from None
    return runner(**kwargs)
