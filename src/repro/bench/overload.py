"""The overload flood scenario behind ``repro overload`` and R3.

One target host is flooded by N greedy principals (one per sender host)
racing to deliver M messages each to a collector agent that registers
*late* — the paper's park-ahead-of-arrival queueing under deliberate
abuse.  A prober on the target simultaneously hammers a dead host, and
two poison wire buffers (one corrupt, one oversized) are thrown at the
target's decoder.

The scenario runs in two modes:

- **ungoverned** (the pre-overload baseline): the pending queue grows
  without bound — peak depth equals the entire offered load — every
  doomed probe spends real network time failing, and nothing rate-limits
  the flood;
- **governed**: the target's firewall carries a
  :class:`~repro.firewall.governor.GovernorConfig` — bounded queue,
  per-principal token buckets and bytes-in-flight quotas, wire limits —
  and the network runs circuit breakers.  Floods are shed with
  *transient* rejections that the senders' retry policies turn into
  backoff, so the flood still completes; probes to the dead host
  fast-fail once the breaker opens.

Everything is virtual-time and seeded; :func:`run_overload` returns a
JSON-able document that is byte-for-byte identical across runs with the
same seed (the CI determinism step diffs two runs).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import (
    CircuitOpenError,
    OverloadError,
    TaxError,
)
from repro.core.limits import BreakerConfig, QueueLimits, WireLimits
from repro.core.retry import RetryPolicy
from repro.core.uri import AgentUri
from repro.firewall.governor import GovernorConfig, QuotaSpec
from repro.firewall.message import SenderInfo
from repro.firewall.policy import Policy
from repro.obs.telemetry import Telemetry
from repro.sim.network import BANDWIDTH_10MBIT, LATENCY_LAN, NetworkError
from repro.sim.rng import retry_stream
from repro.system.cluster import TaxCluster

MODE_NAMES = ("governed", "ungoverned")

MODE_DESCRIPTIONS = {
    "governed":
        "the target firewall runs the full governor (bounded queue, "
        "quotas, wire limits) and the network runs circuit breakers",
    "ungoverned":
        "the pre-overload baseline: unbounded queues, no quotas, no "
        "breakers; the flood's peak depth equals the offered load",
}

#: The flood must still complete under shedding; below this the
#: backpressure broke delivery instead of smoothing it.
COMPLETION_FLOOR = 0.9

TARGET_HOST = "target.overload.example"
DEAD_HOST = "dead.overload.example"
SENDER_HOST_FMT = "sender{i}.overload.example"
COLLECTOR_NAME = "collector"

#: Flood shape: N principals x M messages of PAYLOAD_BYTES each.
N_SENDERS = 4
MESSAGES_PER_SENDER = 40
PAYLOAD_BYTES = 2_000
#: Seconds between a flooder's send attempts (far above any sane rate).
SEND_INTERVAL = 0.01
#: Virtual second the collector finally registers at.
COLLECTOR_START = 2.0
#: How long the collector keeps draining before the run is scored.
COLLECT_DEADLINE = 25.0
#: Probes the breaker demo fires at the dead host.
N_PROBES = 8

#: What the governed target deploys.
def governed_config() -> GovernorConfig:
    return GovernorConfig(
        default_quota=QuotaSpec(
            messages_per_second=20.0, burst=10,
            max_bytes_in_flight=30_000),
        queue_limits=QueueLimits(max_messages=50, max_bytes=200_000),
        overflow="reject",
        wire_limits=WireLimits(max_encoded_bytes=64_000),
        breaker=BreakerConfig(failure_threshold=3, cooldown_seconds=2.0,
                              half_open_probes=1),
    )


#: Retry policy the flooders carry: generous enough to ride out the
#: governor's shedding until the collector arrives and buckets refill.
FLOOD_RETRY = RetryPolicy(max_attempts=10, base_delay=0.25,
                          multiplier=2.0, max_delay=4.0, jitter=0.2)


def build_overload_cluster(governed: bool) -> TaxCluster:
    """Target + N sender hosts + one dead host on a 10 Mbit star."""
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    policy = Policy(governor=governed_config()) if governed else None
    cluster.add_node(TARGET_HOST, policy=policy)
    cluster.add_node(DEAD_HOST)
    sender_hosts = [SENDER_HOST_FMT.format(i=i) for i in range(N_SENDERS)]
    for host in sender_hosts + [DEAD_HOST]:
        cluster.network.link(TARGET_HOST, host, latency=LATENCY_LAN,
                             bandwidth=BANDWIDTH_10MBIT)
        if host != DEAD_HOST:
            cluster.add_node(host)
    for i in range(N_SENDERS):
        cluster.add_principal(f"flood-{i}")
    cluster.network.set_host_up(DEAD_HOST, False)
    return cluster


def _flood_briefcase(principal: str, seq: int, now: float) -> Briefcase:
    briefcase = Briefcase()
    briefcase.put("SEQ", f"{principal}:{seq}")
    briefcase.put("SENT-AT", repr(now))
    briefcase.append("PAYLOAD", b"x" * PAYLOAD_BYTES)
    return briefcase


def _poison_buffers() -> List[bytes]:
    """Hostile wire buffers for the quarantine demo: a corrupt one, a
    truncated one, and one over the governed 64 kB wire limit (the
    oversized one *decodes* on an ungoverned target and merely clutters
    its queue — the contrast R3 reports)."""
    good = codec.encode(_flood_briefcase("poison", 0, 0.0))
    corrupt = bytearray(good)
    corrupt[7] = 0xFF      # explode the folder count
    truncated = good[: len(good) // 2]
    big = Briefcase()
    big.append("PAYLOAD", b"y" * 70_000)
    return [bytes(corrupt), truncated, codec.encode(big)]


def run_overload(seed: int = 7, governed: bool = True,
                 recv_deadline: float = COLLECT_DEADLINE) -> Dict:
    """Run the flood once; return the deterministic JSON document."""
    cluster = build_overload_cluster(governed)
    kernel = cluster.kernel
    target_node = cluster.node(TARGET_HOST)
    target_fw = target_node.firewall
    collector_uri = AgentUri(host=TARGET_HOST, name=COLLECTOR_NAME)
    offered = N_SENDERS * MESSAGES_PER_SENDER

    sent_ok: Dict[str, int] = {}
    dropped: Dict[str, List[str]] = {}
    received: List[Dict] = []

    def flooder(index: int):
        principal = f"flood-{index}"
        node = cluster.node(SENDER_HOST_FMT.format(i=index))
        ctx = node.driver(name=f"flood{index}", principal=principal)
        # One seed, per-principal stream *names*: independence between
        # flooders comes from the named stream, never from seed
        # arithmetic (seed+index made cells overlap under a matrix
        # sweep: cell seed N's flood-1 replayed cell seed N+1's
        # flood-0).
        ctx.configure_retry(FLOOD_RETRY, retry_stream(seed, principal))
        sent_ok[principal] = 0
        dropped[principal] = []
        for seq in range(MESSAGES_PER_SENDER):
            briefcase = _flood_briefcase(principal, seq, kernel.now)
            try:
                ok = yield from ctx.send(collector_uri, briefcase)
                if ok:
                    sent_ok[principal] += 1
                else:
                    dropped[principal].append(f"{seq}:dropped")
            except (OverloadError, TaxError, NetworkError) as exc:
                dropped[principal].append(f"{seq}:{type(exc).__name__}")
            yield kernel.timeout(SEND_INTERVAL)

    def collector():
        yield kernel.timeout(COLLECTOR_START)
        ctx = target_node.driver(name=COLLECTOR_NAME)
        while kernel.now < recv_deadline and len(received) < offered:
            try:
                message = yield from ctx.recv(
                    timeout=recv_deadline - kernel.now)
            except TaxError:
                break
            sent_at = message.briefcase.get_text("SENT-AT")
            received.append({
                "seq": message.briefcase.get_text("SEQ"),
                "latency": kernel.now - float(sent_at),
            })

    probe_errors: Dict[str, int] = {}

    def prober():
        ctx = target_node.driver(name="prober")
        for _ in range(N_PROBES):
            probe = Briefcase()
            probe.put("SEQ", "probe")
            try:
                yield from ctx.send(
                    AgentUri(host=DEAD_HOST, name="nobody"), probe,
                    queue_timeout=0.0)
            except CircuitOpenError:
                probe_errors["CircuitOpenError"] = \
                    probe_errors.get("CircuitOpenError", 0) + 1
            except (TaxError, NetworkError) as exc:
                name = type(exc).__name__
                probe_errors[name] = probe_errors.get(name, 0) + 1
            yield kernel.timeout(0.25)

    def scenario():
        # Poison the decoder first: no buffer may crash anything.
        poison_target = AgentUri(host=TARGET_HOST, name="nobody")
        for blob in _poison_buffers():
            target_fw.receive_wire(
                blob, poison_target,
                SenderInfo(principal="poisoner", host=DEAD_HOST))
        procs = [kernel.spawn(flooder(i), name=f"flood-{i}")
                 for i in range(N_SENDERS)]
        procs.append(kernel.spawn(prober(), name="prober"))
        collect = kernel.spawn(collector(), name="collector")
        yield kernel.all_of(procs)
        yield collect
        return True

    cluster.run(scenario(), name="overload")

    metrics = cluster.telemetry.metrics

    def counter_total(name: str) -> int:
        metric = metrics.get(name)
        if metric is None:
            return 0
        return int(sum(s["value"] for s in metric.samples()))

    latencies = sorted(r["latency"] for r in received)
    n_dropped = sum(len(v) for v in dropped.values())
    stats = target_fw.stats_dict()
    document = {
        "schema": "repro.overload/1",
        "seed": seed,
        "governed": governed,
        "flood": {
            "senders": N_SENDERS,
            "messages_per_sender": MESSAGES_PER_SENDER,
            "offered": offered,
            "sender_ok": dict(sorted(sent_ok.items())),
            "dropped": {k: v for k, v in sorted(dropped.items()) if v},
            "dropped_total": n_dropped,
            "completed": len(received),
            "completion_rate": round(len(received) / offered, 4),
            "latency": {
                "min": round(latencies[0], 6) if latencies else None,
                "max": round(latencies[-1], 6) if latencies else None,
                "mean": round(sum(latencies) / len(latencies), 6)
                if latencies else None,
            },
        },
        "target": {
            "queue": stats["queue"],
            "queue_peak_depth": metrics.value(
                "fw.queue_peak_depth", 0, host=TARGET_HOST),
            "queue_peak_bytes": metrics.value(
                "fw.queue_peak_bytes", 0, host=TARGET_HOST),
            "governor": stats["governor"],
            "quarantined": len(stats["quarantined"]),
            "dead_letter_evictions":
                stats["queue"]["dead_letter_evictions"],
        },
        "breaker": {
            "probes": N_PROBES,
            "errors": dict(sorted(probe_errors.items())),
            "fast_failed": probe_errors.get("CircuitOpenError", 0),
            "links": cluster.network.breaker_snapshots(),
        },
        # Poison quarantines auto-dump the target's flight recorder, so
        # the document shows exactly what the firewall was doing in the
        # moments before each hostile buffer arrived.
        "flight_recorder": {
            "dumps": list(cluster.telemetry.flight.dumps),
            "dumps_evicted": cluster.telemetry.flight.dumps_evicted,
        },
        "stats": {
            "transport_retries": counter_total("transport.retries"),
            "overload_rejections":
                counter_total("transport.overload_rejections"),
            "queue_rejected": counter_total("fw.queue_rejected"),
            "quota_rejected": counter_total("fw.quota_rejected"),
            "poison_quarantined":
                counter_total("fw.poison_quarantined"),
            "breaker_rejected": counter_total("net.breaker_rejected"),
            "remote_bytes": cluster.network.total_remote_bytes(),
            "remote_messages": cluster.network.total_remote_messages(),
        },
        "elapsed": round(cluster.kernel.now, 6),
    }
    return document


def run_overload_mode(seed: int = 7, mode: str = "governed") -> Dict:
    """Run the flood under a named mode (the ``--list``/unknown-name
    contract every scenario subcommand shares)."""
    if mode not in MODE_NAMES:
        raise ValueError(f"unknown overload mode {mode!r} "
                         f"(have {list(MODE_NAMES)})")
    return run_overload(seed=seed, governed=(mode == "governed"))


def overload_ok(document: Dict) -> bool:
    """The acceptance verdict: shedding smoothed the flood, it did not
    break delivery."""
    return document["flood"]["completion_rate"] >= COMPLETION_FLOOR


def render_overload_json(document: Dict) -> str:
    """The canonical (determinism-checkable) serialisation."""
    return json.dumps(document, sort_keys=True, indent=2)
