"""Benchmark harness: experiment configurations, metrics, and the CLI."""

from repro.bench import model
from repro.bench.experiments import (
    E2_NETWORKS,
    E3_VOLUMES,
    EXPERIMENTS,
    run_a1,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_experiment,
    run_f3,
    run_f5,
    run_m1,
    run_r1,
)
from repro.bench.metrics import ExperimentReport, PaperClaim, render_table

__all__ = [
    "model",
    "E2_NETWORKS", "E3_VOLUMES", "EXPERIMENTS",
    "run_a1", "run_e1", "run_e2", "run_e3", "run_e4", "run_e5",
    "run_experiment", "run_f3", "run_f5", "run_m1", "run_r1",
    "ExperimentReport", "PaperClaim", "render_table",
]
