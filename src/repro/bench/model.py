"""First-order analytic cost model for the mobile-vs-stationary choice.

The paper's argument ("move the computation to the data when the result
is smaller than the data") is an analytic claim.  This module writes it
down as equations matching the simulator's cost structure, so the
simulation can *validate* the model and the model can *explain* the
simulation — including where the crossover falls (experiment M1).

Components (per crawled page, link ``L`` = client↔server):

- TCP setup: ``2·latency`` per handshake round trip;
- request:   ``latency + request_bytes/bandwidth``;
- service:   ``server_per_request + page_kb·server_per_kb`` CPU;
- response:  ``latency + (page_bytes + header)/bandwidth``;
- client:    ``client_per_request + page_bytes·client_per_byte`` CPU.

The stationary robot pays the link costs on ``L`` for every page; the
mobile robot pays them on the loopback link, plus a one-time cost to
ship the agent over ``L`` and the condensed report back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import LOOPBACK_BANDWIDTH, LOOPBACK_LATENCY
from repro.web.server import REQUEST_OVERHEAD_BYTES, RESPONSE_OVERHEAD_BYTES


@dataclass(frozen=True)
class LinkParams:
    latency: float
    bandwidth: float

    @classmethod
    def loopback(cls) -> "LinkParams":
        return cls(LOOPBACK_LATENCY, LOOPBACK_BANDWIDTH)


@dataclass(frozen=True)
class CrawlWorkload:
    """What the robot will do, in workload terms."""

    pages: int
    total_page_bytes: int
    requests_per_page: float = 1.0
    mean_path_bytes: int = 30

    @property
    def mean_page_bytes(self) -> float:
        return self.total_page_bytes / max(self.pages, 1)


@dataclass(frozen=True)
class MachineParams:
    """CPU-side constants (mirroring ServerModel/ClientModel defaults)."""

    server_per_request: float = 0.003
    server_per_kb: float = 0.0002
    client_per_request: float = 0.0005
    client_per_byte: float = 1.5e-6
    handshake_rtts: int = 1

    @classmethod
    def from_models(cls, server_model, client_model) -> "MachineParams":
        return cls(server_per_request=server_model.per_request_cpu,
                   server_per_kb=server_model.per_kilobyte_cpu,
                   client_per_request=client_model.per_request_cpu,
                   client_per_byte=client_model.per_byte_cpu,
                   handshake_rtts=client_model.handshake_rtts)


@dataclass(frozen=True)
class AgentParams:
    """One-time mobile-agent costs."""

    agent_bytes: int = 60_000
    report_bytes: int = 15_000
    launch_overhead: float = 0.02


def crawl_seconds(workload: CrawlWorkload, link: LinkParams,
                  machine: MachineParams) -> float:
    """Time for one robot to crawl the workload over one link."""
    pages = workload.pages * workload.requests_per_page
    request_bytes = REQUEST_OVERHEAD_BYTES + 3 + workload.mean_path_bytes
    response_header = RESPONSE_OVERHEAD_BYTES

    per_page_latency = link.latency * (2 * machine.handshake_rtts + 2)
    wire_bytes = pages * (request_bytes + response_header) + \
        workload.total_page_bytes
    network = pages * per_page_latency + wire_bytes / link.bandwidth
    server = pages * machine.server_per_request + \
        (workload.total_page_bytes / 1024.0) * machine.server_per_kb
    client = pages * machine.client_per_request + \
        workload.total_page_bytes * machine.client_per_byte
    return network + server + client


def stationary_seconds(workload: CrawlWorkload, link: LinkParams,
                       machine: MachineParams) -> float:
    """The non-mobile robot: every page crosses the client↔server link."""
    return crawl_seconds(workload, link, machine)


def mobile_seconds(workload: CrawlWorkload, link: LinkParams,
                   machine: MachineParams,
                   agent: AgentParams) -> float:
    """The wrapped robot: crawl over loopback, pay shipping once."""
    shipping = (2 * link.latency + agent.agent_bytes / link.bandwidth +
                2 * link.latency + agent.report_bytes / link.bandwidth)
    local = crawl_seconds(workload, LinkParams.loopback(), machine)
    return shipping + agent.launch_overhead + local


def predicted_speedup(workload: CrawlWorkload, link: LinkParams,
                      machine: MachineParams,
                      agent: AgentParams) -> float:
    return stationary_seconds(workload, link, machine) / \
        mobile_seconds(workload, link, machine, agent)


def crossover_pages(link: LinkParams, machine: MachineParams,
                    agent: AgentParams, mean_page_bytes: float,
                    max_pages: int = 1_000_000) -> int:
    """Smallest page count at which going mobile pays (bisection).

    Returns ``max_pages`` if the mobile agent never wins below it.
    """
    def wins(pages: int) -> bool:
        workload = CrawlWorkload(pages=pages,
                                 total_page_bytes=int(pages *
                                                      mean_page_bytes))
        return predicted_speedup(workload, link, machine, agent) > 1.0

    if wins(1):
        return 1
    if not wins(max_pages):
        return max_pages
    low, high = 1, max_pages
    while high - low > 1:
        mid = (low + high) // 2
        if wins(mid):
            high = mid
        else:
            low = mid
    return high


def crossover_bandwidth(workload: CrawlWorkload, latency: float,
                        machine: MachineParams, agent: AgentParams,
                        low: float = 1e3, high: float = 1e12) -> float:
    """Bandwidth (B/s) above which the stationary robot wins (bisection).

    Below the returned bandwidth the mobile agent is faster.  Returns
    ``high`` when the mobile agent wins even at ``high`` bandwidth.
    """
    def mobile_wins(bandwidth: float) -> bool:
        link = LinkParams(latency, bandwidth)
        return predicted_speedup(workload, link, machine, agent) > 1.0

    if not mobile_wins(low):
        return low
    if mobile_wins(high):
        return high
    for _ in range(80):
        mid = (low * high) ** 0.5
        if mobile_wins(mid):
            low = mid
        else:
            high = mid
    return high
