"""Result tables and paper-vs-measured reporting for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """A plain fixed-width table (the harness prints these)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                text = f"{cell:.3f}" if abs(cell) >= 0.01 or cell == 0 \
                    else f"{cell:.6f}"
            elif isinstance(cell, int):
                text = f"{cell:,d}"
            else:
                text = str(cell)
            columns[i].append(text)
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in
                            zip([c[0] for c in columns], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in range(1, len(columns[0])):
        lines.append("  ".join(columns[i][r].rjust(widths[i])
                               for i in range(len(columns))))
    return "\n".join(lines)


@dataclass
class PaperClaim:
    """One paper statement and what we measured against it."""

    experiment: str
    claim: str
    measured: str
    holds: bool

    def render(self) -> str:
        verdict = "REPRODUCED" if self.holds else "DIVERGED"
        return (f"[{verdict}] {self.experiment}\n"
                f"  paper:    {self.claim}\n"
                f"  measured: {self.measured}")


@dataclass
class ExperimentReport:
    """Everything one experiment run produced."""

    experiment_id: str
    description: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    claims: List[PaperClaim] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_claim(self, claim: str, measured: str, holds: bool) -> None:
        self.claims.append(PaperClaim(self.experiment_id, claim,
                                      measured, holds))

    @property
    def all_claims_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.description} ==="]
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        for claim in self.claims:
            parts.append(claim.render())
        return "\n".join(parts)
