"""CLI for the experiment suite: ``python -m repro.bench.runner E1 E2``.

Prints each experiment's table and its paper-vs-measured verdicts; exits
non-zero if any claim diverges.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.experiments import (EXPERIMENTS, SEEDED_EXPERIMENTS,
                                     run_experiment)


def report_to_dict(report) -> dict:
    return {
        "experiment": report.experiment_id,
        "description": report.description,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "claims": [{
            "claim": claim.claim,
            "measured": claim.measured,
            "holds": claim.holds,
        } for claim in report.claims],
        "extras": {key: value for key, value in report.extras.items()
                   if isinstance(value, (int, float, str, bool, list,
                                         dict, type(None)))},
        "reproduced": report.all_claims_hold,
    }


#: Back-compat alias (the public name is :func:`report_to_dict`).
_report_to_dict = report_to_dict


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the paper's experiments on the simulated testbed.")
    parser.add_argument(
        "experiments", nargs="*", default=[],
        help=f"experiment ids (default: all of {sorted(EXPERIMENTS)})")
    parser.add_argument("--seed", type=int, default=2000,
                        help="site-generation seed (where applicable)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write machine-readable results here")
    args = parser.parse_args(argv)

    ids = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    failures = 0
    collected = []
    for experiment_id in ids:
        kwargs = {}
        if experiment_id in SEEDED_EXPERIMENTS:
            kwargs["seed"] = args.seed
        report = run_experiment(experiment_id, **kwargs)
        print(report.render())
        print()
        collected.append(report_to_dict(report))
        if not report.all_claims_hold:
            failures += 1
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump({"seed": args.seed, "experiments": collected},
                      handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    if failures:
        print(f"{failures} experiment(s) diverged from the paper.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
