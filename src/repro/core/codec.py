"""Deterministic wire format for briefcases.

Briefcases are the only thing that crosses host boundaries, so the codec
defines both interoperability and the byte counts the network cost model
charges.  The format is a simple length-prefixed binary layout:

.. code-block:: text

    "TAXB"                magic, 4 bytes
    u8                    format version (currently 1)
    u32                   folder count
    per folder:
        u16 + utf-8       folder name
        u32               element count
        per element:
            u32 + raw     element bytes

All integers are big-endian.  Folders are serialised in insertion order,
which makes encode→decode→encode byte-identical (tested by property
tests), while two briefcases that merely differ in folder insertion order
still compare equal at the :class:`~repro.core.briefcase.Briefcase` level.

Decoding is hardened against hostile or corrupt input: every read goes
through a bounds-checked cursor and every structural field is validated
against a :class:`~repro.core.limits.WireLimits`, so a truncated,
oversized, or garbled buffer raises the typed
:class:`~repro.core.errors.MalformedBriefcaseError` /
:class:`~repro.core.errors.BriefcaseTooLargeError` (both
:class:`~repro.core.errors.CodecError` subclasses) — never a bare
``IndexError``/``struct.error``, and never an unbounded allocation.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    BriefcaseTooLargeError,
    CodecError,
    MalformedBriefcaseError,
)
from repro.core.limits import (
    DEFAULT_WIRE_LIMITS,
    MAX_ELEMENT_BYTES,
    MAX_ELEMENTS,
    MAX_FOLDERS,
    WireLimits,
)

__all__ = ["encode", "decode", "encoded_size", "check_briefcase",
           "MAGIC", "VERSION", "MAX_FOLDERS", "MAX_ELEMENTS",
           "MAX_ELEMENT_BYTES"]

MAGIC = b"TAXB"
VERSION = 1

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


def encode(briefcase: Briefcase,
           limits: Optional[WireLimits] = None) -> bytes:
    """Serialise a briefcase to its wire representation.

    With ``limits`` the encoded form is checked against them first
    (raising :class:`BriefcaseTooLargeError`) so an agent cannot even
    *construct* an over-limit wire image.
    """
    if limits is not None:
        check_briefcase(briefcase, limits)
    parts = [MAGIC, _U8.pack(VERSION)]
    folders = list(briefcase)
    parts.append(_U32.pack(len(folders)))
    for folder in folders:
        name_bytes = folder.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise CodecError(f"folder name too long: {folder.name[:40]!r}...")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(_U32.pack(len(folder)))
        for element in folder:
            data = element.data
            parts.append(_U32.pack(len(data)))
            parts.append(data)
    return b"".join(parts)


def encoded_size(briefcase: Briefcase) -> int:
    """The exact wire size in bytes, without materialising the encoding."""
    size = len(MAGIC) + _U8.size + _U32.size
    for folder in briefcase:
        size += _U16.size + len(folder.name.encode("utf-8")) + _U32.size
        for element in folder:
            size += _U32.size + len(element)
    return size


def check_briefcase(briefcase: Briefcase, limits: WireLimits) -> int:
    """Validate a (decoded) briefcase against wire limits.

    Returns the exact encoded size; raises
    :class:`BriefcaseTooLargeError` on any violation.  Used by firewall
    admission so oversized payloads are rejected before they spend
    network time.
    """
    folders = list(briefcase)
    if len(folders) > limits.max_folders:
        raise BriefcaseTooLargeError(
            f"briefcase has {len(folders)} folders "
            f"(limit {limits.max_folders})")
    total_elements = 0
    for folder in folders:
        n = len(folder)
        if n > limits.max_elements_per_folder:
            raise BriefcaseTooLargeError(
                f"folder {folder.name!r} has {n} elements "
                f"(limit {limits.max_elements_per_folder})")
        total_elements += n
        if len(folder.name.encode("utf-8")) > limits.max_name_bytes:
            raise BriefcaseTooLargeError(
                f"folder name {folder.name[:40]!r}... exceeds "
                f"{limits.max_name_bytes} bytes")
        for element in folder:
            if len(element) > limits.max_element_bytes:
                raise BriefcaseTooLargeError(
                    f"element of {len(element)} bytes in folder "
                    f"{folder.name!r} (limit {limits.max_element_bytes})")
    if total_elements > limits.max_total_elements:
        raise BriefcaseTooLargeError(
            f"briefcase has {total_elements} elements in total "
            f"(limit {limits.max_total_elements})")
    size = encoded_size(briefcase)
    if limits.max_encoded_bytes is not None and \
            size > limits.max_encoded_bytes:
        raise BriefcaseTooLargeError(
            f"briefcase encodes to {size} bytes "
            f"(limit {limits.max_encoded_bytes})")
    return size


class _Reader:
    """Cursor over a bytes buffer with bounds checking.

    Every short read raises the typed
    :class:`~repro.core.errors.MalformedBriefcaseError` with offset
    context instead of surfacing as a bare slice/struct error.
    """

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise MalformedBriefcaseError(
                f"truncated briefcase: wanted {n} bytes at offset {self.pos}, "
                f"buffer has {len(self.data)}")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(_U8.size))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(_U16.size))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(_U32.size))[0]

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def decode(data: bytes,
           limits: Optional[WireLimits] = DEFAULT_WIRE_LIMITS) -> Briefcase:
    """Parse a wire representation back into a briefcase.

    ``limits`` (default :data:`~repro.core.limits.DEFAULT_WIRE_LIMITS`)
    bounds what the parser will accept and allocate; pass ``None`` to
    disable every cap except basic well-formedness.
    """
    if limits is not None and limits.max_encoded_bytes is not None and \
            len(data) > limits.max_encoded_bytes:
        raise BriefcaseTooLargeError(
            f"wire buffer is {len(data)} bytes "
            f"(limit {limits.max_encoded_bytes})")
    max_folders = limits.max_folders if limits is not None else MAX_FOLDERS
    max_per_folder = limits.max_elements_per_folder if limits is not None \
        else MAX_ELEMENTS
    max_total = limits.max_total_elements if limits is not None \
        else MAX_ELEMENTS
    max_element = limits.max_element_bytes if limits is not None \
        else MAX_ELEMENT_BYTES
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise MalformedBriefcaseError("bad magic: not a TAX briefcase")
    version = reader.u8()
    if version != VERSION:
        raise MalformedBriefcaseError(
            f"unsupported briefcase format version {version}")
    folder_count = reader.u32()
    if folder_count > max_folders:
        raise MalformedBriefcaseError(
            f"implausible folder count {folder_count}")
    briefcase = Briefcase()
    total_elements = 0
    for _ in range(folder_count):
        name_len = reader.u16()
        try:
            name = reader.take(name_len).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedBriefcaseError(
                "folder name is not valid UTF-8") from exc
        if not name:
            raise MalformedBriefcaseError("empty folder name on the wire")
        if briefcase.has(name):
            raise MalformedBriefcaseError(
                f"duplicate folder {name!r} on the wire")
        element_count = reader.u32()
        if element_count > max_per_folder:
            raise MalformedBriefcaseError(
                f"implausible element count {element_count}")
        total_elements += element_count
        if total_elements > max_total:
            raise MalformedBriefcaseError(
                f"implausible total element count {total_elements}")
        folder = briefcase.folder(name)
        for _ in range(element_count):
            size = reader.u32()
            if size > max_element:
                raise MalformedBriefcaseError(
                    f"implausible element size {size}")
            if size > reader.remaining:
                raise MalformedBriefcaseError(
                    f"truncated briefcase: declared element size {size} "
                    f"exceeds the {reader.remaining} bytes left")
            folder.push(reader.take(size))
    if not reader.exhausted:
        raise MalformedBriefcaseError(
            f"{len(data) - reader.pos} trailing bytes after briefcase")
    return briefcase
