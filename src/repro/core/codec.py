"""Deterministic wire format for briefcases.

Briefcases are the only thing that crosses host boundaries, so the codec
defines both interoperability and the byte counts the network cost model
charges.  The format is a simple length-prefixed binary layout:

.. code-block:: text

    "TAXB"                magic, 4 bytes
    u8                    format version (currently 1)
    u32                   folder count
    per folder:
        u16 + utf-8       folder name
        u32               element count
        per element:
            u32 + raw     element bytes

All integers are big-endian.  Folders are serialised in insertion order,
which makes encode→decode→encode byte-identical (tested by property
tests), while two briefcases that merely differ in folder insertion order
still compare equal at the :class:`~repro.core.briefcase.Briefcase` level.

Decoding is hardened against hostile or corrupt input: every read is
bounds-checked and every structural field is validated against a
:class:`~repro.core.limits.WireLimits`, so a truncated, oversized, or
garbled buffer raises the typed
:class:`~repro.core.errors.MalformedBriefcaseError` /
:class:`~repro.core.errors.BriefcaseTooLargeError` (both
:class:`~repro.core.errors.CodecError` subclasses) — never a bare
``IndexError``/``struct.error``, and never an unbounded allocation.

Hot paths (see ``docs/performance.md``)
---------------------------------------

This module keeps **two decoder implementations** with identical
semantics:

- :func:`_decode_fast` (default) parses integer fields in place with
  ``struct.unpack_from`` — no per-field slice allocations, no cursor
  object — and accepts ``bytes``/``bytearray``/``memoryview`` buffers,
  so a view over a larger receive buffer is parsed without an upfront
  copy; only each element payload is materialised (once) as ``bytes``.
- :func:`_decode_reference` is the original cursor-based decoder, kept
  as the readable specification and as the *baseline* the perf harness
  (``repro perf``) measures the fast path against.  Property tests
  assert the two agree byte-for-byte.

Encoding is cached: :func:`encode` / :func:`encoded_size` store their
result on the briefcase (invalidated by any mutation — see
``Briefcase._wire_fingerprint``), so firewall admission, the wire
transfer charge, and telemetry byte-accounting reuse one encoding
instead of re-encoding up to three times per hop.  A successful
:func:`decode` of a ``bytes`` buffer pre-populates the cache with the
input buffer itself (the format is canonical: every accepted wire image
re-encodes to itself).

:func:`set_fast_paths` disables all of the above at once (reference
decoder, no caching); the perf harness uses it to produce honest
before/after medians in a single run.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, Union

from repro.core.briefcase import Briefcase
from repro.core.element import Element
from repro.core.errors import (
    BriefcaseTooLargeError,
    CodecError,
    MalformedBriefcaseError,
)
from repro.core.folder import Folder
from repro.core.limits import (
    DEFAULT_WIRE_LIMITS,
    MAX_ELEMENT_BYTES,
    MAX_ELEMENTS,
    MAX_FOLDERS,
    WireLimits,
)

__all__ = ["encode", "decode", "encoded_size", "check_briefcase",
           "set_fast_paths", "fast_paths_enabled",
           "MAGIC", "VERSION", "ABSOLUTE_MAX_WIRE_BYTES",
           "MAX_FOLDERS", "MAX_ELEMENTS", "MAX_ELEMENT_BYTES"]

MAGIC = b"TAXB"
VERSION = 1

#: Hard absolute backstop on the wire buffer size, enforced even with
#: ``decode(data, limits=None)``: a buffer larger than this (4 GiB, the
#: u32 framing horizon) is rejected outright.  This is the only
#: configured-independent cap; everything else ``limits=None`` enforces
#: is derived from the buffer itself (a count that could not possibly
#: fit the remaining bytes is malformed, not over-limit).
ABSOLUTE_MAX_WIRE_BYTES = 1 << 32

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

_U16_AT = _U16.unpack_from
_U32_AT = _U32.unpack_from

#: Minimum wire bytes one folder costs: u16 name length + 1 name byte +
#: u32 element count.  Used to bound a declared folder count by what the
#: buffer could possibly hold.
_MIN_FOLDER_BYTES = _U16.size + 1 + _U32.size
#: Minimum wire bytes one element costs (its u32 length prefix).
_MIN_ELEMENT_BYTES = _U32.size

_HEADER_BYTES = len(MAGIC) + _U8.size + _U32.size

Buffer = Union[bytes, bytearray, memoryview]

#: Master switch for the optimised paths (fast decoder + encode cache).
#: Flip with :func:`set_fast_paths`; the perf harness runs its baseline
#: legs with this off.
_fast_enabled = True


def set_fast_paths(enabled: bool) -> bool:
    """Enable/disable the codec fast paths; returns the previous state.

    With fast paths off, :func:`decode` uses the reference decoder and
    :func:`encode`/:func:`encoded_size` neither consult nor populate the
    per-briefcase encoding cache.  Semantics are identical either way —
    this switch exists so the perf harness (and a suspicious operator)
    can compare the two regimes in one process.
    """
    global _fast_enabled
    previous = _fast_enabled
    _fast_enabled = bool(enabled)
    return previous


def fast_paths_enabled() -> bool:
    return _fast_enabled


# -- encoding --------------------------------------------------------------------


def _encode_parts(briefcase: Briefcase) -> bytes:
    """Materialise the wire image (no cache interaction)."""
    parts = [MAGIC, _U8.pack(VERSION)]
    folders = list(briefcase)
    parts.append(_U32.pack(len(folders)))
    for folder in folders:
        name_bytes = folder.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise CodecError(f"folder name too long: {folder.name[:40]!r}...")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(_U32.pack(len(folder)))
        for element in folder:
            data = element.data
            parts.append(_U32.pack(len(data)))
            parts.append(data)
    return b"".join(parts)


def encode(briefcase: Briefcase,
           limits: Optional[WireLimits] = None) -> bytes:
    """Serialise a briefcase to its wire representation.

    With ``limits`` the encoded form is checked against them first
    (raising :class:`BriefcaseTooLargeError`) so an agent cannot even
    *construct* an over-limit wire image.

    The result is cached on the briefcase and reused until the briefcase
    (or any of its folders) is mutated.
    """
    if limits is not None:
        check_briefcase(briefcase, limits)
    if _fast_enabled:
        cached = briefcase._wire_cached_bytes()
        if cached is not None:
            return cached
    data = _encode_parts(briefcase)
    if _fast_enabled:
        briefcase._wire_cache_store(data, len(data))
    return data


def encoded_size(briefcase: Briefcase) -> int:
    """The exact wire size in bytes, without materialising the encoding.

    Single pass: each folder name is UTF-8 encoded exactly once.  The
    size is cached alongside the encoding (and served from a previous
    :func:`encode` when one is still valid).
    """
    if _fast_enabled:
        cached = briefcase._wire_cached_size()
        if cached is not None:
            return cached
    size = _HEADER_BYTES
    for folder in briefcase:
        size += _U16.size + len(folder.name.encode("utf-8")) + _U32.size
        for element in folder:
            size += _U32.size + len(element)
    if _fast_enabled:
        briefcase._wire_cache_store(None, size)
    return size


def check_briefcase(briefcase: Briefcase, limits: WireLimits) -> int:
    """Validate a (decoded) briefcase against wire limits.

    Returns the exact encoded size; raises
    :class:`BriefcaseTooLargeError` on any violation.  Used by firewall
    admission so oversized payloads are rejected before they spend
    network time.

    Single pass over the briefcase: each folder name is encoded once and
    the exact wire size is accumulated while the structural caps are
    checked (the original implementation encoded every name twice — once
    to check its length, once again inside :func:`encoded_size`).
    """
    folders = list(briefcase)
    if len(folders) > limits.max_folders:
        raise BriefcaseTooLargeError(
            f"briefcase has {len(folders)} folders "
            f"(limit {limits.max_folders})")
    total_elements = 0
    size = _HEADER_BYTES
    for folder in folders:
        n = len(folder)
        if n > limits.max_elements_per_folder:
            raise BriefcaseTooLargeError(
                f"folder {folder.name!r} has {n} elements "
                f"(limit {limits.max_elements_per_folder})")
        total_elements += n
        name_len = len(folder.name.encode("utf-8"))
        if name_len > limits.max_name_bytes:
            raise BriefcaseTooLargeError(
                f"folder name {folder.name[:40]!r}... exceeds "
                f"{limits.max_name_bytes} bytes")
        size += _U16.size + name_len + _U32.size
        for element in folder:
            element_len = len(element)
            if element_len > limits.max_element_bytes:
                raise BriefcaseTooLargeError(
                    f"element of {element_len} bytes in folder "
                    f"{folder.name!r} (limit {limits.max_element_bytes})")
            size += _U32.size + element_len
    if total_elements > limits.max_total_elements:
        raise BriefcaseTooLargeError(
            f"briefcase has {total_elements} elements in total "
            f"(limit {limits.max_total_elements})")
    if limits.max_encoded_bytes is not None and \
            size > limits.max_encoded_bytes:
        raise BriefcaseTooLargeError(
            f"briefcase encodes to {size} bytes "
            f"(limit {limits.max_encoded_bytes})")
    if _fast_enabled:
        briefcase._wire_cache_store(None, size)
    return size


# -- decoding --------------------------------------------------------------------


def _decode_caps(data_len: int,
                 limits: Optional[WireLimits]
                 ) -> Tuple[int, int, int, int]:
    """Resolve the decode caps: (max_folders, max_per_folder, max_total,
    max_element).

    With ``limits=None`` every configured cap is off; what remains is
    well-formedness — a declared count whose minimum wire footprint
    exceeds the bytes actually present is malformed — plus the absolute
    :data:`ABSOLUTE_MAX_WIRE_BYTES` buffer backstop checked by
    :func:`decode` itself.
    """
    if limits is not None:
        return (limits.max_folders, limits.max_elements_per_folder,
                limits.max_total_elements, limits.max_element_bytes)
    body = max(0, data_len - _HEADER_BYTES)
    return (body // _MIN_FOLDER_BYTES,
            body // _MIN_ELEMENT_BYTES,
            body // _MIN_ELEMENT_BYTES,
            data_len)


class _Reader:
    """Cursor over a bytes buffer with bounds checking.

    Every short read raises the typed
    :class:`~repro.core.errors.MalformedBriefcaseError` with offset
    context instead of surfacing as a bare slice/struct error.
    """

    def __init__(self, data: Buffer) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise MalformedBriefcaseError(
                f"truncated briefcase: wanted {n} bytes at offset {self.pos}, "
                f"buffer has {len(self.data)}")
        chunk = bytes(self.data[self.pos:self.pos + n])
        self.pos += n
        return chunk

    def u8(self) -> int:
        return int(_U8.unpack(self.take(_U8.size))[0])

    def u16(self) -> int:
        return int(_U16.unpack(self.take(_U16.size))[0])

    def u32(self) -> int:
        return int(_U32.unpack(self.take(_U32.size))[0])

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def decode(data: Buffer,
           limits: Optional[WireLimits] = DEFAULT_WIRE_LIMITS) -> Briefcase:
    """Parse a wire representation back into a briefcase.

    ``limits`` (default :data:`~repro.core.limits.DEFAULT_WIRE_LIMITS`)
    bounds what the parser will accept and allocate.  Pass ``None`` to
    disable every configured cap: the parser then enforces only basic
    well-formedness (declared counts and sizes must fit the buffer that
    is actually present) plus one hard absolute backstop,
    :data:`ABSOLUTE_MAX_WIRE_BYTES`, on the buffer size itself.

    ``data`` may be ``bytes``, ``bytearray``, or a ``memoryview`` (e.g.
    a window into a larger receive buffer); integer fields are read in
    place and only element payloads are copied out.
    """
    data_len = len(data)
    if limits is not None:
        if limits.max_encoded_bytes is not None and \
                data_len > limits.max_encoded_bytes:
            raise BriefcaseTooLargeError(
                f"wire buffer is {data_len} bytes "
                f"(limit {limits.max_encoded_bytes})")
    elif data_len > ABSOLUTE_MAX_WIRE_BYTES:
        raise BriefcaseTooLargeError(
            f"wire buffer is {data_len} bytes (absolute backstop "
            f"{ABSOLUTE_MAX_WIRE_BYTES})")
    caps = _decode_caps(data_len, limits)
    if _fast_enabled:
        return _decode_fast(data, caps)
    return _decode_reference(data, caps)


def _decode_reference(data: Buffer,
                      caps: Tuple[int, int, int, int]) -> Briefcase:
    """The original cursor-based decoder: readable specification and
    perf-harness baseline.  Must behave identically to
    :func:`_decode_fast` (property-tested)."""
    max_folders, max_per_folder, max_total, max_element = caps
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise MalformedBriefcaseError("bad magic: not a TAX briefcase")
    version = reader.u8()
    if version != VERSION:
        raise MalformedBriefcaseError(
            f"unsupported briefcase format version {version}")
    folder_count = reader.u32()
    if folder_count > max_folders:
        raise MalformedBriefcaseError(
            f"implausible folder count {folder_count}")
    briefcase = Briefcase()
    total_elements = 0
    for _ in range(folder_count):
        name_len = reader.u16()
        try:
            name = reader.take(name_len).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedBriefcaseError(
                "folder name is not valid UTF-8") from exc
        if not name:
            raise MalformedBriefcaseError("empty folder name on the wire")
        if briefcase.has(name):
            raise MalformedBriefcaseError(
                f"duplicate folder {name!r} on the wire")
        element_count = reader.u32()
        if element_count > max_per_folder:
            raise MalformedBriefcaseError(
                f"implausible element count {element_count}")
        total_elements += element_count
        if total_elements > max_total:
            raise MalformedBriefcaseError(
                f"implausible total element count {total_elements}")
        folder = briefcase.folder(name)
        for _ in range(element_count):
            size = reader.u32()
            if size > max_element:
                raise MalformedBriefcaseError(
                    f"implausible element size {size}")
            if size > reader.remaining:
                raise MalformedBriefcaseError(
                    f"truncated briefcase: declared element size {size} "
                    f"exceeds the {reader.remaining} bytes left")
            folder.push(reader.take(size))
    if not reader.exhausted:
        raise MalformedBriefcaseError(
            f"{len(data) - reader.pos} trailing bytes after briefcase")
    return briefcase


def _truncated(wanted: int, pos: int, total: int) -> MalformedBriefcaseError:
    return MalformedBriefcaseError(
        f"truncated briefcase: wanted {wanted} bytes at offset {pos}, "
        f"buffer has {total}")


def _decode_fast(data: Buffer,
                 caps: Tuple[int, int, int, int]) -> Briefcase:
    """Allocation-lean decoder: integer fields are unpacked in place.

    Validation order and every raised error match
    :func:`_decode_reference`; the only differences are mechanical —
    ``unpack_from`` at an offset instead of slice-then-unpack, elements
    wrapped via the internal :meth:`Element._wrap` fast constructor, and
    folder objects assembled directly.
    """
    max_folders, max_per_folder, max_total, max_element = caps
    n = len(data)
    if n < _HEADER_BYTES:
        # Mirror the reference decoder's read order on short buffers:
        # magic, then version, then the folder count.
        if n < len(MAGIC):
            raise _truncated(len(MAGIC), 0, n)
        if bytes(data[:4]) != MAGIC:
            raise MalformedBriefcaseError("bad magic: not a TAX briefcase")
        if n < 5:
            raise _truncated(_U8.size, 4, n)
        if data[4] != VERSION:
            raise MalformedBriefcaseError(
                f"unsupported briefcase format version {data[4]}")
        raise _truncated(_U32.size, 5, n)
    if bytes(data[:4]) != MAGIC:
        raise MalformedBriefcaseError("bad magic: not a TAX briefcase")
    version = data[4]
    if version != VERSION:
        raise MalformedBriefcaseError(
            f"unsupported briefcase format version {version}")
    (folder_count,) = _U32_AT(data, 5)
    if folder_count > max_folders:
        raise MalformedBriefcaseError(
            f"implausible folder count {folder_count}")
    pos = _HEADER_BYTES
    briefcase = Briefcase()
    folders = briefcase._folders
    wrap = Element._wrap
    total_elements = 0
    for _ in range(folder_count):
        end = pos + 2
        if end > n:
            raise _truncated(2, pos, n)
        (name_len,) = _U16_AT(data, pos)
        pos = end
        end = pos + name_len
        if end > n:
            raise _truncated(name_len, pos, n)
        try:
            name = str(data[pos:end], "utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedBriefcaseError(
                "folder name is not valid UTF-8") from exc
        pos = end
        if not name:
            raise MalformedBriefcaseError("empty folder name on the wire")
        if name in folders:
            raise MalformedBriefcaseError(
                f"duplicate folder {name!r} on the wire")
        end = pos + 4
        if end > n:
            raise _truncated(4, pos, n)
        (element_count,) = _U32_AT(data, pos)
        pos = end
        if element_count > max_per_folder:
            raise MalformedBriefcaseError(
                f"implausible element count {element_count}")
        total_elements += element_count
        if total_elements > max_total:
            raise MalformedBriefcaseError(
                f"implausible total element count {total_elements}")
        elements = []
        append = elements.append
        for _ in range(element_count):
            end = pos + 4
            if end > n:
                raise _truncated(4, pos, n)
            (size,) = _U32_AT(data, pos)
            pos = end
            if size > max_element:
                raise MalformedBriefcaseError(
                    f"implausible element size {size}")
            end = pos + size
            if end > n:
                raise MalformedBriefcaseError(
                    f"truncated briefcase: declared element size {size} "
                    f"exceeds the {n - pos} bytes left")
            append(wrap(bytes(data[pos:end])))
            pos = end
        folder = Folder.__new__(Folder)
        folder.name = name
        folder._elements = elements
        folder._version = 0
        folders[name] = folder
    if pos != n:
        raise MalformedBriefcaseError(
            f"{n - pos} trailing bytes after briefcase")
    if type(data) is bytes:
        # The format is canonical: this exact buffer is what encode()
        # would produce, so it seeds the briefcase's encoding cache and
        # the next hop's admission/transfer/accounting reuse it.
        briefcase._wire_cache_store(data, n)
    return briefcase
