"""Deterministic wire format for briefcases.

Briefcases are the only thing that crosses host boundaries, so the codec
defines both interoperability and the byte counts the network cost model
charges.  The format is a simple length-prefixed binary layout:

.. code-block:: text

    "TAXB"                magic, 4 bytes
    u8                    format version (currently 1)
    u32                   folder count
    per folder:
        u16 + utf-8       folder name
        u32               element count
        per element:
            u32 + raw     element bytes

All integers are big-endian.  Folders are serialised in insertion order,
which makes encode→decode→encode byte-identical (tested by property
tests), while two briefcases that merely differ in folder insertion order
still compare equal at the :class:`~repro.core.briefcase.Briefcase` level.
"""

from __future__ import annotations

import struct

from repro.core.briefcase import Briefcase
from repro.core.errors import CodecError

MAGIC = b"TAXB"
VERSION = 1

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

#: Hard caps guarding against corrupt/hostile input.
MAX_FOLDERS = 1_000_000
MAX_ELEMENTS = 10_000_000
MAX_ELEMENT_BYTES = 1 << 31


def encode(briefcase: Briefcase) -> bytes:
    """Serialise a briefcase to its wire representation."""
    parts = [MAGIC, _U8.pack(VERSION)]
    folders = list(briefcase)
    parts.append(_U32.pack(len(folders)))
    for folder in folders:
        name_bytes = folder.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise CodecError(f"folder name too long: {folder.name[:40]!r}...")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(_U32.pack(len(folder)))
        for element in folder:
            data = element.data
            parts.append(_U32.pack(len(data)))
            parts.append(data)
    return b"".join(parts)


def encoded_size(briefcase: Briefcase) -> int:
    """The exact wire size in bytes, without materialising the encoding."""
    size = len(MAGIC) + _U8.size + _U32.size
    for folder in briefcase:
        size += _U16.size + len(folder.name.encode("utf-8")) + _U32.size
        for element in folder:
            size += _U32.size + len(element)
    return size


class _Reader:
    """Cursor over a bytes buffer with bounds checking."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise CodecError(
                f"truncated briefcase: wanted {n} bytes at offset {self.pos}, "
                f"buffer has {len(self.data)}")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(_U8.size))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(_U16.size))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(_U32.size))[0]

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def decode(data: bytes) -> Briefcase:
    """Parse a wire representation back into a briefcase."""
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise CodecError("bad magic: not a TAX briefcase")
    version = reader.u8()
    if version != VERSION:
        raise CodecError(f"unsupported briefcase format version {version}")
    folder_count = reader.u32()
    if folder_count > MAX_FOLDERS:
        raise CodecError(f"implausible folder count {folder_count}")
    briefcase = Briefcase()
    for _ in range(folder_count):
        name_len = reader.u16()
        try:
            name = reader.take(name_len).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError("folder name is not valid UTF-8") from exc
        if not name:
            raise CodecError("empty folder name on the wire")
        if briefcase.has(name):
            raise CodecError(f"duplicate folder {name!r} on the wire")
        element_count = reader.u32()
        if element_count > MAX_ELEMENTS:
            raise CodecError(f"implausible element count {element_count}")
        folder = briefcase.folder(name)
        for _ in range(element_count):
            size = reader.u32()
            if size > MAX_ELEMENT_BYTES:
                raise CodecError(f"implausible element size {size}")
            folder.push(reader.take(size))
    if not reader.exhausted:
        raise CodecError(
            f"{len(data) - reader.pos} trailing bytes after briefcase")
    return briefcase
