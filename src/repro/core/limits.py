"""Resource-limit primitives: wire limits, token buckets, circuit breakers.

This module is the bottom layer of the overload-protection subsystem
(see :mod:`repro.firewall.governor` for the policy that composes these
into per-principal admission control).  Everything here is pure and
deterministic: time is always passed in explicitly (the simulation's
virtual clock), so two runs with the same seed replay the same admission
decisions — the same hard requirement the chaos harness imposes on the
fault injector.

Three primitives:

- :class:`WireLimits` — structural caps a decoded briefcase must obey
  (total bytes, folder/element counts, element size).  Enforced by
  :func:`repro.core.codec.decode` and by firewall admission, raising the
  typed :class:`~repro.core.errors.MalformedBriefcaseError` /
  :class:`~repro.core.errors.BriefcaseTooLargeError` instead of letting
  hostile input surface as a bare ``IndexError``/``struct.error``.
- :class:`TokenBucket` — the classic rate limiter: capacity ``burst``
  tokens, refilled at ``rate`` per second, never negative, never above
  capacity.
- :class:`CircuitBreaker` — closed → open after N consecutive failures,
  open → half-open after a cooldown (a limited number of probes may
  pass), half-open → closed on a probe success / back to open on a
  probe failure.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional

# -- wire limits ------------------------------------------------------------------

#: Legacy plausibility caps (kept as the default :class:`WireLimits`
#: values; tests and callers may reference them through the codec).
MAX_FOLDERS = 1_000_000
MAX_ELEMENTS = 10_000_000
MAX_ELEMENT_BYTES = 1 << 31


@dataclass(frozen=True)
class WireLimits:
    """Hard caps on what a briefcase may look like on the wire.

    ``None`` disables an individual cap.  The defaults are deliberately
    generous — they guard against corrupt or hostile input, not against
    large-but-legitimate workloads; a firewall that wants real overload
    protection configures tighter limits through its governor.
    """

    #: Total encoded size of the briefcase (bytes).
    max_encoded_bytes: Optional[int] = 1 << 26  # 64 MB
    max_folders: int = MAX_FOLDERS
    max_elements_per_folder: int = MAX_ELEMENTS
    #: Elements summed over all folders.
    max_total_elements: int = MAX_ELEMENTS
    max_element_bytes: int = MAX_ELEMENT_BYTES
    max_name_bytes: int = 0xFFFF

    def __post_init__(self) -> None:
        for name in ("max_folders", "max_elements_per_folder",
                     "max_total_elements", "max_element_bytes",
                     "max_name_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_encoded_bytes is not None and self.max_encoded_bytes < 0:
            raise ValueError("max_encoded_bytes must be non-negative")

    def to_config(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_config(cls, config: Optional[Dict[str, Any]]
                    ) -> Optional["WireLimits"]:
        if config is None:
            return None
        fields = ("max_encoded_bytes", "max_folders",
                  "max_elements_per_folder", "max_total_elements",
                  "max_element_bytes", "max_name_bytes")
        return cls(**{f: config[f] for f in fields if f in config})


#: The limits :func:`repro.core.codec.decode` applies when not told
#: otherwise.
DEFAULT_WIRE_LIMITS = WireLimits()


# -- queue limits ------------------------------------------------------------------


@dataclass(frozen=True)
class QueueLimits:
    """Capacity of a bounded message queue (``None`` = unbounded)."""

    max_messages: Optional[int] = None
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_messages", "max_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive (or None)")

    @property
    def bounded(self) -> bool:
        return self.max_messages is not None or self.max_bytes is not None

    def admits(self, messages: int, nbytes: int) -> bool:
        """Would an occupancy of (``messages``, ``nbytes``) be legal?"""
        if self.max_messages is not None and messages > self.max_messages:
            return False
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        return True


# -- token bucket ------------------------------------------------------------------


class TokenBucket:
    """Deterministic token-bucket rate limiter (virtual-time driven).

    Invariants (property-tested): the level never drops below zero and
    never exceeds the capacity; a successful :meth:`try_take` removes
    exactly ``n`` tokens; a failed one removes none.
    """

    __slots__ = ("rate", "capacity", "level", "updated_at")

    def __init__(self, rate: float, capacity: float,
                 now: float = 0.0,
                 level: Optional[float] = None) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.level = self.capacity if level is None else \
            min(float(level), self.capacity)
        self.updated_at = float(now)

    def _refill(self, now: float) -> None:
        elapsed = now - self.updated_at
        if elapsed > 0:
            self.level = min(self.capacity, self.level + elapsed * self.rate)
        self.updated_at = max(self.updated_at, now)

    def peek(self, now: float) -> float:
        """Current token level at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.level

    def try_take(self, n: float = 1.0, now: float = 0.0) -> bool:
        """Take ``n`` tokens if available; False (and no change) if not."""
        if n < 0:
            raise ValueError("cannot take a negative number of tokens")
        self._refill(now)
        if self.level + 1e-12 >= n:
            self.level = max(0.0, self.level - n)
            return True
        return False

    def seconds_until(self, n: float, now: float) -> float:
        """Virtual seconds until ``n`` tokens will be available (0 if
        already available; ``inf`` if ``n`` exceeds capacity or rate=0)."""
        self._refill(now)
        if self.level >= n:
            return 0.0
        if n > self.capacity or self.rate == 0:
            return float("inf")
        return (n - self.level) / self.rate


# -- circuit breaker ---------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """When to trip and how patiently to probe."""

    #: Consecutive failures that open the breaker.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before allowing probes.
    cooldown_seconds: float = 2.0
    #: Probes allowed through while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")

    def to_config(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_config(cls, config: Optional[Dict[str, Any]]
                    ) -> Optional["BreakerConfig"]:
        if config is None:
            return None
        fields = ("failure_threshold", "cooldown_seconds",
                  "half_open_probes")
        return cls(**{f: config[f] for f in fields if f in config})


class CircuitBreaker:
    """The open → half-open → closed state machine.

    Callers ask :meth:`allow` before attempting the guarded operation
    and report the outcome with :meth:`record_success` /
    :meth:`record_failure`.  ``on_transition(old, new, now)`` fires on
    every state change (used for telemetry).
    """

    def __init__(self, config: Optional[BreakerConfig] = None,
                 on_transition: Optional[
                     Callable[[str, str, float], None]] = None
                 ) -> None:
        self.config = config or BreakerConfig()
        self.on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opened_count = 0
        self.fast_failures = 0
        self._probes_inflight = 0

    def _transition(self, new_state: str, now: float) -> None:
        old, self.state = self.state, new_state
        if new_state == BREAKER_OPEN:
            self.opened_at = now
            self.opened_count += 1
        if new_state == BREAKER_HALF_OPEN:
            self._probes_inflight = 0
        if new_state == BREAKER_CLOSED:
            self.consecutive_failures = 0
            self.opened_at = None
        if self.on_transition is not None and old != new_state:
            self.on_transition(old, new_state, now)

    def allow(self, now: float) -> bool:
        """May the guarded operation be attempted at ``now``?"""
        if self.state == BREAKER_OPEN:
            opened_at = self.opened_at if self.opened_at is not None else now
            if now - opened_at >= self.config.cooldown_seconds:
                self._transition(BREAKER_HALF_OPEN, now)
            else:
                self.fast_failures += 1
                return False
        if self.state == BREAKER_HALF_OPEN:
            if self._probes_inflight >= self.config.half_open_probes:
                self.fast_failures += 1
                return False
            self._probes_inflight += 1
        return True

    def record_success(self, now: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_CLOSED, now)
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_OPEN, now)
            return
        self.consecutive_failures += 1
        if self.state == BREAKER_CLOSED and \
                self.consecutive_failures >= self.config.failure_threshold:
            self._transition(BREAKER_OPEN, now)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_count": self.opened_count,
            "fast_failures": self.fast_failures,
        }
