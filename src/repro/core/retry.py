"""Retry policies: exponential backoff with deterministic jitter.

The transport layer (``AgentContext.send``/``meet``/``go``/``spawn_to``)
retries *transient* failures (see :func:`repro.core.errors.is_transient`)
under a :class:`RetryPolicy`.  Jitter is drawn from a seeded
:class:`repro.sim.rng.RandomStream`-compatible source so identical seeds
replay identical retry schedules — a hard requirement for the chaos
harness's byte-for-byte reproducibility.

A policy travels with a mobile agent as a plain JSON folder
(:data:`repro.core.wellknown.RETRY`); the destination VM re-installs it
at launch with a jitter stream derived from the new instance id, so the
schedule stays deterministic across hops without shipping RNG state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Protocol


class JitterSource(Protocol):
    """Anything that can draw a uniform float (a seeded RandomStream)."""

    def uniform(self, low: float, high: float) -> float: ...


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retries entirely.  The delay before attempt ``n`` (n >= 1, i.e.
    before the first *re*-try) is::

        min(base_delay * multiplier ** (n - 1), max_delay)

    scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @property
    def retries(self) -> int:
        """Number of *re*-tries after the first attempt."""
        return self.max_attempts - 1

    def delay(self, retry_index: int,
              rng: Optional[JitterSource] = None) -> float:
        """Backoff before the ``retry_index``-th retry (0-based).

        ``rng`` is anything with a ``uniform(low, high)`` method (a
        :class:`repro.sim.rng.RandomStream`); without one the delay is
        the deterministic midpoint (no jitter).
        """
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        base = min(self.base_delay * self.multiplier ** retry_index,
                   self.max_delay)
        if rng is not None and self.jitter:
            return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return base

    # -- travelling with a briefcase -------------------------------------------

    def to_config(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_config(cls, config: Optional[Dict[str, Any]]
                    ) -> Optional["RetryPolicy"]:
        if config is None:
            return None
        known = {f: config[f] for f in
                 ("max_attempts", "base_delay", "multiplier", "max_delay",
                  "jitter") if f in config}
        return cls(**known)


def install_retry(briefcase: Any, policy: "RetryPolicy",
                  seed: int = 0) -> None:
    """Attach ``policy`` to an agent briefcase (picked up at VM launch).

    ``seed`` feeds the per-instance jitter stream at each destination.
    """
    from repro.core import wellknown
    config = policy.to_config()
    config["seed"] = int(seed)
    briefcase.put(wellknown.RETRY, config)


#: Defaults used by the chaos harness and the resilient experiments.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Explicit "first attempt only" policy (identical to no policy at all).
NO_RETRY = RetryPolicy(max_attempts=1)
