"""Elements: the most basic TAX data type.

Per the paper (section 3.1), *"an element is an uninterpreted sequence of
bits"*.  An :class:`Element` is therefore an immutable wrapper around
``bytes``, plus convenience constructors/accessors for the encodings agents
actually use (text, integers, JSON-like structures via the stdlib).

Interpretation is always the reader's choice — the system never inspects
element contents, which is what makes briefcases language-independent.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.core.errors import BriefcaseError

#: What the constructor coerces to exact ``bytes``.
ElementData = Union[bytes, bytearray, memoryview, "Element"]


class Element:
    """An immutable, uninterpreted sequence of bytes."""

    __slots__ = ("_data",)

    def __init__(self, data: ElementData = b"") -> None:
        raw: Any = data
        if isinstance(raw, Element):
            raw = raw._data
        elif isinstance(raw, (bytearray, memoryview)):
            raw = bytes(raw)
        if not isinstance(raw, bytes):
            raise TypeError(
                f"Element wraps bytes; got {type(data).__name__} "
                "(use Element.of() to encode Python values)")
        self._data = raw

    # -- constructors ----------------------------------------------------------

    @classmethod
    def of(cls, value: Any) -> "Element":
        """Encode a Python value by its natural encoding.

        bytes stay raw; str becomes UTF-8; int/float/bool/None and
        JSON-representable containers are encoded as JSON text.
        """
        if isinstance(value, Element):
            return value
        if isinstance(value, (bytes, bytearray, memoryview)):
            return cls(bytes(value))
        if isinstance(value, str):
            return cls(value.encode("utf-8"))
        try:
            return cls(json.dumps(value, sort_keys=True).encode("utf-8"))
        except (TypeError, ValueError) as exc:
            raise BriefcaseError(
                f"cannot encode {type(value).__name__} as an element") from exc

    @classmethod
    def _wrap(cls, data: bytes) -> "Element":
        """Internal fast constructor for the codec hot path.

        ``data`` must already be exact ``bytes``; this skips the
        type-coercion checks of :meth:`__init__` (the decoder produces
        ``bytes`` by construction).
        """
        element = cls.__new__(cls)
        element._data = data
        return element

    @classmethod
    def from_text(cls, text: str) -> "Element":
        return cls(text.encode("utf-8"))

    @classmethod
    def from_int(cls, value: int) -> "Element":
        return cls(str(int(value)).encode("ascii"))

    @classmethod
    def from_json(cls, value: Any) -> "Element":
        return cls(json.dumps(value, sort_keys=True).encode("utf-8"))

    # -- accessors --------------------------------------------------------------

    @property
    def data(self) -> bytes:
        """The raw bytes."""
        return self._data

    def as_text(self) -> str:
        try:
            return self._data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BriefcaseError("element is not valid UTF-8 text") from exc

    def as_int(self) -> int:
        try:
            return int(self.as_text())
        except ValueError as exc:
            raise BriefcaseError("element is not an integer") from exc

    def as_json(self) -> Any:
        try:
            return json.loads(self.as_text())
        except (json.JSONDecodeError, BriefcaseError) as exc:
            raise BriefcaseError("element is not JSON") from exc

    # -- protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Element):
            return self._data == other._data
        if isinstance(other, bytes):
            return self._data == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Element, self._data))

    def __repr__(self) -> str:
        preview = self._data[:32]
        suffix = "..." if len(self._data) > 32 else ""
        return f"Element({preview!r}{suffix}, {len(self._data)} bytes)"
