"""Well-known folder names used by the TAX system and service agents.

The briefcase layer never interprets folder contents, but the system and
the standard service agents agree on a handful of folder *names* — the
moral equivalent of well-known Unix environment variables.  Agents are
free to use any other names for their own state.
"""

#: Itinerary of agent URIs still to visit (Figure 4's hello-world agent).
HOSTS = "HOSTS"

#: The agent's executable payload (code, source text, or binary list).
CODE = "CODE"

#: Kind tag describing how CODE should be executed (one of the
#: ``repro.vm.loader`` payload kinds).
CODE_KIND = "CODE-KIND"

#: Original payload preserved across a compile-at-destination launch:
#: vm_source compiles CODE into a binary for vm_bin, but the *agent*
#: keeps carrying its source (Figure 3 repeats per landing pad), so the
#: original is stashed here and restored into CODE at launch.
CODE_ORIG = "CODE-ORIG"
CODE_KIND_ORIG = "CODE-KIND-ORIG"

#: Arguments passed to the agent / service call.
ARGS = "ARGS"

#: Accumulated results carried home by the agent.
RESULTS = "RESULTS"

#: Error description set by a failing service call or VM.
ERROR = "ERROR"

#: Status value for request/reply service calls ("ok" / "error").
STATUS = "STATUS"

#: Signature over the CODE folder, set by the packager.
SIGNATURE = "SIGNATURE"

#: Principal name claimed by the briefcase's sender/owner.
PRINCIPAL = "PRINCIPAL"

#: Name the agent wishes to register under at the destination.
AGENT_NAME = "AGENT-NAME"

#: Reply address (an agent URI string) for request/reply exchanges.
REPLY_TO = "REPLY-TO"

#: Correlation token matching replies to requests.
MEET_TOKEN = "MEET-TOKEN"

#: Folder used by ag_exec: list of per-architecture binaries.
BINARIES = "BINARIES"

#: The operation requested from a service agent or the firewall.
OP = "OP"

#: System folder: the chain of wrapper payloads around an inner agent.
WRAPPERS = "WRAPPERS"

#: Trace of hosts visited, appended by the mobility machinery.
TRAIL = "TRAIL"

#: Transport retry policy (JSON RetryPolicy config) carried by the agent;
#: the destination VM re-installs it into the new context at launch.
RETRY = "RETRY-POLICY"

#: Reserved system folder: the W3C-traceparent-style causal trace
#: context (see :mod:`repro.obs.propagation`).  It exists only on the
#: raw wire — firewalls strip it into the message envelope on receipt,
#: and it is never present while a briefcase is resident on a host.
TRACE_CONTEXT = "TRACE-CONTEXT"

#: Reserved system folder: the per-sender monotonic sequence number
#: behind firewall-level duplicate suppression (see
#: :mod:`repro.firewall.dedup`).  Like TRACE-CONTEXT it exists only on
#: the raw wire — in-simulation the sequence rides the Message envelope
#: at zero wire bytes, and ``receive_wire`` always strips the folder.
DELIVERY_SEQ = "DELIVERY-SEQ"

#: Reserved system folder: the unique landing id a ``go``/``spawn``
#: transport carries so a retried or duplicated migration lands exactly
#: once (see :class:`repro.firewall.dedup.LandingRegistry`).  Wire-only,
#: like DELIVERY-SEQ; in-sim it rides the Message envelope.
LANDING_ID = "LANDING-ID"

#: Incarnation counter of a recoverable agent: stamped into the task
#: briefcase at launch and bumped by every checkpoint recovery, so a
#: rear guard can tell a relaunched agent from an orphaned twin.
INCARNATION = "INCARNATION"

SYSTEM_FOLDERS = frozenset({
    CODE, CODE_KIND, SIGNATURE, PRINCIPAL, AGENT_NAME, WRAPPERS,
    TRACE_CONTEXT, DELIVERY_SEQ, LANDING_ID,
})
