"""Folders: named, ordered lists of elements inside a briefcase.

Per the paper (section 3.1), each briefcase is an associative array of
folders, and each folder contains *an ordered list of elements*.  The
original TACOMA C API indexes folders 1-based (``fRemove(folder, 1)``
removes the first element — see the Figure 4 agent); this implementation
offers a Pythonic 0-based sequence API plus the queue-style operations
agents actually use (``push``/``pop_first``).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

from repro.core.element import Element
from repro.core.errors import BriefcaseError


class Folder:
    """An ordered list of :class:`Element` values with a name.

    Every mutation bumps ``_version``, a monotonically increasing counter
    that :class:`~repro.core.briefcase.Briefcase` uses to detect whether
    its cached wire encoding is still valid (see
    ``Briefcase._wire_fingerprint``).  The counter carries no meaning
    beyond "has this folder changed since the fingerprint was taken".
    """

    __slots__ = ("name", "_elements", "_version")

    def __init__(self, name: str,
                 elements: Iterable[Any] = ()) -> None:
        if not isinstance(name, str) or not name:
            raise BriefcaseError("folder name must be a non-empty string")
        self.name = name
        self._elements: List[Element] = [Element.of(e) for e in elements]
        self._version = 0

    # -- mutation ---------------------------------------------------------------

    def push(self, value: Any) -> Element:
        """Append a value (encoded with :meth:`Element.of`) to the end."""
        element = Element.of(value)
        self._elements.append(element)
        self._version += 1
        return element

    def push_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.push(value)

    def insert(self, index: int, value: Any) -> Element:
        element = Element.of(value)
        self._elements.insert(index, element)
        self._version += 1
        return element

    def pop_first(self) -> Optional[Element]:
        """Remove and return the first element, or None when empty.

        This mirrors the hello-world agent's ``fRemove(..., 1)`` idiom:
        a None result is the itinerary-exhausted signal.
        """
        if not self._elements:
            return None
        self._version += 1
        return self._elements.pop(0)

    def pop_last(self) -> Optional[Element]:
        if not self._elements:
            return None
        self._version += 1
        return self._elements.pop()

    def remove_at(self, index: int) -> Element:
        try:
            element = self._elements.pop(index)
        except IndexError as exc:
            raise BriefcaseError(
                f"folder {self.name!r} has no element at index {index}"
            ) from exc
        self._version += 1
        return element

    def clear(self) -> None:
        self._elements.clear()
        self._version += 1

    def replace(self, values: Iterable[Any]) -> None:
        """Replace the entire contents with freshly-encoded values."""
        self._elements = [Element.of(v) for v in values]
        self._version += 1

    # -- access -------------------------------------------------------------------

    def first(self) -> Optional[Element]:
        return self._elements[0] if self._elements else None

    def last(self) -> Optional[Element]:
        return self._elements[-1] if self._elements else None

    def texts(self) -> List[str]:
        """All elements decoded as UTF-8 text."""
        return [e.as_text() for e in self._elements]

    def byte_size(self) -> int:
        """Total payload bytes held by this folder."""
        return sum(len(e) for e in self._elements)

    def copy(self) -> "Folder":
        """A snapshot copy (elements are immutable, so sharing is safe)."""
        folder = Folder(self.name)
        folder._elements = list(self._elements)
        return folder

    # -- sequence protocol -----------------------------------------------------------

    def __getitem__(self, index: int) -> Element:
        try:
            return self._elements[index]
        except IndexError as exc:
            raise BriefcaseError(
                f"folder {self.name!r} has no element at index {index}"
            ) from exc

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __bool__(self) -> bool:
        return bool(self._elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Folder):
            return NotImplemented
        return self.name == other.name and self._elements == other._elements

    def __repr__(self) -> str:
        return (f"<Folder {self.name!r}: {len(self._elements)} elements, "
                f"{self.byte_size()} bytes>")
