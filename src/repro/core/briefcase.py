"""Briefcases: the transportable state of a mobile agent.

Per the paper (section 3.1): *"the transportable state of a mobile agent
(code, arguments, results), is collected in a briefcase.  A briefcase is
then a consistent snapshot of the executing agent as it is transported
between hosts."*  A briefcase is an associative array of
:class:`~repro.core.folder.Folder` objects, and it is both the unit of
transport between hosts and the unit of exchange between communicating
agents.

Two properties the paper calls out are preserved here:

- Agents can **drop state** no longer needed (:meth:`Briefcase.drop`),
  minimising the bytes moved on the next hop.
- A briefcase is a **consistent snapshot**: :meth:`Briefcase.snapshot`
  yields an independent copy, and the codec serialises deterministically.

A briefcase also carries a **wire-encoding cache** (see
``_wire_fingerprint`` below): the codec stores the encoded bytes / size
after the first encode, so firewall admission, the network transfer
charge, and telemetry byte-accounting — which would otherwise each
re-encode the same briefcase on every hop — reuse one encoding.  The
cache is validated against a fingerprint of (folder identity, folder
version) pairs, so *any* mutation through the :class:`Folder` or
:class:`Briefcase` API invalidates it; property tests in
``tests/test_properties_perf.py`` pin that invariant for every mutating
operation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.element import Element
from repro.core.errors import BriefcaseError, FolderNotFoundError
from repro.core.folder import Folder


class Briefcase:
    """An associative array of folders."""

    __slots__ = ("_folders", "_wire_stamp", "_wire_bytes", "_wire_size")

    def __init__(self, folders: Optional[Dict[str, Iterable[Any]]]
                 = None) -> None:
        self._folders: Dict[str, Folder] = {}
        #: Cache of the wire encoding, maintained by the codec.  The
        #: stamp is the fingerprint the cache was taken against; the
        #: bytes may be absent (None) when only the size is known.
        self._wire_stamp: Optional[
            Tuple[Tuple[Folder, int], ...]] = None
        self._wire_bytes: Optional[bytes] = None
        self._wire_size: Optional[int] = None
        if folders:
            for name, values in folders.items():
                self.folder(name).push_all(values)

    # -- folder management --------------------------------------------------------

    def folder(self, name: str) -> Folder:
        """The folder called ``name``, created empty if absent."""
        try:
            return self._folders[name]
        except KeyError:
            folder = Folder(name)
            self._folders[name] = folder
            return folder

    def get(self, name: str) -> Folder:
        """The folder called ``name``; raises if absent."""
        try:
            return self._folders[name]
        except KeyError:
            raise FolderNotFoundError(name) from None

    def has(self, name: str) -> bool:
        return name in self._folders

    def drop(self, name: str) -> bool:
        """Remove a folder entirely ("drop state").  Returns True if present.

        This is the paper's bandwidth-saving move: shed folders before
        calling ``go`` so they are not shipped on the next hop.
        """
        return self._folders.pop(name, None) is not None

    def drop_all_except(self, keep: Iterable[str]) -> List[str]:
        """Drop every folder not named in ``keep``; returns dropped names."""
        keep_set = set(keep)
        dropped = [name for name in self._folders if name not in keep_set]
        for name in dropped:
            del self._folders[name]
        return dropped

    def names(self) -> List[str]:
        return list(self._folders)

    # -- scalar convenience ---------------------------------------------------------

    def put(self, folder_name: str, value: Any) -> None:
        """Replace folder contents with a single value (set-a-variable idiom)."""
        self.folder(folder_name).replace([value])

    def get_first(self, folder_name: str) -> Optional[Element]:
        """The first element of a folder, or None if folder absent/empty."""
        folder = self._folders.get(folder_name)
        return folder.first() if folder else None

    def get_text(self, folder_name: str, default: Optional[str] = None
                 ) -> Optional[str]:
        element = self.get_first(folder_name)
        return element.as_text() if element is not None else default

    def get_json(self, folder_name: str, default: Any = None) -> Any:
        element = self.get_first(folder_name)
        return element.as_json() if element is not None else default

    def append(self, folder_name: str, value: Any) -> None:
        self.folder(folder_name).push(value)

    # -- wire-encoding cache (maintained by repro.core.codec) ---------------------

    def _wire_fingerprint(self) -> Tuple[Tuple[Folder, int], ...]:
        """The cache-validity token: (folder, version) pairs in order.

        Folder objects are held by identity (the tuple keeps them alive,
        so an ``id``-reuse after garbage collection cannot alias), and
        every mutating :class:`~repro.core.folder.Folder` operation bumps
        the version, so the fingerprint changes iff the wire encoding
        could have changed.
        """
        return tuple((folder, folder._version)
                     for folder in self._folders.values())

    def _wire_cache_valid(self) -> bool:
        stamp = self._wire_stamp
        if stamp is None or len(stamp) != len(self._folders):
            return False
        for (folder, version), current in zip(stamp,
                                              self._folders.values()):
            if folder is not current or version != folder._version:
                return False
        return True

    def _wire_cache_store(self, data: Optional[bytes],
                          size: int) -> None:
        """Record the current encoding (bytes may be None: size only)."""
        self._wire_stamp = self._wire_fingerprint()
        self._wire_bytes = data
        self._wire_size = size

    def _wire_cached_bytes(self) -> Optional[bytes]:
        if self._wire_bytes is not None and self._wire_cache_valid():
            return self._wire_bytes
        return None

    def _wire_cached_size(self) -> Optional[int]:
        if self._wire_size is not None and self._wire_cache_valid():
            return self._wire_size
        return None

    # -- whole-briefcase operations ----------------------------------------------------

    def snapshot(self) -> "Briefcase":
        """An independent copy (the transport unit is always a snapshot)."""
        copy = Briefcase()
        for name, folder in self._folders.items():
            copy._folders[name] = folder.copy()
        if self._wire_cache_valid():
            # The copy encodes byte-identically, so it inherits the
            # cached encoding (re-stamped against its own folders).
            copy._wire_stamp = copy._wire_fingerprint()
            copy._wire_bytes = self._wire_bytes
            copy._wire_size = self._wire_size
        return copy

    def merge(self, other: "Briefcase", append: bool = True) -> None:
        """Fold another briefcase's folders into this one.

        With ``append=True`` (default) elements are appended to existing
        folders; with ``append=False`` same-named folders are replaced.
        """
        for name, folder in other._folders.items():
            if append and name in self._folders:
                self._folders[name].push_all(folder)
            else:
                self._folders[name] = folder.copy()

    def payload_bytes(self) -> int:
        """Total element bytes across all folders (excludes framing)."""
        return sum(folder.byte_size() for folder in self._folders.values())

    def to_dict(self) -> Dict[str, List[bytes]]:
        """A plain-dict view, mostly for tests and debugging."""
        return {name: [e.data for e in folder]
                for name, folder in self._folders.items()}

    @classmethod
    def from_dict(cls, mapping: Dict[str, Iterable[Any]]) -> "Briefcase":
        return cls(dict(mapping))

    # -- protocol -------------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._folders

    def __iter__(self) -> Iterator[Folder]:
        return iter(self._folders.values())

    def __len__(self) -> int:
        return len(self._folders)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Briefcase):
            return NotImplemented
        return self._folders == other._folders

    def __repr__(self) -> str:
        return (f"<Briefcase {len(self._folders)} folders, "
                f"{self.payload_bytes()} payload bytes: "
                f"{sorted(self._folders)}>")
