"""Exception hierarchy for the TAX agent system."""


class TaxError(Exception):
    """Base class for all TAX errors."""


class BriefcaseError(TaxError):
    """Malformed briefcase operation."""


class FolderNotFoundError(BriefcaseError, KeyError):
    """A briefcase does not contain the requested folder."""

    def __init__(self, name):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"no folder named {self.name!r} in briefcase"


class CodecError(TaxError):
    """A briefcase could not be encoded or decoded."""


class UriSyntaxError(TaxError, ValueError):
    """An agent URI does not conform to the Figure-2 EBNF grammar."""


class IdentityError(TaxError, ValueError):
    """An invalid principal or agent identifier."""


class AccessDeniedError(TaxError):
    """The firewall's reference monitor rejected an operation."""


class TrustError(AccessDeniedError):
    """A signature was missing, invalid, or from an untrusted principal."""


class AgentNotFoundError(TaxError):
    """No registered agent matches the given address."""


class AmbiguousAgentError(TaxError):
    """A partially-specified address matched more than one agent."""


class CommTimeoutError(TaxError):
    """A queued message or a blocking receive timed out."""


class VMError(TaxError):
    """A virtual machine failed to host or execute an agent."""


class UnsupportedPayloadError(VMError):
    """The VM cannot execute this kind of agent payload."""


class MigrationError(TaxError):
    """An agent's ``go``/``spawn`` could not be completed."""


class ServiceError(TaxError):
    """A service agent (ag_exec, ag_fs, ...) reported a failure."""


class SandboxViolation(VMError):
    """Sandboxed agent code exceeded its budget or touched a denied capability."""
