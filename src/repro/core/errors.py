"""Exception hierarchy for the TAX agent system.

Errors carry a retryability classification used by the transport retry
machinery (:mod:`repro.core.retry`): a class-level ``transient``
attribute that is ``True`` for failures a retry may fix (link flaps,
hosts mid-restart, queue timeouts), ``False`` for failures no retry can
fix (policy denials, missing routes, bad payloads), and ``None`` for
"unknown" — in which case :func:`is_transient` keeps walking the
``__cause__`` chain, so a :class:`MigrationError` wrapping a
``LinkDownError`` classifies by its cause.
"""

from __future__ import annotations

from typing import List, Optional, Set


class TaxError(Exception):
    """Base class for all TAX errors."""

    #: Retryability: True (transient), False (permanent), None (unknown —
    #: classify by the exception's cause chain).
    transient: Optional[bool] = None


class BriefcaseError(TaxError):
    """Malformed briefcase operation."""


class FolderNotFoundError(BriefcaseError, KeyError):
    """A briefcase does not contain the requested folder."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"no folder named {self.name!r} in briefcase"


class CodecError(TaxError):
    """A briefcase could not be encoded or decoded."""


class MalformedBriefcaseError(CodecError):
    """Wire bytes are truncated, corrupt, or structurally implausible.

    No retry can repair a broken payload, so this classifies permanent;
    receivers quarantine the offending message instead of crashing.
    """

    transient = False


class BriefcaseTooLargeError(CodecError):
    """A briefcase exceeds the configured wire limits (size or counts)."""

    transient = False


class UriSyntaxError(TaxError, ValueError):
    """An agent URI does not conform to the Figure-2 EBNF grammar."""


class IdentityError(TaxError, ValueError):
    """An invalid principal or agent identifier."""


class TransientError(TaxError):
    """A failure that may well succeed if the operation is retried."""

    transient = True


class PermanentError(TaxError):
    """A failure that no amount of retrying can fix."""

    transient = False


class OverloadError(TransientError):
    """Admission control shed this work; backing off and retrying may
    succeed once the pressure drops (the governor's rejections are
    deliberately transient so the PR 2 :class:`RetryPolicy` absorbs
    them)."""


class QueueFullError(OverloadError):
    """A bounded message queue is at capacity and the overflow policy
    rejects new arrivals."""


class QuotaExceededError(OverloadError):
    """A per-principal quota (message rate, bytes in flight, resident
    agents, cabinet bytes) is exhausted."""


class CircuitOpenError(OverloadError):
    """A circuit breaker is open: the target failed repeatedly and calls
    are fast-failed until the cooldown elapses."""


class AccessDeniedError(PermanentError):
    """The firewall's reference monitor rejected an operation."""


class TrustError(AccessDeniedError):
    """A signature was missing, invalid, or from an untrusted principal."""


class AgentNotFoundError(TaxError):
    """No registered agent matches the given address."""

    # Absent agents may still arrive (messages are parked for them), so
    # a retry is meaningful; unknown *hosts* raise this too, which is
    # permanent — the cause chain disambiguates in practice, so leave
    # the classification unknown.


class AmbiguousAgentError(PermanentError):
    """A partially-specified address matched more than one agent."""


class CommTimeoutError(TransientError):
    """A queued message or a blocking receive timed out."""


class VMError(PermanentError):
    """A virtual machine failed to host or execute an agent."""


class UnsupportedPayloadError(VMError):
    """The VM cannot execute this kind of agent payload."""


class MigrationError(TaxError):
    """An agent's ``go``/``spawn`` could not be completed."""


class ServiceError(TaxError):
    """A service agent (ag_exec, ag_fs, ...) reported a failure."""


class SandboxViolation(VMError):
    """Sandboxed agent code exceeded its budget or touched a denied capability."""


def is_transient(exc: BaseException, max_depth: int = 16) -> bool:
    """True when ``exc`` classifies as retryable.

    Walks the ``__cause__``/``__context__`` chain until an exception
    declares itself (``transient = True``/``False``); an undeclared
    chain classifies as permanent — retrying an unknown failure is the
    dangerous default.
    """
    # Cycle detection keys on identity deliberately: exception equality
    # is not well-defined and hashing arbitrary exceptions can raise.
    # ``pinned`` holds a strong reference to every visited exception for
    # the duration of the walk, so no id can be recycled mid-traversal
    # even if a hostile ``transient`` property mutates the chain.
    seen: Set[int] = set()
    pinned: List[BaseException] = []
    current: Optional[BaseException] = exc
    for _ in range(max_depth):
        if current is None or id(current) in seen:  # lint: disable=DET005
            break
        seen.add(id(current))  # lint: disable=DET005
        pinned.append(current)
        verdict = getattr(current, "transient", None)
        if verdict is not None:
            return bool(verdict)
        current = current.__cause__ or current.__context__
    return False
