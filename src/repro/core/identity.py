"""Principals and agent identifiers.

An agent is addressed by *host, port, principal, name, instance* (paper
section 3.2).  This module provides the name/instance and principal parts;
:mod:`repro.core.uri` composes them with the host part into full agent
URIs.

Instance numbers in the original system were Unix timestamps (e.g.
``933821661``).  In the simulation we need determinism, so each site owns
an :class:`InstanceAllocator` issuing unique hex strings derived from a
site ordinal and a counter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import IdentityError

#: The site-local system principal (always trusted locally, like root).
SYSTEM_PRINCIPAL = "system"

#: Anonymous principal for unsigned agents.
ANONYMOUS_PRINCIPAL = "anonymous"

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")
_INSTANCE_RE = re.compile(r"^[0-9a-fA-F]+$")
_PRINCIPAL_RE = re.compile(r"^[A-Za-z0-9_.-]+(@[A-Za-z0-9_.-]+)?$")


def validate_agent_name(name: str) -> str:
    """Check an agent name against the Figure-2 grammar (alphanumeric,
    extended with ``_ . -`` which the paper's own examples use)."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise IdentityError(f"invalid agent name {name!r}")
    return name


def validate_instance(instance: str) -> str:
    """Check an instance string (hex digits); returns it lowercased."""
    if not isinstance(instance, str) or not _INSTANCE_RE.match(instance):
        raise IdentityError(f"invalid instance {instance!r} (must be hex)")
    return instance.lower()


def validate_principal(principal: str) -> str:
    """Check a principal name (``user`` or ``user@host``)."""
    if not isinstance(principal, str) or not _PRINCIPAL_RE.match(principal):
        raise IdentityError(f"invalid principal {principal!r}")
    return principal


@dataclass(frozen=True)
class AgentId:
    """A fully-specified agent identity at one site: name + instance."""

    name: str
    instance: str

    def __post_init__(self) -> None:
        validate_agent_name(self.name)
        object.__setattr__(self, "instance", validate_instance(self.instance))

    def __str__(self) -> str:
        return f"{self.name}:{self.instance}"

    @classmethod
    def parse(cls, text: str) -> "AgentId":
        name, sep, instance = text.partition(":")
        if not sep or not name or not instance:
            raise IdentityError(
                f"agent id must be 'name:instance', got {text!r}")
        return cls(name, instance)


class InstanceAllocator:
    """Issues unique, deterministic instance strings for one site.

    The high bits carry the site ordinal so instances are globally unique
    across a simulated cluster, matching the paper's use of instances to
    "make sure one continues to communicate with the same entity".
    """

    def __init__(self, site_ordinal: int = 0) -> None:
        if site_ordinal < 0:
            raise ValueError("site_ordinal must be non-negative")
        self._site = site_ordinal
        self._counter = 0

    def next_instance(self) -> str:
        self._counter += 1
        return format((self._site << 32) | self._counter, "x")

    def next_id(self, name: str) -> AgentId:
        return AgentId(name, self.next_instance())


@dataclass(frozen=True)
class Principal:
    """A named authority on whose behalf an agent runs."""

    name: str

    def __post_init__(self) -> None:
        validate_principal(self.name)

    @property
    def is_system(self) -> bool:
        return self.name == SYSTEM_PRINCIPAL

    def __str__(self) -> str:
        return self.name


def principal_name(value: Optional[object]) -> Optional[str]:
    """Coerce a Principal | str | None into a validated name or None."""
    if value is None:
        return None
    if isinstance(value, Principal):
        return value.name
    if isinstance(value, str):
        return validate_principal(value)
    raise IdentityError(f"not a principal: {value!r}")
