"""Agent URIs: the Figure-2 EBNF grammar, parser, and matcher.

The paper's grammar (Figure 2)::

    tacomauri := [ "tacoma://" hostport "/" ] agpath
    hostport  := host [ ":" port ]
    agpath    := [ principal "/" ] agentid
    agentid   := name ":" instance | name | ":" instance

with the paper's own examples::

    tacoma://cl2.cs.uit.no:27017//vm_c:933821661
    tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron
    tacomaproject/:933821661

Note the first example's double slash: the principal part is present but
*empty*, meaning "unspecified".  Per section 3.2, when the remote part is
absent the firewall assumes a local target, and when the principal is
absent only two principals are considered valid: the local system, and the
principal of the sending agent.

Every component except the (name, instance) pair — of which at least one
must be given — is optional, so the same type doubles as an address
*pattern*: :meth:`AgentUri.matches_agent` implements the firewall's
partial-name matching.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.errors import UriSyntaxError
from repro.core.identity import (
    AgentId,
    validate_agent_name,
    validate_instance,
    validate_principal,
)

SCHEME = "tacoma://"

_HOST_RE = re.compile(r"^[A-Za-z0-9]([A-Za-z0-9.-]*[A-Za-z0-9])?$")

#: Default firewall port, in the spirit of the paper's example port.
DEFAULT_PORT = 27017


@dataclass(frozen=True)
class AgentUri:
    """A (possibly partial) agent address."""

    host: Optional[str] = None
    port: Optional[int] = None
    principal: Optional[str] = None
    name: Optional[str] = None
    instance: Optional[str] = None

    def __post_init__(self) -> None:
        if self.host is not None and not _HOST_RE.match(self.host):
            raise UriSyntaxError(f"invalid host {self.host!r}")
        if self.port is not None:
            if self.host is None:
                raise UriSyntaxError("port given without host")
            if not 0 < self.port < 65536:
                raise UriSyntaxError(f"invalid port {self.port}")
        if self.principal is not None:
            validate_principal(self.principal)
        if self.name is not None:
            validate_agent_name(self.name)
        if self.instance is not None:
            object.__setattr__(
                self, "instance", validate_instance(self.instance))
        if self.name is None and self.instance is None:
            raise UriSyntaxError(
                "agent URI needs at least a name or an instance")

    # -- parsing ---------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "AgentUri":
        """Parse the Figure-2 grammar."""
        if not isinstance(text, str) or not text:
            raise UriSyntaxError("empty agent URI")
        rest = text
        host: Optional[str] = None
        port: Optional[int] = None
        if rest.startswith(SCHEME):
            rest = rest[len(SCHEME):]
            hostport, sep, rest = rest.partition("/")
            if not sep:
                raise UriSyntaxError(
                    f"missing '/' after host part in {text!r}")
            if not hostport:
                raise UriSyntaxError(f"empty host in {text!r}")
            host_str, colon, port_str = hostport.partition(":")
            host = host_str
            if colon:
                try:
                    port = int(port_str)
                except ValueError:
                    raise UriSyntaxError(
                        f"invalid port {port_str!r} in {text!r}") from None
        principal: Optional[str] = None
        if "/" in rest:
            principal_str, _slash, rest = rest.partition("/")
            # An empty principal segment (the "//" in the paper's first
            # example) means "unspecified".
            principal = principal_str or None
            if "/" in rest:
                raise UriSyntaxError(f"too many '/' segments in {text!r}")
        name, instance = cls._parse_agentid(rest, text)
        try:
            return cls(host=host, port=port, principal=principal,
                       name=name, instance=instance)
        except UriSyntaxError:
            raise
        except ValueError as exc:
            raise UriSyntaxError(f"invalid agent URI {text!r}: {exc}") from exc

    @staticmethod
    def _parse_agentid(part: str, whole: str
                       ) -> Tuple[Optional[str], Optional[str]]:
        if not part:
            raise UriSyntaxError(f"missing agent id in {whole!r}")
        name_str, colon, instance_str = part.partition(":")
        name = name_str or None
        if colon:
            if not instance_str:
                raise UriSyntaxError(f"empty instance in {whole!r}")
            instance: Optional[str] = instance_str
        else:
            instance = None
        return name, instance

    # -- formatting ---------------------------------------------------------------

    def __str__(self) -> str:
        parts: List[str] = []
        if self.host is not None:
            parts.append(SCHEME)
            parts.append(self.host)
            if self.port is not None:
                parts.append(f":{self.port}")
            parts.append("/")
            # Keep the "//" form for remote URIs without a principal so
            # round-trips are exact (paper example 1).
            parts.append(f"{self.principal or ''}/")
        elif self.principal is not None:
            parts.append(f"{self.principal}/")
        if self.name is not None:
            parts.append(self.name)
        if self.instance is not None:
            parts.append(f":{self.instance}")
        return "".join(parts)

    # -- derivation helpers ----------------------------------------------------------

    @property
    def is_remote(self) -> bool:
        return self.host is not None

    @property
    def agent_id(self) -> Optional[AgentId]:
        """The fully-specified identity, if both parts are present."""
        if self.name is not None and self.instance is not None:
            return AgentId(self.name, self.instance)
        return None

    def at(self, host: str, port: Optional[int] = None) -> "AgentUri":
        """This address pinned to a specific host."""
        return replace(self, host=host, port=port)

    def local(self) -> "AgentUri":
        """This address with the remote part stripped."""
        return replace(self, host=None, port=None)

    def with_principal(self, principal: Optional[str]) -> "AgentUri":
        return replace(self, principal=principal)

    @classmethod
    def for_agent(cls, name: str, instance: Optional[str] = None,
                  host: Optional[str] = None,
                  principal: Optional[str] = None) -> "AgentUri":
        return cls(host=host, principal=principal,
                   name=name, instance=instance)

    # -- matching (firewall name resolution, section 3.2) ------------------------------

    def matches_agent(self, name: str, instance: str,
                      principal: Optional[str] = None) -> bool:
        """Would this (possibly partial) URI select the given agent?

        Host/port are a routing concern and are not consulted here; the
        firewall strips them before matching locally.  A None component in
        the URI is a wildcard; the principal rule (None matches only
        system/sender principals) is the *policy* module's job, so here
        a None principal matches any.
        """
        if self.name is not None and self.name != name:
            return False
        if self.instance is not None and \
                self.instance != validate_instance(instance):
            return False
        if self.principal is not None and principal is not None and \
                self.principal != principal:
            return False
        return True

    @property
    def specificity(self) -> int:
        """How many of (name, instance, principal) are pinned down."""
        return sum(1 for field in (self.name, self.instance, self.principal)
                   if field is not None)


def parse(text: str) -> AgentUri:
    """Module-level convenience alias for :meth:`AgentUri.parse`."""
    return AgentUri.parse(text)
