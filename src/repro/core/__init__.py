"""Core TAX data model: elements, folders, briefcases, identities, URIs.

This is the language-independent heart of the system (paper section 3.1):
everything agents exchange or carry is a briefcase, and everything a
briefcase contains is uninterpreted bytes.
"""

from repro.core import codec, wellknown
from repro.core.briefcase import Briefcase
from repro.core.element import Element
from repro.core.errors import (
    AccessDeniedError,
    AgentNotFoundError,
    AmbiguousAgentError,
    BriefcaseError,
    CodecError,
    CommTimeoutError,
    FolderNotFoundError,
    IdentityError,
    MigrationError,
    SandboxViolation,
    ServiceError,
    TaxError,
    TrustError,
    UnsupportedPayloadError,
    UriSyntaxError,
    VMError,
)
from repro.core.folder import Folder
from repro.core.identity import (
    ANONYMOUS_PRINCIPAL,
    SYSTEM_PRINCIPAL,
    AgentId,
    InstanceAllocator,
    Principal,
)
from repro.core.uri import DEFAULT_PORT, AgentUri

__all__ = [
    "codec", "wellknown",
    "Briefcase", "Element", "Folder",
    "AgentId", "InstanceAllocator", "Principal",
    "ANONYMOUS_PRINCIPAL", "SYSTEM_PRINCIPAL",
    "AgentUri", "DEFAULT_PORT",
    "AccessDeniedError", "AgentNotFoundError", "AmbiguousAgentError",
    "BriefcaseError", "CodecError", "CommTimeoutError",
    "FolderNotFoundError", "IdentityError", "MigrationError",
    "SandboxViolation", "ServiceError", "TaxError", "TrustError",
    "UnsupportedPayloadError", "UriSyntaxError", "VMError",
]
