"""repro — reproduction of "Adding Mobility to Non-mobile Web Robots"
(Sudmann & Johansen, ICDCS 2000).

The package implements the TAX 2.0 mobile-agent system and its
surroundings on a deterministic discrete-event simulation:

- :mod:`repro.core` — briefcases, folders, elements, agent URIs;
- :mod:`repro.agent` — the TAX library (activate/await/meet/go/spawn);
- :mod:`repro.firewall` — per-host reference monitor, auth, queues;
- :mod:`repro.vm` — virtual machines and code shipping;
- :mod:`repro.services` — ag_exec, ag_cc, ag_fs, ag_cabinet, ag_cron,
  ag_locator;
- :mod:`repro.wrappers` — stackable wrappers (mobility, monitoring,
  group communication, location, logging, checkpointing);
- :mod:`repro.sim` / :mod:`repro.web` / :mod:`repro.robot` — the
  substrates: event kernel + network, synthetic web, and the stationary
  Webbot clone;
- :mod:`repro.system` — nodes, clusters, standard testbeds;
- :mod:`repro.mining` — the wrapped-Webbot dead-link case study;
- :mod:`repro.bench` — experiment configurations and harnesses.

Quick start::

    from repro.system import build_linkcheck_testbed
    from repro.mining import CrawlTask, run_mobile, run_stationary

    testbed = build_linkcheck_testbed()
    task = CrawlTask.for_site(testbed.site_of("www.cs.uit.no"))
    remote = run_stationary(testbed, [task])
    local = run_mobile(testbed, [task])
    print(remote.summary_row())
    print(local.summary_row())
"""

__version__ = "1.0.0"

from repro.core import AgentUri, Briefcase, Element, Folder  # noqa: F401
from repro.system import (  # noqa: F401
    TaxCluster,
    TaxNode,
    Testbed,
    build_campus_testbed,
    build_linkcheck_testbed,
)

__all__ = [
    "Briefcase", "AgentUri", "Element", "Folder",
    "TaxCluster", "TaxNode", "Testbed",
    "build_campus_testbed", "build_linkcheck_testbed",
    "__version__",
]
