"""Deployment strategies for the link-mining task.

The paper compares two ways of running the same robot:

- **stationary** (the baseline): the robot runs at the client
  workstation and pulls every page over the network;
- **mobile** (the contribution): the wrapped robot relocates to the web
  server, crawls over loopback, and ships only the condensed report
  back.

This module implements both — plus the **itinerant** multi-server audit
of E4 and its repeated-remote baseline — and measures them identically:
elapsed virtual time and bytes crossing non-loopback links.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TaxError
from repro.robot.linkcheck import validate_rejected
from repro.robot.report import DeadLinkReport
from repro.robot.webbot import Webbot, WebbotConfig
from repro.sim.ledger import CostLedger
from repro.system.bootstrap import Testbed
from repro.mining.webbot_agent import (
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    condense_webbot_result,
    crawl_args,
    make_mwwebbot,
)
from repro.web.client import ClientModel, SimHttpClient
from repro.wrappers.monitor import EVENT_FOLDER


@dataclass
class CrawlTask:
    """One site to audit."""

    site_host: str
    start_url: str
    prefix: Optional[str] = None
    max_depth: int = 12
    check_rejected: bool = True

    @classmethod
    def for_site(cls, site, max_depth: int = 12,
                 check_rejected: bool = True) -> "CrawlTask":
        return cls(site_host=site.host, start_url=site.root_url,
                   prefix=f"http://{site.host}/", max_depth=max_depth,
                   check_rejected=check_rejected)

    def args(self) -> Dict:
        return crawl_args(self.start_url, prefix=self.prefix,
                          max_depth=self.max_depth,
                          check_rejected=self.check_rejected,
                          site=self.site_host)


@dataclass
class RunMetrics:
    """What one strategy run cost and found."""

    strategy: str
    elapsed_seconds: float
    remote_bytes: int
    remote_messages: int
    reports: List[Dict] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)
    monitor_events: List[Dict] = field(default_factory=list)

    @property
    def dead_links_found(self) -> int:
        return sum(len(report.get("invalid", ())) for report in self.reports)

    @property
    def pages_scanned(self) -> int:
        return sum(report.get("pages_scanned", 0) for report in self.reports)

    @property
    def unreachable_hosts(self) -> List[str]:
        """Hosts the itinerary could not reach (``go``-phase failures)."""
        return sorted({f["host"] for f in self.failures
                       if f.get("phase") == "go"})

    def merged_report(self) -> DeadLinkReport:
        parts = [DeadLinkReport.from_json(json.dumps(r))
                 for r in self.reports]
        from repro.robot.report import merge_reports
        return merge_reports(parts)

    def summary_row(self) -> str:
        return (f"{self.strategy:<22} {self.elapsed_seconds:>10.3f}s "
                f"{self.remote_bytes:>12,d}B "
                f"pages={self.pages_scanned:<6d} "
                f"dead={self.dead_links_found}")


def _measure(testbed: Testbed, generator, name: str):
    """Run a scenario, returning (result, elapsed, bytes, messages)."""
    network = testbed.network
    start_time = testbed.kernel.now
    start_bytes = network.total_remote_bytes()
    start_messages = network.total_remote_messages()
    result = testbed.cluster.run(generator, name=name)
    return (result,
            testbed.kernel.now - start_time,
            network.total_remote_bytes() - start_bytes,
            network.total_remote_messages() - start_messages)


# -- stationary baseline ----------------------------------------------------------


def run_stationary(testbed: Testbed, tasks: Sequence[CrawlTask],
                   client_model: Optional[ClientModel] = None,
                   origin_host: Optional[str] = None) -> RunMetrics:
    """The non-mobile robot: crawl every site from the client host."""
    origin = testbed.cluster.hosts.get(
        origin_host or testbed.client.host.name)

    def scenario():
        reports = []
        for task in tasks:
            ledger = CostLedger()
            http = SimHttpClient(origin, testbed.network,
                                 testbed.deployment, ledger,
                                 model=client_model)
            config = WebbotConfig(task.start_url, prefix=task.prefix,
                                  max_depth=task.max_depth)
            result = Webbot(config, http).run()
            if task.check_rejected:
                result["second_pass_invalid"] = validate_rejected(
                    result["rejected"], http)
            else:
                result["second_pass_invalid"] = []
            # The crawl was synchronous; spend its accumulated time now.
            # Flushing the ledger first turns its per-category costs into
            # metrics and cost:<host> spans laid over the sleep we take.
            testbed.kernel.telemetry.flush_ledger(
                ledger, track=f"cost:{origin.name}",
                start=testbed.kernel.now, host=origin.name,
                strategy="stationary", site=task.site_host)
            yield testbed.kernel.timeout(ledger.total_seconds)
            reports.append(condense_webbot_result(result, task.args()))
        return reports

    reports, elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "stationary-crawl")
    return RunMetrics(strategy="stationary", elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports)


# -- mobile agent strategies -----------------------------------------------------------


def _ensure_principal(testbed: Testbed,
                      principal: str = WEBBOT_PRINCIPAL) -> None:
    cluster = testbed.cluster
    if not any(node.firewall.trust_store.knows(principal)
               for node in cluster.nodes.values()):
        cluster.add_principal(principal, trusted=True)
    else:
        for node in cluster.nodes.values():
            if not node.firewall.trust_store.is_trusted(principal):
                node.firewall.trust_store.trust(principal)


def run_mobile(testbed: Testbed, tasks: Sequence[CrawlTask],
               launch_host: Optional[str] = None,
               monitor: bool = False,
               condense: bool = True,
               extra_wrappers: Sequence = (),
               timeout: float = 100_000.0) -> RunMetrics:
    """The wrapped Webbot: relocate to each server, crawl, report home.

    With one task this is the paper's mwWebbot experiment; with several
    it is the E4 itinerant audit.  ``monitor=True`` adds the rwWebbot
    monitoring wrapper and collects its location reports.
    """
    _ensure_principal(testbed)
    cluster = testbed.cluster
    launch_host = launch_host or testbed.client.host.name
    archs = sorted({node.host.arch for node in cluster.nodes.values()})
    program = build_webbot_program(cluster.keychain, WEBBOT_PRINCIPAL,
                                   archs=archs)
    driver = cluster.node(launch_host).driver(
        name="webbot_home", principal=WEBBOT_PRINCIPAL)
    monitor_events: List[Dict] = []

    # Addresses are built without consulting the node registry: a host
    # that is down or unknown must surface as a go() failure at run time
    # (the agent records it and continues), not as a config error here.
    from repro.core.uri import AgentUri
    stops: List[Tuple[str, Dict]] = [
        (str(AgentUri(host=task.site_host, name="vm_python")), task.args())
        for task in tasks]
    briefcase = make_mwwebbot(
        program, stops, home_uri=str(driver.uri),
        monitor_uri=str(driver.uri) if monitor else None,
        condense=condense, extra_wrappers=extra_wrappers)

    def scenario():
        from repro.core import wellknown
        reply = yield from driver.meet(
            cluster.vm_uri(launch_host, "vm_python"), briefcase,
            timeout=timeout)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        reports: List[Dict] = []
        failures: List[Dict] = []
        while True:
            message = yield from driver.recv(timeout=timeout)
            briefcase_in = message.briefcase
            event = briefcase_in.get_first(EVENT_FOLDER)
            if event is not None:
                monitor_events.append(json.loads(event.as_text()))
                continue
            if briefcase_in.has(wellknown.RESULTS) or \
                    briefcase_in.has("FAILURES"):
                reports.extend(e.as_json() for e in
                               briefcase_in.folder(wellknown.RESULTS))
                failures.extend(e.as_json() for e in
                                briefcase_in.folder("FAILURES"))
                return reports, failures

    (reports, failures), elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "mobile-crawl")
    strategy = "mobile" if len(tasks) == 1 else "itinerant"
    return RunMetrics(strategy=strategy, elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports, failures=failures,
                      monitor_events=monitor_events)


def run_repeated_remote(testbed: Testbed, tasks: Sequence[CrawlTask],
                        client_model: Optional[ClientModel] = None
                        ) -> RunMetrics:
    """E4 baseline: the stationary robot pointed at each server in turn."""
    metrics = run_stationary(testbed, tasks, client_model=client_model)
    metrics.strategy = "repeated-remote"
    return metrics
