"""Parallel fan-out audits: spawn() instead of an itinerary.

The paper's ``spawn()`` "creates a new agent with a different instance
number ... this resembles the Unix fork() system call".  For a campus
audit that primitive buys wall-clock parallelism: instead of one agent
hopping server to server (E4), a root agent *forks one clone per
server*; the clones crawl concurrently and each ships its condensed
report home independently.

Total work is the same; completion time drops from the sum of the
per-server crawls to roughly the slowest one (experiment E5).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.core.briefcase import Briefcase
from repro.core.errors import MigrationError, TaxError
from repro.core import wellknown
from repro.system.bootstrap import Testbed
from repro.mining.strategies import RunMetrics, _ensure_principal, _measure
from repro.mining.webbot_agent import (
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    condense_webbot_result,
    make_mwwebbot,
)
from repro.wrappers.mobility import (
    CURRENT_STOP,
    FAILURES,
    _execute_here,
    _postprocess,
)

ROLE_FOLDER = "PA-ROLE"
EXPECTED_FOLDER = "PA-EXPECTED"


def parallel_audit_agent(ctx, briefcase: Briefcase):
    """Root: fork one worker per stop.  Worker: crawl here, report home."""
    role = briefcase.get_text(ROLE_FOLDER, "root")
    home = briefcase.get_text("HOME")

    if role == "worker":
        stop = briefcase.get_json(CURRENT_STOP)
        report = Briefcase()
        try:
            raw = yield from _execute_here(ctx, briefcase, stop)
            condensed = _postprocess(briefcase, raw, stop.get("args", {}))
            report.append(wellknown.RESULTS, condensed)
        except TaxError as exc:
            report.append(FAILURES, {
                "host": ctx.host_name, "phase": "exec", "error": str(exc)})
        yield from ctx.send(home, report)
        return "worker-done"

    # Root role: fork the fleet.
    stops = [json.loads(e.as_text())
             for e in briefcase.folder("ITINERARY")]
    briefcase.drop("ITINERARY")
    briefcase.put(ROLE_FOLDER, "worker")
    failures: List[Dict] = []
    forked = 0
    for stop in stops:
        briefcase.put(CURRENT_STOP, stop)
        try:
            yield from ctx.spawn_to(stop["vm"])
            forked += 1
        except MigrationError as exc:
            failures.append({"host": stop["vm"], "phase": "spawn",
                             "error": str(exc)})
    briefcase.drop(CURRENT_STOP)

    summary = Briefcase()
    summary.put(EXPECTED_FOLDER, forked)
    for failure in failures:
        summary.append(FAILURES, failure)
    yield from ctx.send(home, summary)
    return f"root-forked-{forked}"


def run_parallel_mobile(testbed: Testbed, tasks: Sequence,
                        launch_host: str = None,
                        timeout: float = 1_000_000.0) -> RunMetrics:
    """Fork-join audit of all task sites; one clone per server."""
    _ensure_principal(testbed)
    cluster = testbed.cluster
    launch_host = launch_host or testbed.client.host.name
    archs = sorted({node.host.arch for node in cluster.nodes.values()})
    program = build_webbot_program(cluster.keychain, WEBBOT_PRINCIPAL,
                                   archs=archs)
    driver = cluster.node(launch_host).driver(
        name="parallel_home", principal=WEBBOT_PRINCIPAL)

    from repro.core.uri import AgentUri
    stops: List[Tuple[str, Dict]] = [
        (str(AgentUri(host=task.site_host, name="vm_python")), task.args())
        for task in tasks]
    briefcase = make_mwwebbot(program, stops, home_uri=str(driver.uri),
                              agent_name="pa_root")
    # Swap the itinerant entry point for the fork-join one.
    from repro.vm import loader
    loader.install_payload(briefcase, loader.pack_ref(parallel_audit_agent),
                           agent_name="pa_root")

    def scenario():
        reply = yield from driver.meet(
            cluster.vm_uri(launch_host, "vm_python"), briefcase,
            timeout=timeout)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        expected = None
        reports: List[Dict] = []
        spawn_failures: List[Dict] = []
        worker_failures: List[Dict] = []
        while expected is None or \
                len(reports) + len(worker_failures) < expected:
            message = yield from driver.recv(timeout=timeout)
            inbound = message.briefcase
            if inbound.has(EXPECTED_FOLDER):
                expected = int(inbound.get_json(EXPECTED_FOLDER))
                spawn_failures.extend(e.as_json()
                                      for e in inbound.folder(FAILURES))
                continue
            reports.extend(e.as_json()
                           for e in inbound.folder(wellknown.RESULTS))
            worker_failures.extend(e.as_json()
                                   for e in inbound.folder(FAILURES))
        return reports, spawn_failures + worker_failures

    (reports, failures), elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "parallel-mobile")
    return RunMetrics(strategy="parallel-mobile", elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports, failures=failures)
