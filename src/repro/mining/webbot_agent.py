"""mwWebbot / rwWebbot: the paper's Figure-5 case study, assembled.

This module turns the stationary Webbot into the paper's mobile link
validator:

1. :func:`build_webbot_program` — "statically links" the Webbot module
   and the second-pass link checker into one self-contained source blob
   (the Python analogue of the single C binary), compiles it, and signs
   it per architecture into the ``binary`` payload ag_exec consumes.
2. :func:`condense_webbot_result` — the condensation step: the raw crawl
   result (including the bulky rejected-link log) is reduced to the
   dead-link report before it is stored in the agent's briefcase, so
   only the mining *result* rides the network home.
3. :func:`make_mwwebbot` — assembles the launch briefcase: the mobility
   wrapper carrying the program, the itinerary, and optionally the
   monitoring wrapper (rwWebbot) around it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import inspect

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.auth import KeyChain
from repro.robot import linkcheck as _linkcheck_module
from repro.robot import webbot as _webbot_module
from repro.robot.report import DeadLinkReport
from repro.vm import loader
from repro.wrappers.mobility import make_task_briefcase
from repro.wrappers.monitor import OP_STATUS_QUERY, MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers

#: The principal the case-study agents run under (the paper's own
#: example principal from Figure 2).
WEBBOT_PRINCIPAL = "tacomaproject"

#: Entry point of the linked program.
PROGRAM_ENTRY = "run_link_audit"

_LAUNCHER_SOURCE = '''

def run_link_audit(args, env):
    """Program entry: full crawl plus the second validation pass."""
    config = WebbotConfig.from_dict(args)
    robot = Webbot(config, env.http)
    result = robot.run()
    if args.get("check_rejected", True):
        result["second_pass_invalid"] = validate_rejected(
            result["rejected"], env.http)
    else:
        result["second_pass_invalid"] = []
    return result
'''


def link_sources(modules: Iterable, extra_source: str = "") -> str:
    """Concatenate module sources into one compilable blob.

    ``from __future__`` imports are hoisted to the top (they are only
    legal there); everything else keeps its order.  This is the "static
    linking" a C toolchain would have done for the real Webbot.
    """
    future_lines: List[str] = []
    bodies: List[str] = []
    for module in modules:
        source = inspect.getsource(module)
        kept: List[str] = []
        for line in source.splitlines():
            if line.startswith("from __future__ import"):
                if line not in future_lines:
                    future_lines.append(line)
            else:
                kept.append(line)
        bodies.append("\n".join(kept))
    return "\n".join(future_lines) + "\n\n" + "\n\n".join(bodies) + \
        extra_source


def build_webbot_program_source() -> str:
    """The complete, self-contained link-audit program source."""
    return link_sources([_webbot_module, _linkcheck_module],
                        _LAUNCHER_SOURCE)


def build_webbot_program(keychain: KeyChain,
                         principal: str = WEBBOT_PRINCIPAL,
                         archs: Sequence[str] = ("x86-unix",)
                         ) -> loader.Payload:
    """Compile and sign the program for each architecture.

    The result is the ``binary`` payload mwWebbot carries: ag_exec at
    each landing pad extracts the blob matching the local architecture
    and verifies ``principal``'s signature before running it.
    """
    source_payload = loader.pack_source(
        build_webbot_program_source(), PROGRAM_ENTRY, origin="webbot-linked")
    compiled = loader.compile_source(source_payload)
    return loader.pack_binary_list(
        [(arch, compiled) for arch in archs], keychain, principal)


def condense_webbot_result(result: Dict, args: Dict) -> Dict:
    """Raw crawl result → dead-link report dict (the condensation step)."""
    report = DeadLinkReport.from_webbot_result(
        site=args.get("site", result.get("start_url", "<unknown>")),
        result=result,
        second_pass_invalid=result.get("second_pass_invalid", ()))
    return json.loads(report.to_json())


def crawl_args(start_url: str, prefix: Optional[str] = None,
               max_depth: int = 12, check_rejected: bool = True,
               site: Optional[str] = None,
               max_pages: Optional[int] = None) -> Dict:
    """The argument dict one itinerary stop passes to the program."""
    args: Dict = {
        "start_url": start_url,
        "prefix": prefix,
        "max_depth": max_depth,
        "check_rejected": check_rejected,
        "site": site or start_url,
    }
    if max_pages is not None:
        args["max_pages"] = max_pages
    return args


def make_mwwebbot(program: loader.Payload,
                  stops: Sequence[Tuple[str, Dict]],
                  home_uri: str,
                  monitor_uri: Optional[str] = None,
                  agent_name: str = "mwWebbot",
                  condense: bool = True,
                  extra_wrappers: Sequence[WrapperSpec] = ()) -> Briefcase:
    """Assemble the launch briefcase for the wrapped Webbot.

    ``stops`` is a list of ``(vm_uri, crawl_args)`` pairs.  With
    ``monitor_uri`` the rwWebbot monitoring wrapper is stacked around
    the mobility wrapper (Figure 5's full picture); ``extra_wrappers``
    are stacked inside the monitor (closer to the agent).
    """
    briefcase = make_task_briefcase(
        program=program,
        stops=[{"vm": vm, "args": args} for vm, args in stops],
        home_uri=home_uri,
        postprocessor=condense_webbot_result if condense else None,
        agent_name=agent_name)
    specs = []
    if monitor_uri is not None:
        specs.append(WrapperSpec.by_ref(
            MonitorWrapper, {"monitor": monitor_uri, "tag": agent_name}))
    specs.extend(extra_wrappers)
    if specs:
        install_wrappers(briefcase, specs)
    return briefcase


def query_status(ctx, agent_uri: "str | AgentUri",
                 timeout: float = 30.0) -> Dict:
    """Ask a monitored (rwWebbot-wrapped) agent where it is (generator)."""
    target = agent_uri if isinstance(agent_uri, AgentUri) \
        else AgentUri.parse(agent_uri)
    request = Briefcase()
    request.put(wellknown.OP, OP_STATUS_QUERY)
    reply = yield from ctx.meet(target, request, timeout=timeout)
    return reply.get_json(wellknown.RESULTS, {})
