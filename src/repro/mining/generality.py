"""Generality glue: mobilising the second robot with the same wrapper.

Nothing in :mod:`repro.wrappers.mobility` changes here — that is the
point.  Mobilising a different COTS robot takes exactly three
app-specific pieces, mirroring what the Webbot needed:

1. ship its source (``build_checkbot_program``),
2. phrase its arguments (``checkbot_args``),
3. condense its result vocabulary into the common dead-link report
   (``condense_checkbot_result``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.core import wellknown
from repro.core.errors import TaxError
from repro.firewall.auth import KeyChain
from repro.mining.strategies import RunMetrics, _ensure_principal, _measure
from repro.mining.webbot_agent import WEBBOT_PRINCIPAL, link_sources
from repro.robot import checkbot as _checkbot_module
from repro.robot.report import DeadLinkReport
from repro.system.bootstrap import Testbed
from repro.vm import loader
from repro.wrappers.mobility import make_task_briefcase

PROGRAM_ENTRY = "run_checkbot"


def build_checkbot_program(keychain: KeyChain,
                           principal: str = WEBBOT_PRINCIPAL,
                           archs: Sequence[str] = ("x86-unix",)
                           ) -> loader.Payload:
    source = link_sources([_checkbot_module])
    payload = loader.pack_source(source, PROGRAM_ENTRY,
                                 origin="checkbot-linked")
    compiled = loader.compile_source(payload)
    return loader.pack_binary_list(
        [(arch, compiled) for arch in archs], keychain, principal)


def checkbot_args(start_url: str, allowed_hosts: Sequence[str],
                  site: str) -> Dict:
    return {"start_urls": [start_url],
            "allowed_hosts": list(allowed_hosts),
            "site": site}


def condense_checkbot_result(result: Dict, args: Dict) -> Dict:
    """Checkbot vocabulary -> the common dead-link report dict."""
    invalid = [{"url": record["href"],
                "referrer": record["parent"],
                "reason": "http",
                "status": record["code"]}
               for record in result.get("broken", ())]
    report = DeadLinkReport(
        site=args.get("site", "<unknown>"),
        pages_scanned=result.get("ok", 0),
        bytes_scanned=result.get("bytes_fetched", 0),
        links_seen=result.get("checked", 0) +
        result.get("offsite_checked", 0),
        invalid=invalid,
        rejected_checked=result.get("offsite_checked", 0))
    return json.loads(report.to_json())


def run_checkbot_mobile(testbed: Testbed, site_host: str,
                        timeout: float = 1_000_000.0) -> RunMetrics:
    """The Checkbot under the unchanged mobility wrapper."""
    _ensure_principal(testbed)
    cluster = testbed.cluster
    archs = sorted({node.host.arch for node in cluster.nodes.values()})
    program = build_checkbot_program(cluster.keychain, WEBBOT_PRINCIPAL,
                                     archs=archs)
    driver = cluster.node(testbed.client.host.name).driver(
        name="checkbot_home", principal=WEBBOT_PRINCIPAL)
    site = testbed.site_of(site_host)
    briefcase = make_task_briefcase(
        program,
        [{"vm": str(cluster.vm_uri(site_host)),
          "args": checkbot_args(site.root_url, [site_host], site_host)}],
        home_uri=str(driver.uri),
        postprocessor=condense_checkbot_result,
        agent_name="mwCheckbot")

    def scenario():
        reply = yield from driver.meet(
            cluster.vm_uri(testbed.client.host.name), briefcase,
            timeout=timeout)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        while True:
            message = yield from driver.recv(timeout=timeout)
            if message.briefcase.has(wellknown.RESULTS) or \
                    message.briefcase.has("FAILURES"):
                reports: List[Dict] = [
                    e.as_json() for e in
                    message.briefcase.folder(wellknown.RESULTS)]
                failures = [e.as_json() for e in
                            message.briefcase.folder("FAILURES")]
                return reports, failures

    (reports, failures), elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "checkbot-mobile")
    return RunMetrics(strategy="checkbot-mobile", elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports, failures=failures)
