"""The log-mining workload: generate access logs, publish them, mine them.

Experiment D1's substrate: a synthetic Common-Log-Format access log for
a generated site (zipf page popularity, a pool of client hosts, a
realistic 404 tail), published as a plain-text resource on the site's
own server.  The same self-contained analyzer program then runs either
at the client (downloading the whole log) or inside the mobility
wrapper at the server (loopback fetch, ship only the aggregates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.robot import loganalyzer as _loganalyzer_module
from repro.robot.loganalyzer import analyze_log
from repro.sim.rng import RandomStream, stream_from
from repro.firewall.auth import KeyChain
from repro.mining.strategies import RunMetrics, _ensure_principal, _measure
from repro.mining.webbot_agent import WEBBOT_PRINCIPAL, link_sources
from repro.system.bootstrap import Testbed
from repro.vm import loader
from repro.web.page import Page
from repro.web.site import Site
from repro.wrappers.mobility import make_task_briefcase

LOG_PATH = "/logs/access.log"
PROGRAM_ENTRY = "run_log_analysis"

_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


def generate_access_log(site: Site, n_requests: int,
                        rng: Optional[RandomStream] = None,
                        seed: int = 0,
                        n_visitors: int = 200,
                        error_fraction: float = 0.04) -> str:
    """A deterministic CLF access log for ``site``."""
    rng = stream_from(rng if rng is not None else seed, "accesslog")
    paths = sorted(site.pages)
    visitors = [f"10.{rng.randint(0, 250)}.{rng.randint(0, 250)}."
                f"{rng.randint(1, 250)}" for _ in range(n_visitors)]
    lines: List[str] = []
    second = 0
    for _ in range(n_requests):
        second += rng.randint(0, 3)
        day = 1 + (second // 86_400) % 27
        hh = (second // 3600) % 24
        mm = (second // 60) % 60
        ss = second % 60
        timestamp = (f"{day:02d}/{_MONTHS[6]}/1999:"
                     f"{hh:02d}:{mm:02d}:{ss:02d} +0100")
        visitor = visitors[rng.zipf_index(len(visitors), skew=0.8)]
        if rng.chance(error_fraction):
            path = f"/old/gone{rng.randint(0, 40):03d}.html"
            status, size = 404, 210
        else:
            path = paths[rng.zipf_index(len(paths), skew=1.0)]
            status = 200
            size = site.pages[path].size
        lines.append(f'{visitor} - - [{timestamp}] '
                     f'"GET {path} HTTP/1.0" {status} {size}')
    return "\n".join(lines) + "\n"


def publish_log(site: Site, log_text: str, path: str = LOG_PATH) -> Page:
    """Expose the log as a plain-text resource on the site."""
    page = Page(path=path, html=log_text, links=[],
                content_type="text/plain")
    site.pages[path] = page
    return page


def build_loganalyzer_program(keychain: KeyChain,
                              principal: str = WEBBOT_PRINCIPAL,
                              archs: Sequence[str] = ("x86-unix",)
                              ) -> loader.Payload:
    """The analyzer, shipped exactly like the Webbot: linked source,
    compiled, signed per architecture."""
    source = link_sources([_loganalyzer_module])
    source_payload = loader.pack_source(source, PROGRAM_ENTRY,
                                        origin="loganalyzer-linked")
    compiled = loader.compile_source(source_payload)
    return loader.pack_binary_list(
        [(arch, compiled) for arch in archs], keychain, principal)


def mining_args(site_host: str, top_k: int = 10,
                log_path: str = LOG_PATH) -> Dict:
    return {"log_url": f"http://{site_host}{log_path}", "top_k": top_k}


# -- strategies ---------------------------------------------------------------------


def run_log_stationary(testbed: Testbed, site_host: str,
                       top_k: int = 10) -> RunMetrics:
    """Download the log to the client, mine it there."""
    from repro.sim.ledger import CostLedger
    from repro.web.client import SimHttpClient
    origin = testbed.cluster.hosts.get(testbed.client.host.name)

    def scenario():
        ledger = CostLedger()
        http = SimHttpClient(origin, testbed.network, testbed.deployment,
                             ledger)
        args = mining_args(site_host, top_k=top_k)
        response = http.get(args["log_url"])
        if not response.ok:
            raise RuntimeError(f"log fetch failed: {response.status}")
        stats = analyze_log(response.body, top_k=top_k)
        stats["log_url"] = args["log_url"]
        stats["log_bytes"] = len(response.body.encode("utf-8"))
        # Analysis CPU: charged per byte like any client-side handling.
        ledger.add_cpu(stats["log_bytes"] * 1.5e-6)
        yield testbed.kernel.timeout(ledger.total_seconds)
        return [stats]

    reports, elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "log-stationary")
    return RunMetrics(strategy="log-stationary", elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports)


def run_log_mobile(testbed: Testbed, site_host: str,
                   top_k: int = 10,
                   timeout: float = 1_000_000.0) -> RunMetrics:
    """Ship the analyzer to the server through the mobility wrapper."""
    from repro.core import wellknown
    from repro.core.errors import TaxError
    _ensure_principal(testbed)
    cluster = testbed.cluster
    archs = sorted({node.host.arch for node in cluster.nodes.values()})
    program = build_loganalyzer_program(cluster.keychain,
                                        WEBBOT_PRINCIPAL, archs=archs)
    driver = cluster.node(testbed.client.host.name).driver(
        name="logminer_home", principal=WEBBOT_PRINCIPAL)
    briefcase = make_task_briefcase(
        program,
        [{"vm": str(cluster.vm_uri(site_host)),
          "args": mining_args(site_host, top_k=top_k)}],
        home_uri=str(driver.uri), agent_name="mwLogMiner")

    def scenario():
        reply = yield from driver.meet(
            cluster.vm_uri(testbed.client.host.name), briefcase,
            timeout=timeout)
        if reply.get_text(wellknown.STATUS) != "ok":
            raise TaxError(
                f"launch failed: {reply.get_text(wellknown.ERROR)}")
        while True:
            message = yield from driver.recv(timeout=timeout)
            if message.briefcase.has(wellknown.RESULTS):
                return [e.as_json() for e in
                        message.briefcase.folder(wellknown.RESULTS)]

    reports, elapsed, nbytes, nmessages = _measure(
        testbed, scenario(), "log-mobile")
    return RunMetrics(strategy="log-mobile", elapsed_seconds=elapsed,
                      remote_bytes=nbytes, remote_messages=nmessages,
                      reports=reports)
