"""The dead-link mining case study (paper section 5) and its
generalisations: parallel fan-out, a second robot, log mining."""

from repro.mining.generality import (
    build_checkbot_program,
    checkbot_args,
    condense_checkbot_result,
    run_checkbot_mobile,
)
from repro.mining.logmining import (
    build_loganalyzer_program,
    generate_access_log,
    publish_log,
    run_log_mobile,
    run_log_stationary,
)
from repro.mining.parallel import parallel_audit_agent, run_parallel_mobile
from repro.mining.strategies import (
    CrawlTask,
    RunMetrics,
    run_mobile,
    run_repeated_remote,
    run_stationary,
)
from repro.mining.webbot_agent import (
    PROGRAM_ENTRY,
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    build_webbot_program_source,
    condense_webbot_result,
    crawl_args,
    link_sources,
    make_mwwebbot,
    query_status,
)

__all__ = [
    "build_checkbot_program", "checkbot_args", "condense_checkbot_result",
    "run_checkbot_mobile",
    "build_loganalyzer_program", "generate_access_log", "publish_log",
    "run_log_mobile", "run_log_stationary",
    "parallel_audit_agent", "run_parallel_mobile",
    "CrawlTask", "RunMetrics", "run_mobile", "run_repeated_remote",
    "run_stationary",
    "PROGRAM_ENTRY", "WEBBOT_PRINCIPAL", "build_webbot_program",
    "build_webbot_program_source", "condense_webbot_result", "crawl_args",
    "link_sources", "make_mwwebbot", "query_status",
]
