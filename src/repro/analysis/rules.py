"""The initial rule pack: this codebase's real invariants, mechanised.

Every headline guarantee of the reproduction — byte-identical chaos /
overload / trace / perf documents across CI runs — holds only while the
code never consults wall-clock time, unseeded randomness, process
environment, or iteration orders that vary between interpreter runs,
and while every scheduling decision flows through the deterministic
kernel (:mod:`repro.sim.eventloop`).  These rules check those invariants
structurally instead of leaving them to reviewer vigilance.

Rule ids are stable API (they appear in suppression comments, baselines,
CI artifacts, and docs):

========  ==========================================================
DET001    wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002    unseeded randomness outside ``repro.sim.rng``
DET003    environment reads in deterministic code (sim/core)
DET004    iteration over bare set displays/constructors
DET005    identity-dependent ordering or membership (``id(...)``)
DET006    ``dict.popitem`` (order-dependent and destructive)
DUR001    journaled firewall/landing state mutated around the journal
ERR001    broad ``except`` that swallows the exception object
KER001    scheduling primitives bypassing the simulation kernel
MUT001    mutable default argument values
MUT002    event/message subclasses without ``__slots__``
OBS001    telemetry backends constructed outside the facade
OBS002    module-global telemetry state (leaks across in-process runs)
========  ==========================================================

See ``docs/static-analysis.md`` for the catalogue with rationale and
the suppression / baseline workflow.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import LintContext, Rule, register
from repro.analysis.findings import Finding

#: Call targets that read the wall clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random`` module-level helpers (the shared, reseedable global
#: stream).  ``random.Random(seed)`` with an explicit seed is fine and
#: is what ``repro.sim.rng`` builds on.
_RANDOM_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Modules allowed to touch randomness primitives directly.
RNG_SANCTUARY = ("repro.sim.rng",)

#: Module prefixes that must stay environment-independent.
ENV_SCOPES = ("repro.core", "repro.sim")

#: The only module allowed to schedule via heapq/sched/threading timers.
KERNEL_MODULES = ("repro.sim.eventloop",)

#: Base-class names whose subclasses ride the kernel/firewall hot paths
#: and must declare ``__slots__`` (the event and message hierarchies).
SLOTTED_BASES = frozenset({
    "Event", "Timeout", "AnyOf", "AllOf", "Process", "Message",
})
#: Fully qualified forms, for ``eventloop.Event``-style bases.
SLOTTED_BASE_MODULES = ("repro.sim.eventloop.", "repro.firewall.message.")


def _call_target(ctx: LintContext, node: ast.Call) -> Optional[str]:
    return ctx.qualified_name(node.func)


@register
class WallClockRule(Rule):
    id = "DET001"
    severity = "error"
    description = ("Wall-clock read: virtual time must come from the "
                   "kernel clock, never the host clock")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(ctx, node)
            if target in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{target}() reads the wall clock; deterministic "
                    f"code must use the kernel's virtual clock "
                    f"(kernel.now / ctx.now)")


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    severity = "error"
    description = ("Unseeded/global randomness outside repro.sim.rng "
                   "breaks replayability")

    def applies_to(self, module: str) -> bool:
        return module not in RNG_SANCTUARY

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(ctx, node)
            if target is None:
                continue
            if target == "os.urandom" or target == "uuid.uuid4":
                yield self.finding(
                    ctx, node,
                    f"{target}() is entropy the simulation cannot "
                    f"replay; derive values from a seeded "
                    f"repro.sim.rng.RandomStream")
            elif target == "random.Random" and not node.args:
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed draws from OS "
                    "entropy; pass an explicit seed")
            elif target.startswith(_RANDOM_PREFIXES) and \
                    target != "random.Random":
                yield self.finding(
                    ctx, node,
                    f"{target}() uses a global/unseeded stream; route "
                    f"randomness through repro.sim.rng outside the "
                    f"sanctuary module")


@register
class EnvReadRule(Rule):
    id = "DET003"
    severity = "error"
    description = ("Environment reads in sim/core make runs depend on "
                   "the invoking shell")

    def applies_to(self, module: str) -> bool:
        return module.startswith(ENV_SCOPES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                target = _call_target(ctx, node)
                if target == "os.getenv":
                    yield self.finding(
                        ctx, node,
                        "os.getenv() read in deterministic code; "
                        "thread configuration through explicit "
                        "parameters instead")
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                target = ctx.qualified_name(node)
                if target == "os.environ":
                    yield self.finding(
                        ctx, node,
                        "os.environ access in deterministic code; "
                        "thread configuration through explicit "
                        "parameters instead")


def _iteration_targets(node: ast.AST) -> Iterator[ast.AST]:
    """The expressions a statement iterates over."""
    if isinstance(node, ast.For):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


@register
class SetIterationRule(Rule):
    id = "DET004"
    severity = "warning"
    description = ("Iterating a set iterates in hash order, which can "
                   "differ between interpreter runs")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            for target in _iteration_targets(node):
                if isinstance(target, (ast.Set, ast.SetComp)):
                    yield self.finding(
                        ctx, target,
                        "iteration over a set literal/comprehension is "
                        "hash-ordered; iterate a tuple/list or wrap in "
                        "sorted(...)")
                elif isinstance(target, ast.Call) and \
                        ctx.qualified_name(target.func) in ("set",
                                                            "frozenset"):
                    yield self.finding(
                        ctx, target,
                        "iteration over set(...) is hash-ordered; wrap "
                        "in sorted(...) or keep the original sequence")


@register
class IdentityOrderRule(Rule):
    id = "DET005"
    severity = "warning"
    description = ("id()-keyed ordering/membership depends on the "
                   "allocator and risks id reuse after GC")

    _COLLECTION_METHODS = frozenset({"add", "discard", "remove", "append"})
    _SORTERS = frozenset({"sorted", "min", "max"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.keyword) and node.arg == "key" and \
                    isinstance(node.value, ast.Name) and \
                    ctx.qualified_name(node.value) == "id":
                yield self.finding(
                    ctx, node.value,
                    "sorting/selecting by key=id orders by allocation "
                    "address; key on stable data instead")
                continue
            if not (isinstance(node, ast.Call) and
                    ctx.qualified_name(node.func) == "id" and
                    len(node.args) == 1):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.Compare) and any(
                    isinstance(op, (ast.In, ast.NotIn))
                    for op in parent.ops):
                yield self.finding(
                    ctx, node,
                    "membership keyed on id(): ids can be reused after "
                    "garbage collection; hold object references (or "
                    "pin them) and document why identity is intended")
            elif isinstance(parent, ast.Call) and \
                    isinstance(parent.func, ast.Attribute) and \
                    parent.func.attr in self._COLLECTION_METHODS:
                yield self.finding(
                    ctx, node,
                    f"collection .{parent.func.attr}(id(...)) keys on "
                    f"allocation addresses; ids can be reused after "
                    f"garbage collection — pin references and document "
                    f"intent")
            elif isinstance(parent, ast.Subscript):
                yield self.finding(
                    ctx, node,
                    "indexing by id() keys on allocation addresses; "
                    "ids can be reused after garbage collection")


@register
class PopitemRule(Rule):
    id = "DET006"
    severity = "error"
    description = ("dict.popitem() removes an order-dependent entry; "
                   "pop an explicit key instead")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "popitem":
                yield self.finding(
                    ctx, node,
                    ".popitem() couples behaviour to insertion order "
                    "and mutates during iteration patterns; pop an "
                    "explicit key")


#: The modules allowed to rebind journaled structures: the replay path
#: (it reconstructs them *from* the journal and reattaches the journal
#: before handing them back to the firewall) and the module that owns
#: the structures, whose ``install_delivery_state`` helper is the one
#: sanctioned construction-time binding site.
DURABILITY_SANCTUARY = ("repro.durability.recovery",
                        "repro.firewall.dedup")

#: Firewall attributes whose state is write-ahead journaled
#: (:mod:`repro.durability`).  Every mutation must flow through their
#: own methods so the journal hook fires; rebinding the object or
#: poking its private fields silently desynchronises the journal from
#: the live state, and the next replay resurrects the past.
JOURNALED_ATTRS = frozenset({"dedup", "landings"})


@register
class JournalBypassRule(Rule):
    id = "DUR001"
    severity = "error"
    description = ("Direct mutation of journaled firewall/landing state "
                   "outside the journal API desynchronises the "
                   "write-ahead journal from the live objects")

    def applies_to(self, module: str) -> bool:
        return module not in DURABILITY_SANCTUARY

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr in JOURNALED_ATTRS:
                        yield self.finding(
                            ctx, target,
                            f"rebinding .{target.attr} replaces a "
                            f"journaled structure without its journal "
                            f"attachment; go through "
                            f"repro.durability.recovery (replay) or "
                            f"mutate via the object's own methods")
            elif isinstance(node, ast.Attribute) and \
                    node.attr.startswith("_") and \
                    isinstance(node.value, ast.Attribute) and \
                    node.value.attr in JOURNALED_ATTRS:
                yield self.finding(
                    ctx, node,
                    f".{node.value.attr}.{node.attr} reaches into a "
                    f"journaled structure's private state; mutations "
                    f"there never hit the write-ahead journal — use "
                    f"the public (journaling) API")


def _is_broad_handler(ctx: LintContext,
                      handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for entry in types:
        if ctx.qualified_name(entry) in ("Exception", "BaseException"):
            return True
    return False


@register
class BroadExceptRule(Rule):
    id = "ERR001"
    severity = "error"
    description = ("Broad except that neither re-raises nor uses the "
                   "exception can swallow transient errors meant for "
                   "RetryPolicy")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(ctx, node):
                continue
            if self._handler_routes_exception(node):
                continue
            yield self.finding(
                ctx, node,
                "broad except swallows the exception: transient errors "
                "(is_transient) never reach RetryPolicy; re-raise, "
                "narrow the type, or route the exception object "
                "somewhere")

    @staticmethod
    def _handler_routes_exception(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or touches the caught object."""
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body,
                                        type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound is not None and isinstance(node, ast.Name) and \
                    node.id == bound and isinstance(node.ctx, ast.Load):
                return True
        return False


@register
class KernelBypassRule(Rule):
    id = "KER001"
    severity = "error"
    description = ("Direct heapq/sched/timer scheduling bypasses the "
                   "deterministic kernel in repro.sim.eventloop")

    _BANNED_IMPORTS = frozenset({"heapq", "sched"})

    def applies_to(self, module: str) -> bool:
        return module not in KERNEL_MODULES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name.split(".", 1)[0] in self._BANNED_IMPORTS:
                        yield self.finding(
                            ctx, node,
                            f"import {item.name}: event scheduling "
                            f"belongs in repro.sim.eventloop; yield "
                            f"kernel events instead of keeping a "
                            f"private heap")
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and node.level == 0 and \
                        node.module.split(".", 1)[0] in self._BANNED_IMPORTS:
                    yield self.finding(
                        ctx, node,
                        f"from {node.module} import ...: event "
                        f"scheduling belongs in repro.sim.eventloop")
            elif isinstance(node, ast.Call):
                target = _call_target(ctx, node)
                if target == "threading.Timer":
                    yield self.finding(
                        ctx, node,
                        "threading.Timer schedules on the wall clock "
                        "outside the kernel; use kernel.timeout()")


@register
class MutableDefaultRule(Rule):
    id = "MUT001"
    severity = "error"
    description = ("Mutable default argument values are shared across "
                   "calls (and across migrated agent instances)")

    _MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque",
        "collections.OrderedDict", "collections.Counter",
    })

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(ctx, default):
                    yield self.finding(
                        ctx, default,
                        "mutable default value is evaluated once and "
                        "shared by every call; default to None and "
                        "construct inside the body")

    def _is_mutable(self, ctx: LintContext, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.qualified_name(node.func) in self._MUTABLE_CALLS
        return False


@register
class MissingSlotsRule(Rule):
    id = "MUT002"
    severity = "warning"
    description = ("Event/message subclasses without __slots__ grow a "
                   "__dict__, bloating the kernel and wire hot paths")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            base_name = self._slotted_base(ctx, node)
            if base_name is None:
                continue
            if any(isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets) for stmt in node.body) or any(
                    isinstance(stmt, ast.AnnAssign) and
                    isinstance(stmt.target, ast.Name) and
                    stmt.target.id == "__slots__" for stmt in node.body):
                continue
            yield self.finding(
                ctx, node,
                f"class {node.name} subclasses {base_name} without "
                f"declaring __slots__; hot-path event/message objects "
                f"must stay dict-free")

    @staticmethod
    def _slotted_base(ctx: LintContext,
                      node: ast.ClassDef) -> Optional[str]:
        for base in node.bases:
            qualified = ctx.qualified_name(base)
            if qualified is None:
                continue
            if qualified in SLOTTED_BASES:
                return qualified
            if qualified.startswith(SLOTTED_BASE_MODULES) and \
                    qualified.rsplit(".", 1)[-1] in SLOTTED_BASES:
                return qualified
        return None


#: The only module allowed to construct telemetry backends directly —
#: the :class:`~repro.obs.telemetry.Telemetry` facade, which keeps the
#: registry, tracer, flight recorder and id allocator enabled/disabled
#: in lockstep.
TELEMETRY_FACADE_MODULES = ("repro.obs.telemetry",)

#: Construction targets that must flow through the facade, in every
#: import spelling the resolver can produce.
TELEMETRY_BACKENDS = frozenset({
    "MetricsRegistry",
    "repro.obs.MetricsRegistry",
    "repro.obs.metrics.MetricsRegistry",
    "Tracer",
    "repro.obs.Tracer",
    "repro.obs.tracing.Tracer",
})


@register
class TelemetryFacadeRule(Rule):
    id = "OBS001"
    severity = "warning"
    description = ("MetricsRegistry/Tracer constructed outside the "
                   "Telemetry facade drifts out of the enable/disable "
                   "lifecycle")

    def applies_to(self, module: str) -> bool:
        return module not in TELEMETRY_FACADE_MODULES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(ctx, node)
            if target in TELEMETRY_BACKENDS:
                short = target.rsplit(".", 1)[-1]
                yield self.finding(
                    ctx, node,
                    f"{short} constructed directly: spans/metrics "
                    f"recorded here never reach exports and ignore "
                    f"enable()/disable(); go through the Telemetry "
                    f"facade (kernel.telemetry)")


#: Constructors whose instances accumulate run state (peak-watermark
#: gauges, counter totals, span lists, flight-recorder rings).  Bound at
#: module scope they outlive every run in the process.
TELEMETRY_STATE_TARGETS = frozenset({
    "Telemetry",
    "repro.obs.Telemetry",
    "repro.obs.telemetry.Telemetry",
    "FlightRecorder",
    "repro.obs.FlightRecorder",
    "repro.obs.flightrec.FlightRecorder",
}) | TELEMETRY_BACKENDS


@register
class ModuleGlobalTelemetryRule(Rule):
    id = "OBS002"
    severity = "error"
    description = ("Telemetry state bound at module scope survives "
                   "across in-process runs: later runs report earlier "
                   "runs' peaks and totals")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            target = _call_target(ctx, value)
            if target in TELEMETRY_STATE_TARGETS:
                short = target.rsplit(".", 1)[-1]
                yield self.finding(
                    ctx, stmt,
                    f"module-global {short} accumulates state across "
                    f"every run in the process (cumulative registry "
                    f"leak); construct one per run, or call "
                    f"telemetry.reset() at run start")


def all_rule_ids() -> Tuple[str, ...]:
    from repro.analysis.engine import RULES
    return tuple(rule.id for rule in RULES)
