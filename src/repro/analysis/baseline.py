"""Baselines: grandfathered findings, committed next to the code.

A baseline is a JSON file listing finding *fingerprints* (see
:func:`repro.analysis.findings.fingerprinted`): findings whose
fingerprint appears in the baseline are reported but do not fail the
gate, so a new rule can land with its historical debt visible instead of
either blocking the tree or being silently ignored.  Fingerprints hash
``(path, rule, source line, occurrence)`` — not line numbers — so a
baseline survives unrelated edits but expires the moment the offending
line itself changes.

The file format is deliberately readable and diff-friendly: one entry
per finding, sorted, with the rule/path/snippet repeated so reviewers
can see *what* was grandfathered without running the tool.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Set

from repro.analysis.findings import Finding, Report, sort_findings


def render_baseline(findings: Iterable[Finding]) -> str:
    """The canonical baseline document for ``findings``."""
    entries: List[Dict[str, Any]] = []
    for finding in sort_findings(findings):
        entries.append({
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        })
    document = {"version": 1, "tool": "repro-lint", "findings": entries}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Write a baseline covering ``findings``; returns the entry count."""
    text = render_baseline(findings)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(json.loads(text)["findings"])


def load_baseline(path: str) -> Set[str]:
    """The set of grandfathered fingerprints in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "findings" not in document:
        raise ValueError(f"not a repro-lint baseline: {path}")
    fingerprints: Set[str] = set()
    for entry in document["findings"]:
        fingerprint = entry.get("fingerprint") if isinstance(entry, dict) \
            else None
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError(f"baseline entry without fingerprint: {entry!r}")
        fingerprints.add(fingerprint)
    return fingerprints


def apply_baseline(report: Report, fingerprints: Set[str]) -> Report:
    """Mark grandfathered findings in place; returns the report."""
    from dataclasses import replace
    report.findings = [
        replace(finding, baselined=finding.fingerprint in fingerprints)
        for finding in report.findings]
    return report
