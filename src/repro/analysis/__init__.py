"""repro.analysis: determinism & safety static analysis + sanitizer.

The correctness-tooling layer (architecture §10): an AST rule engine
with this codebase's invariants as the rule pack (``repro lint``), a
committed-baseline / inline-suppression workflow, JSON + SARIF output,
and a dynamic briefcase-aliasing sanitizer that rides the folder version
counters at runtime.
"""

from repro.analysis.engine import (
    Analyzer,
    LintContext,
    Rule,
    RULES,
    register,
    rule_index,
)
from repro.analysis.findings import (
    Finding,
    Report,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.sanitizer import (
    AliasingSanitizer,
    RULE_ALIASING,
    RULE_CONFLICT,
    SANITIZER_RULES,
    run_sanitized_scenarios,
    sanitizing,
)
from repro.analysis import rules as _rules  # registers the rule pack

__all__ = [
    "Analyzer", "LintContext", "Rule", "RULES", "register", "rule_index",
    "Finding", "Report", "render_json", "render_sarif", "render_text",
    "apply_baseline", "load_baseline", "render_baseline", "write_baseline",
    "AliasingSanitizer", "RULE_ALIASING", "RULE_CONFLICT",
    "SANITIZER_RULES", "run_sanitized_scenarios", "sanitizing",
]
