"""repro.analysis: determinism & safety static analysis + sanitizer.

The correctness-tooling layer (architecture §10): an AST rule engine
with this codebase's invariants as the rule pack (``repro lint``), a
committed-baseline / inline-suppression workflow, JSON + SARIF output,
and a dynamic briefcase-aliasing sanitizer that rides the folder version
counters at runtime.
"""

from repro.analysis.engine import (
    Analyzer,
    LintContext,
    Rule,
    RULES,
    register,
    rule_index,
)
from repro.analysis.findings import (
    Finding,
    Report,
    WitnessStep,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.callgraph import Project, export_dot, export_json
from repro.analysis.dataflow import Dataflow
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.sanitizer import (
    AliasingSanitizer,
    RULE_ALIASING,
    RULE_CONFLICT,
    SANITIZER_RULES,
    run_sanitized_scenarios,
    sanitizing,
)
from repro.analysis import rules as _rules  # registers the rule pack
from repro.analysis import iprules as _iprules  # registers project rules
from repro.analysis.iprules import (
    PROJECT_RULES,
    ProjectRule,
    project_rule_index,
    register_project,
)

__all__ = [
    "Analyzer", "LintContext", "Rule", "RULES", "register", "rule_index",
    "Finding", "Report", "WitnessStep",
    "render_json", "render_sarif", "render_text",
    "Project", "Dataflow", "export_dot", "export_json",
    "PROJECT_RULES", "ProjectRule", "project_rule_index",
    "register_project",
    "apply_baseline", "load_baseline", "render_baseline", "write_baseline",
    "AliasingSanitizer", "RULE_ALIASING", "RULE_CONFLICT",
    "SANITIZER_RULES", "run_sanitized_scenarios", "sanitizing",
]
