"""The briefcase-aliasing sanitizer: the rule pack's dynamic companion.

The static rules prove the code *reads* no nondeterministic inputs; this
module watches a live run for the state-sharing hazard the mobile-agent
literature singles out: two agents observing the same mutable
:class:`~repro.core.folder.Folder` object.  The briefcase contract says
everything that crosses an agent boundary is a snapshot (``send`` and
``go``/``spawn`` snapshot, the codec materialises fresh folders), so any
folder visible from two live agents means a copy was skipped somewhere —
exactly the cross-host state-capture bug class that is invisible to unit
tests until a second agent mutates shared state.

Mechanism: the sanitizer rides the folder/briefcase *version counters*
introduced for the wire-encoding cache.  Agent contexts present their
briefcases at well-defined taps (context creation, ``send``, ``recv``,
``go``/``spawn``); the sanitizer records each folder object (pinned with
a strong reference, so CPython cannot recycle its ``id`` mid-run) with
its owning agent, last seen version, and the virtual instant of the last
observed mutation.  Two live owners for one folder raise **SAN001**
(briefcase aliasing); version bumps attributed to different agents at
the same virtual instant raise **SAN002** (conflicting same-instant
writes).  Findings reuse :class:`repro.analysis.findings.Finding` with a
``runtime:<scenario>`` path, so ``repro lint --sanitize`` merges them
into the same JSON/SARIF document as the static findings.

Installation: :func:`sanitizing` (a context manager) installs a
sanitizer as the *ambient* sanitizer picked up by every
:class:`~repro.sim.eventloop.Kernel` constructed inside the ``with``
block; the taps cost one attribute check per operation when no sanitizer
is installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, sort_findings

RULE_ALIASING = "SAN001"
RULE_CONFLICT = "SAN002"

#: severity/description table, mirrored into SARIF output.
SANITIZER_RULES: Dict[str, Tuple[str, str]] = {
    RULE_ALIASING: (
        "error",
        "Two live agents observe the same mutable Folder object "
        "(briefcase aliasing: a snapshot was skipped)"),
    RULE_CONFLICT: (
        "error",
        "Two agents wrote the same Folder at the same virtual instant "
        "(conflicting same-instant writes)"),
}


def _context_label(ctx: Any) -> str:
    """A stable, human-readable owner label for an agent context."""
    registration = getattr(ctx, "registration", None)
    if registration is not None:
        name = getattr(registration, "name", None)
        instance = getattr(registration, "instance", None)
        if name is not None and instance is not None:
            return f"{ctx.principal}/{name}:{instance}"
    return f"{ctx.principal}/{ctx.vm_name}(unregistered)"


def _context_live(ctx: Any) -> bool:
    return not (getattr(ctx, "finished", False) or
                getattr(ctx, "moved", False))


class _FolderRecord:
    """Tracking state for one observed folder object."""

    __slots__ = ("folder", "owner", "version", "write_instant", "writer")

    def __init__(self, folder: Any, owner: Any, version: int,
                 instant: float):
        #: Strong reference: keeping the folder alive guarantees its
        #: ``id`` is never reused while this record exists.
        self.folder = folder
        self.owner = owner
        self.version = version
        self.write_instant = instant
        self.writer = owner


class AliasingSanitizer:
    """Observes briefcases at runtime taps and accumulates findings."""

    def __init__(self, scenario: str = "run"):
        self.scenario = scenario
        self.findings: List[Finding] = []
        self.observations = 0
        self._records: Dict[int, _FolderRecord] = {}
        self._reported: Set[Tuple[str, str, str, str]] = set()

    # -- tap entry points (called from repro.agent.context) -----------------

    def observe_context(self, ctx: Any) -> None:
        """A context came to life (or changed registration)."""
        briefcase = getattr(ctx, "briefcase", None)
        if briefcase is not None:
            self.observe_briefcase(ctx, briefcase, op="attach")

    def observe_briefcase(self, ctx: Any, briefcase: Any,
                          op: str = "") -> None:
        """``ctx`` is currently holding ``briefcase``: check every folder."""
        folders = getattr(briefcase, "_folders", None)
        if folders is None:
            return
        now = float(ctx.kernel.now)
        for folder in tuple(folders.values()):
            self._observe_folder(ctx, folder, now, op)

    # -- core bookkeeping ---------------------------------------------------

    def _observe_folder(self, ctx: Any, folder: Any, now: float,
                        op: str) -> None:
        self.observations += 1
        key = id(folder)
        record = self._records.get(key)
        if record is None or record.folder is not folder:
            self._records[key] = _FolderRecord(
                folder, ctx, folder._version, now)
            return
        if folder._version != record.version:
            # A mutation happened since the folder was last presented;
            # attribute it to the agent presenting the folder now.
            if record.write_instant == now and record.writer is not ctx:
                self._report(
                    RULE_CONFLICT, folder,
                    f"folder {folder.name!r} written by "
                    f"{_context_label(record.writer)} and "
                    f"{_context_label(ctx)} at the same virtual instant "
                    f"t={now:g} (op={op or 'observe'})",
                    record.writer, ctx)
            record.version = folder._version
            record.write_instant = now
            record.writer = ctx
        if record.owner is not ctx:
            if _context_live(record.owner) and _context_live(ctx):
                self._report(
                    RULE_ALIASING, folder,
                    f"folder {folder.name!r} is aliased: live agents "
                    f"{_context_label(record.owner)} and "
                    f"{_context_label(ctx)} hold the same Folder object "
                    f"(op={op or 'observe'}); briefcases crossing agent "
                    f"boundaries must be snapshots",
                    record.owner, ctx)
            else:
                # Ownership transfer from a finished/moved agent: the
                # normal hand-off pattern (launch, reply consumption).
                record.owner = ctx
                record.writer = ctx

    def _report(self, rule: str, folder: Any, message: str,
                first: Any, second: Any) -> None:
        labels = tuple(sorted((_context_label(first),
                               _context_label(second))))
        dedup = (rule, folder.name, labels[0], labels[1])
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        severity, _description = SANITIZER_RULES[rule]
        self.findings.append(Finding(
            rule=rule, severity=severity,
            path=f"runtime:{self.scenario}", line=0, col=0,
            message=message,
            snippet=f"folder={folder.name} agents={labels[0]}|{labels[1]}"))

    # -- results ------------------------------------------------------------

    def sorted_findings(self) -> List[Finding]:
        return sort_findings(self.findings)

    @property
    def clean(self) -> bool:
        return not self.findings


@contextmanager
def sanitizing(scenario: str = "run",
               sanitizer: Optional[AliasingSanitizer] = None
               ) -> Iterator[AliasingSanitizer]:
    """Install an ambient sanitizer for kernels built in this block."""
    from repro.sim.eventloop import set_ambient_sanitizer
    active = sanitizer if sanitizer is not None \
        else AliasingSanitizer(scenario=scenario)
    previous = set_ambient_sanitizer(active)
    try:
        yield active
    finally:
        set_ambient_sanitizer(previous)


# -- scenario harness (repro lint --sanitize) -------------------------------


def run_sanitized_scenarios() -> List[Finding]:
    """Run the reference scenarios under the sanitizer; returns findings.

    Scenarios are the deterministic flows CI already pins byte-for-byte:
    the traced quickstart itinerary, the chaos mid-crash recovery run,
    and experiment E1.  A clean tree returns an empty list; any finding
    here is a real briefcase-sharing bug somewhere in the runtime.
    """
    findings: List[Finding] = []

    with sanitizing("quickstart") as sanitizer:
        from repro.obs.demo import run_traced_quickstart
        run_traced_quickstart()
    findings.extend(sanitizer.sorted_findings())

    with sanitizing("chaos-mid-crash") as sanitizer:
        from repro.chaos.scenario import run_chaos
        run_chaos(seed=7, plan="mid-crash", recovery=True)
    findings.extend(sanitizer.sorted_findings())

    with sanitizing("experiment-e1") as sanitizer:
        from repro.bench.experiments import run_e1
        run_e1(seed=2000)
    findings.extend(sanitizer.sorted_findings())

    return findings
