"""Effect summaries: what a call can *do*, independent of where.

The dataflow pass (:mod:`repro.analysis.dataflow`) propagates a small
closed set of effects bottom-up through the call graph.  This module
owns that vocabulary, the tables classifying *external* call targets
(standard-library and third-party names the graph cannot resolve into
the project), the derivation of a function's *intrinsic* effects from
its :class:`~repro.analysis.symbols.ModuleFacts`, and the on-disk
per-module facts cache keyed by source content hash.

Effect -> rule mapping is one-to-one where a rule exists; effects
without a consuming rule (``mutates-briefcase``) still propagate and
appear in ``repro lint --graph`` exports.

Suppressions are *propagation barriers*: an intrinsic effect whose
origin line carries ``# lint: disable=<rule>`` (or whose module
carries the file-wide form) is sanctioned at the source and never
enters the dataflow — ``repro.bench.perf``'s justified ``heapq``
replica must not taint every CLI entry point that calls it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.rules import (
    RNG_SANCTUARY,
    KERNEL_MODULES,
    WALL_CLOCK_CALLS,
)
from repro.analysis.symbols import (
    FACTS_VERSION,
    FunctionFacts,
    ModuleFacts,
)

# -- the effect vocabulary --------------------------------------------------

READS_WALL_CLOCK = "reads-wall-clock"
UNSEEDED_RANDOM = "unseeded-random"
ENV_READ = "env-read"
BLOCKING_IO = "blocking-io"
KERNEL_BYPASS = "kernel-bypass"
RAISES_PERMANENT = "raises-permanent"
MUTATES_BRIEFCASE = "mutates-briefcase"
#: Pseudo-effect: the function lives in (or transitively enters) the
#: virtual-time simulation — code slated for the real transport backend
#: must stay clean of it (ASY001).
SIM_COUPLED = "sim-coupled"

ALL_EFFECTS: Tuple[str, ...] = (
    BLOCKING_IO, ENV_READ, KERNEL_BYPASS, MUTATES_BRIEFCASE,
    RAISES_PERMANENT, READS_WALL_CLOCK, SIM_COUPLED, UNSEEDED_RANDOM,
)

#: Effect -> lint rule id enforcing it (used both for suppression
#: barriers and for attributing transitive findings).
EFFECT_RULE: Dict[str, str] = {
    READS_WALL_CLOCK: "DET001",
    UNSEEDED_RANDOM: "DET002",
    ENV_READ: "DET003",
    KERNEL_BYPASS: "KER001",
    BLOCKING_IO: "ASY001",
    SIM_COUPLED: "ASY001",
    RAISES_PERMANENT: "ERR002",
}

#: Effect -> module prefixes allowed to *originate* it.  Functions in a
#: sanctuary module never acquire the effect, so nothing propagates out
#: of them — the kernel may keep its heap, the rng module its entropy.
EFFECT_SANCTUARIES: Dict[str, Tuple[str, ...]] = {
    UNSEEDED_RANDOM: RNG_SANCTUARY,
    KERNEL_BYPASS: KERNEL_MODULES,
}

# -- external call classification -------------------------------------------

#: Entropy sources the simulation cannot replay (mirrors DET002).
_RANDOM_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})
_RANDOM_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Calls that block on the host OS — poison for the deterministic sim
#: and for the planned asyncio transport backend's event loop.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "select.select", "select.poll", "select.epoll",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "urllib.request.urlopen", "http.client.HTTPConnection",
    "requests.get", "requests.post", "requests.request",
    "input", "sys.stdin.read", "sys.stdin.readline",
})

#: Scheduling primitives that bypass the kernel (mirrors KER001).
_KERNEL_BYPASS_PREFIXES = ("heapq.", "sched.")
_KERNEL_BYPASS_CALLS = frozenset({"threading.Timer"})


def external_effects(target: str, nargs: int) -> Tuple[str, ...]:
    """Effects of calling the unresolved external ``target``.

    Mirrors the local rules' classification (DET001/DET002/KER001) and
    adds the blocking-io table; returns a sorted tuple (determinism).
    """
    effects: List[str] = []
    if target in WALL_CLOCK_CALLS:
        effects.append(READS_WALL_CLOCK)
    if target in _RANDOM_CALLS:
        effects.append(UNSEEDED_RANDOM)
    elif target == "random.Random":
        if nargs == 0:
            effects.append(UNSEEDED_RANDOM)
    elif target.startswith(_RANDOM_PREFIXES):
        effects.append(UNSEEDED_RANDOM)
    if target == "os.getenv":
        effects.append(ENV_READ)
    if target in BLOCKING_CALLS:
        effects.append(BLOCKING_IO)
    if target in _KERNEL_BYPASS_CALLS or \
            target.startswith(_KERNEL_BYPASS_PREFIXES):
        effects.append(KERNEL_BYPASS)
    return tuple(sorted(effects))


def in_sanctuary(effect: str, module: str) -> bool:
    return module in EFFECT_SANCTUARIES.get(effect, ())


class IntrinsicEffect:
    """One effect a function exhibits in its own body."""

    __slots__ = ("effect", "line", "col", "note", "visible", "snippet")

    def __init__(self, effect: str, line: int, col: int, note: str,
                 visible: bool, snippet: str) -> None:
        self.effect = effect
        self.line = line
        self.col = col
        #: Human phrase for witness chains ("time.time() bound to
        #: _clock at line 12").
        self.note = note
        #: True when the *local* rule pack can already see this origin
        #: (a direct, resolvable call) — the transitive rules then defer
        #: to the local finding instead of duplicating it.
        self.visible = visible
        self.snippet = snippet


def intrinsic_effects(facts: FunctionFacts,
                      module_facts: ModuleFacts) -> List[IntrinsicEffect]:
    """A function's own effects, suppression- and sanctuary-filtered.

    Deterministic: ordered by (line, col, effect).
    """
    found: List[IntrinsicEffect] = []

    def add(effect: str, line: int, col: int, note: str, visible: bool,
            snippet: str) -> None:
        if in_sanctuary(effect, facts.module):
            return
        rule = EFFECT_RULE.get(effect)
        if rule is not None and module_facts.suppressed(line, rule):
            return
        found.append(IntrinsicEffect(effect, line, col, note, visible,
                                     snippet))

    if facts.module.startswith("repro.sim.") or \
            facts.module == "repro.sim":
        add(SIM_COUPLED, facts.line, 1,
            f"defined in virtual-time module {facts.module}", False, "")

    for call in facts.calls:
        for effect in external_effects(call.target, call.nargs):
            visible = call.via == ""
            note = f"{call.target}()"
            if call.via == "alias":
                note = (f"{call.target} called through an alias bound at "
                        f"line {call.bind_line}")
            elif call.via == "partial":
                note = (f"{call.target} called through functools.partial "
                        f"bound at line {call.bind_line}")
            elif call.via == "decorator":
                note = f"{call.target} applied as a decorator"
            add(effect, call.line, call.col, note, visible, call.snippet)

    for line in facts.env_attr_lines:
        add(ENV_READ, line, 1, "os.environ read", True, "")

    # Raise permanence needs the project-wide class taxonomy, so
    # RAISES_PERMANENT is attached by the dataflow pass, not here.

    for line in sorted(set(facts.briefcase_mutations)):
        add(MUTATES_BRIEFCASE, line, 1, "briefcase mutated", True, "")

    found.sort(key=lambda e: (e.line, e.col, e.effect))
    return found


# -- the per-module facts cache ---------------------------------------------


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FactsCache:
    """Content-hash-keyed cache of serialized :class:`ModuleFacts`.

    One JSON file per module under ``directory``; an entry is valid only
    when both the schema version and the source sha256 match, so edits
    and analyzer upgrades invalidate transparently.  The cache holds the
    *parse products* only — cross-module resolution and dataflow rerun
    every invocation, which is what keeps cold and warm runs
    byte-identical (tested in ``tests/test_analysis_project.py``).
    """

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _entry_path(self, module: str, digest: str, display: str) -> str:
        # The key folds in the display path as well as the content
        # digest: same-named modules from different trees (fixture
        # forests each shipping their own ``repro`` package, often with
        # byte-identical ``__init__.py`` files) get separate entries
        # instead of evicting each other every run, and a cached entry
        # can never leak a stale display path into findings.
        assert self.directory is not None
        safe = module.replace(".", "_") or "unnamed"
        key = hashlib.sha256(
            f"{display}::{digest}".encode("utf-8")).hexdigest()[:12]
        return os.path.join(self.directory, f"{safe}-{key}.json")

    def load(self, module: str, digest: str,
             display: str) -> Optional[ModuleFacts]:
        if self.directory is None:
            return None
        path = self._entry_path(module, digest, display)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("version") != FACTS_VERSION or \
                data.get("sha256") != digest:
            return None
        try:
            facts = ModuleFacts.from_dict(data["facts"])
        except (KeyError, TypeError, ValueError, IndexError):
            return None
        self.hits += 1
        return facts

    def store(self, module: str, digest: str, facts: ModuleFacts) -> None:
        if self.directory is None:
            return
        display = facts.path
        self.misses += 1
        os.makedirs(self.directory, exist_ok=True)
        document: Mapping[str, Any] = {
            "version": FACTS_VERSION,
            "sha256": digest,
            "facts": facts.to_dict(),
        }
        path = self._entry_path(module, digest, display)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
