"""Per-module symbol and reference extraction for whole-program analysis.

The interprocedural layer (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.dataflow`) never touches an AST: everything it
needs from a module is distilled here into :class:`ModuleFacts` — the
functions a module defines, the classes with their bases and attribute
types, and every *reference* a function body makes (calls, raises,
environment reads, reserved wire-folder writes, retry-shaped handlers).

Facts are deliberately JSON-round-trippable (:meth:`ModuleFacts.to_dict`
/ :meth:`ModuleFacts.from_dict`): the summary cache keys a serialized
``ModuleFacts`` by the sha256 of the module source, so warm runs skip
the AST pass entirely while cross-module resolution — a pure function
of the facts — reruns every invocation and stays byte-identical.

The extractor is where reference *laundering* becomes visible.  The
local rules in :mod:`repro.analysis.rules` resolve only direct
``ast.Call`` targets, so ``clock = time.time; clock()`` or
``functools.partial(time.time)()`` escapes them; here the binding is
recorded (``via="alias"`` / ``via="partial"`` with the binding line) and
the dataflow pass reports it transitively with a witness chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.engine import LintContext

#: Bump when the extraction schema changes; cache entries with another
#: version are ignored (see :mod:`repro.analysis.summaries`).
FACTS_VERSION = 1

#: Reserved wire-only folder names (mirrors ``repro.core.wellknown``;
#: kept literal so the analyzer never imports the analyzed tree).
RESERVED_WIRE_FOLDERS = ("DELIVERY-SEQ", "LANDING-ID", "TRACE-CONTEXT")

#: ``wellknown`` constant name -> folder string.
_RESERVED_CONSTS = {
    "TRACE_CONTEXT": "TRACE-CONTEXT",
    "DELIVERY_SEQ": "DELIVERY-SEQ",
    "LANDING_ID": "LANDING-ID",
}

#: Briefcase methods that add folder content.
_FOLDER_WRITE_METHODS = frozenset({"put", "append"})

#: Briefcase/folder mutators (feeds the ``mutates-briefcase`` summary).
_BRIEFCASE_MUTATORS = frozenset({
    "put", "append", "drop", "drop_all_except", "merge",
})

#: Names the retry machinery uses to classify errors; a handler that
#: references either is treated as transient-aware (guarded).
_TRANSIENT_GUARDS = ("is_transient", "transient")


@dataclass(frozen=True)
class CallRef:
    """One call site (or decorator application) inside a function."""

    line: int
    col: int
    #: ``"name"`` (resolved dotted target), ``"method"``
    #: (``<class-dotted>.<attr>`` needing MRO resolution), or
    #: ``"unknown"`` (honest unresolved callee).
    kind: str
    target: str
    #: ``""`` direct | ``"alias"`` | ``"partial"`` | ``"decorator"``.
    via: str = ""
    #: Binding site for laundered references (0 when direct).
    bind_line: int = 0
    #: Positional-argument count (``random.Random()`` seededness).
    nargs: int = 0
    snippet: str = ""


@dataclass(frozen=True)
class RaiseRef:
    """An explicit ``raise`` of a (statically named) exception class."""

    line: int
    exc: str
    snippet: str = ""


@dataclass(frozen=True)
class ReservedWrite:
    """A write into a reserved wire-only briefcase folder."""

    line: int
    col: int
    folder: str
    snippet: str = ""


@dataclass(frozen=True)
class RetryRegion:
    """A retry-shaped handler: ``try`` inside a loop whose ``except``
    does not unconditionally re-raise (so the loop iterates again)."""

    handler_line: int
    handler_col: int
    #: Caught exception classes, dotted ("" for a bare ``except:``).
    caught: Tuple[str, ...]
    #: Handler (or its function) consults ``is_transient``/``.transient``.
    guarded: bool
    #: Handler body re-raises on every path we can see (bare ``raise``
    #: as the last handler statement).
    reraises: bool
    #: Line span of the ``try`` body — the calls retried by this loop.
    body_start: int
    body_end: int
    snippet: str = ""


@dataclass
class FunctionFacts:
    """Everything the dataflow pass needs about one function."""

    qname: str
    name: str
    module: str
    path: str
    line: int
    #: Defining class qname ("" for module-level functions).
    cls: str = ""
    calls: List[CallRef] = field(default_factory=list)
    raises: List[RaiseRef] = field(default_factory=list)
    #: Lines with a bare ``os.environ`` attribute access.
    env_attr_lines: List[int] = field(default_factory=list)
    reserved_writes: List[ReservedWrite] = field(default_factory=list)
    retry_regions: List[RetryRegion] = field(default_factory=list)
    #: Lines with a briefcase/folder mutator method call.
    briefcase_mutations: List[int] = field(default_factory=list)


@dataclass
class ClassFacts:
    """A class definition: bases, the error-taxonomy ``transient``
    marker, and attribute types/callable bindings seen in its body."""

    qname: str
    name: str
    module: str
    line: int
    bases: List[str] = field(default_factory=list)
    #: ``"true"`` / ``"false"`` when the class body sets ``transient``,
    #: ``"none"`` for an explicit ``None``, ``"unset"`` otherwise.
    transient: str = "unset"
    #: ``self.<attr>`` -> dotted class of the assigned constructor call
    #: or annotation (best effort, first binding wins).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> (dotted callable reference, binding line) for
    #: ``self._clock = time.time``-style laundering.
    attr_aliases: Dict[str, Tuple[str, int]] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    """The cacheable distillation of one analyzed module."""

    module: str
    path: str
    functions: List[FunctionFacts] = field(default_factory=list)
    classes: List[ClassFacts] = field(default_factory=list)
    #: Import-alias table (local name -> dotted target) — resolves
    #: package re-exports (``repro.obs.Tracer``) project-wide.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Module-level callable bindings: name -> (dotted target, binding
    #: line, via) for ``_clock = time.time`` ("alias") and
    #: ``draw = functools.partial(...)`` ("partial") laundering.
    module_aliases: Dict[str, Tuple[str, int, str]] = \
        field(default_factory=dict)
    #: Effective inline suppressions, line -> sorted rule ids (already
    #: span-normalized over decorated-def headers by the engine).
    suppressions: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    file_suppressed: Tuple[str, ...] = ()

    def suppressed(self, line: int, rule: str) -> bool:
        if rule in self.file_suppressed:
            return True
        return rule in self.suppressions.get(line, ())

    def function(self, qname: str) -> Optional[FunctionFacts]:
        for facts in self.functions:
            if facts.qname == qname:
                return facts
        return None

    # -- cache serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "functions": [
                {
                    "qname": f.qname, "name": f.name, "module": f.module,
                    "path": f.path, "line": f.line, "cls": f.cls,
                    "calls": [[c.line, c.col, c.kind, c.target, c.via,
                               c.bind_line, c.nargs, c.snippet]
                              for c in f.calls],
                    "raises": [[r.line, r.exc, r.snippet]
                               for r in f.raises],
                    "env_attr_lines": list(f.env_attr_lines),
                    "reserved_writes": [[w.line, w.col, w.folder, w.snippet]
                                        for w in f.reserved_writes],
                    "retry_regions": [
                        [t.handler_line, t.handler_col, list(t.caught),
                         t.guarded, t.reraises, t.body_start, t.body_end,
                         t.snippet] for t in f.retry_regions],
                    "briefcase_mutations": list(f.briefcase_mutations),
                } for f in self.functions],
            "classes": [
                {
                    "qname": c.qname, "name": c.name, "module": c.module,
                    "line": c.line, "bases": list(c.bases),
                    "transient": c.transient,
                    "attr_types": dict(sorted(c.attr_types.items())),
                    "attr_aliases": {k: list(v) for k, v in
                                     sorted(c.attr_aliases.items())},
                } for c in self.classes],
            "aliases": dict(sorted(self.aliases.items())),
            "module_aliases": {k: list(v) for k, v in
                               sorted(self.module_aliases.items())},
            "suppressions": {str(k): list(v) for k, v in
                             sorted(self.suppressions.items())},
            "file_suppressed": list(self.file_suppressed),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleFacts":
        facts = cls(module=data["module"], path=data["path"])
        for f in data["functions"]:
            fn = FunctionFacts(qname=f["qname"], name=f["name"],
                               module=f["module"], path=f["path"],
                               line=f["line"], cls=f["cls"])
            fn.calls = [CallRef(line=c[0], col=c[1], kind=c[2], target=c[3],
                                via=c[4], bind_line=c[5], nargs=c[6],
                                snippet=c[7]) for c in f["calls"]]
            fn.raises = [RaiseRef(line=r[0], exc=r[1], snippet=r[2])
                         for r in f["raises"]]
            fn.env_attr_lines = list(f["env_attr_lines"])
            fn.reserved_writes = [ReservedWrite(line=w[0], col=w[1],
                                                folder=w[2], snippet=w[3])
                                  for w in f["reserved_writes"]]
            fn.retry_regions = [
                RetryRegion(handler_line=t[0], handler_col=t[1],
                            caught=tuple(t[2]), guarded=t[3], reraises=t[4],
                            body_start=t[5], body_end=t[6], snippet=t[7])
                for t in f["retry_regions"]]
            fn.briefcase_mutations = list(f["briefcase_mutations"])
            facts.functions.append(fn)
        for c in data["classes"]:
            klass = ClassFacts(qname=c["qname"], name=c["name"],
                               module=c["module"], line=c["line"])
            klass.bases = list(c["bases"])
            klass.transient = c["transient"]
            klass.attr_types = dict(c["attr_types"])
            klass.attr_aliases = {k: (v[0], v[1]) for k, v in
                                  c["attr_aliases"].items()}
            facts.classes.append(klass)
        facts.aliases = dict(data["aliases"])
        facts.module_aliases = {k: (v[0], v[1], v[2]) for k, v in
                                data["module_aliases"].items()}
        facts.suppressions = {int(k): tuple(v) for k, v in
                              data["suppressions"].items()}
        facts.file_suppressed = tuple(data["file_suppressed"])
        return facts


class _FunctionCollector:
    """Mutable per-scope state while walking one function body."""

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts
        #: local name -> (dotted callable target, binding line, via).
        self.aliases: Dict[str, Tuple[str, int, str]] = {}
        #: local name -> dotted class (annotation or constructor call).
        self.types: Dict[str, str] = {}


def extract_module(ctx: LintContext) -> ModuleFacts:
    """Distill one :class:`LintContext` into :class:`ModuleFacts`."""
    extractor = _Extractor(ctx)
    return extractor.run()


class _Extractor:
    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.facts = ModuleFacts(module=ctx.module, path=ctx.path)
        #: Names defined at module top level (defs, classes) — calls to
        #: them resolve to ``<module>.<name>`` even though the alias
        #: table refuses shadowed names.
        self.toplevel: Dict[str, str] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.toplevel[stmt.name] = f"{self.module}.{stmt.name}"

    def run(self) -> ModuleFacts:
        self.facts.aliases = dict(self.ctx.aliases)
        self.facts.file_suppressed = tuple(
            sorted(self.ctx.file_suppressed_rules()))
        self.facts.suppressions = self._collect_suppressions()
        module_fn = self._new_function(f"{self.module}.<module>",
                                       "<module>", line=1, cls="")
        scope = _FunctionCollector(module_fn)
        self._visit_block(self.ctx.tree.body, scope, class_ctx=None)
        self.facts.functions.append(module_fn)
        # Deterministic order: definition line, then qname.
        self.facts.functions.sort(key=lambda f: (f.line, f.qname))
        self.facts.classes.sort(key=lambda c: (c.line, c.qname))
        return self.facts

    def _collect_suppressions(self) -> Dict[int, Tuple[str, ...]]:
        table: Dict[int, Tuple[str, ...]] = {}
        for lineno in range(1, len(self.ctx.lines) + 1):
            rules = self.ctx.suppressed_rules(lineno)
            if rules:
                table[lineno] = tuple(sorted(rules))
        return table

    def _new_function(self, qname: str, name: str, line: int,
                      cls: str) -> FunctionFacts:
        return FunctionFacts(qname=qname, name=name, module=self.module,
                             path=self.ctx.path, line=line, cls=cls)

    # -- scope walking ------------------------------------------------------

    def _visit_block(self, stmts: Sequence[ast.stmt],
                     scope: _FunctionCollector,
                     class_ctx: Optional[ClassFacts]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt, scope, class_ctx)

    def _visit_stmt(self, stmt: ast.stmt, scope: _FunctionCollector,
                    class_ctx: Optional[ClassFacts]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function_def(stmt, scope, class_ctx)
            return
        if isinstance(stmt, ast.ClassDef):
            self._visit_class_def(stmt, scope, class_ctx)
            return
        if isinstance(stmt, ast.Try):
            self._record_retry_regions(stmt, scope)
        if isinstance(stmt, ast.Raise):
            self._record_raise(stmt, scope)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._record_binding(stmt, scope, class_ctx)
        # Expressions inside this statement (but not nested defs).
        for node in self._walk_expressions(stmt):
            if isinstance(node, ast.Call):
                self._record_call(node, scope, class_ctx)
            elif isinstance(node, ast.Attribute) and \
                    node.attr == "environ" and \
                    self.ctx.qualified_name(node) == "os.environ":
                scope.facts.env_attr_lines.append(node.lineno)
        # Recurse into child statement blocks within the same scope.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child, scope, class_ctx)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                self._visit_block(child.body, scope, class_ctx)
            elif isinstance(child, ast.withitem):
                continue

    @staticmethod
    def _walk_expressions(stmt: ast.stmt) -> List[ast.expr]:
        """Expression nodes belonging to ``stmt`` itself — stops at
        nested statements and nested function/class definitions."""
        found: List[ast.expr] = []
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt, ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef,
                                      ast.Lambda)):
                    continue
                if isinstance(child, ast.expr):
                    found.append(child)
                stack.append(child)
        found.sort(key=lambda n: (n.lineno, n.col_offset))
        return found

    def _visit_function_def(self, node: ast.FunctionDef,
                            parent_scope: _FunctionCollector,
                            class_ctx: Optional[ClassFacts]) -> None:
        if class_ctx is not None:
            qname = f"{class_ctx.qname}.{node.name}"
            cls = class_ctx.qname
        else:
            parent = parent_scope.facts.qname
            if parent.endswith(".<module>"):
                qname = f"{self.module}.{node.name}"
            else:
                qname = f"{parent}.{node.name}"
            cls = ""
        # Decorator applications run in the defining scope.
        for decorator in node.decorator_list:
            call_node = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            target = self.ctx.qualified_name(call_node)
            if target is None and isinstance(call_node, ast.Name) and \
                    call_node.id in self.toplevel:
                target = self.toplevel[call_node.id]
            if target is not None:
                parent_scope.facts.calls.append(CallRef(
                    line=decorator.lineno, col=decorator.col_offset + 1,
                    kind="name", target=target, via="decorator",
                    snippet=self.ctx.line_text(decorator.lineno)))
        facts = self._new_function(qname, node.name, node.lineno, cls)
        scope = _FunctionCollector(facts)
        self._seed_parameter_types(node, scope)
        self._visit_block(node.body, scope, class_ctx=None)
        self.facts.functions.append(facts)

    def _seed_parameter_types(self, node: ast.FunctionDef,
                              scope: _FunctionCollector) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args) + \
            list(node.args.kwonlyargs)
        for arg in args:
            if arg.annotation is None:
                continue
            dotted = self._annotation_type(arg.annotation)
            if dotted is not None:
                scope.types[arg.arg] = dotted

    def _annotation_type(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._annotation_type(parsed)
        if isinstance(node, ast.Subscript):
            value = self.ctx.qualified_name(node.value)
            if value in ("Optional", "typing.Optional"):
                return self._annotation_type(node.slice)
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = self.ctx.qualified_name(node)
            if dotted is None and isinstance(node, ast.Name) and \
                    node.id in self.toplevel:
                return self.toplevel[node.id]
            return dotted
        return None

    def _visit_class_def(self, node: ast.ClassDef,
                         parent_scope: _FunctionCollector,
                         class_ctx: Optional[ClassFacts]) -> None:
        if class_ctx is not None:
            qname = f"{class_ctx.qname}.{node.name}"
        else:
            parent = parent_scope.facts.qname
            if parent.endswith(".<module>"):
                qname = f"{self.module}.{node.name}"
            else:
                qname = f"{parent}.{node.name}"
        klass = ClassFacts(qname=qname, name=node.name, module=self.module,
                           line=node.lineno)
        for base in node.bases:
            dotted = self.ctx.qualified_name(base)
            if dotted is None and isinstance(base, ast.Name) and \
                    base.id in self.toplevel:
                dotted = self.toplevel[base.id]
            if dotted is not None:
                klass.bases.append(dotted)
        self._prescan_class_body(node, klass)
        self.facts.classes.append(klass)
        # Class-body statements execute in the enclosing scope; methods
        # become their own functions under the class qname.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._visit_stmt(stmt, parent_scope, klass)
            else:
                self._visit_stmt(stmt, parent_scope, class_ctx)

    def _prescan_class_body(self, node: ast.ClassDef,
                            klass: ClassFacts) -> None:
        """Collect ``transient`` taxonomy markers, annotated attribute
        types, and ``self.<attr> = <callable-ref>`` bindings from every
        method before bodies are walked (method order must not matter)."""
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if name == "transient" and \
                        isinstance(stmt.value, ast.Constant):
                    value = stmt.value.value
                    if value is True:
                        klass.transient = "true"
                    elif value is False:
                        klass.transient = "false"
                    elif value is None:
                        klass.transient = "none"
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                dotted = self._annotation_type(stmt.annotation)
                if dotted is not None:
                    klass.attr_types.setdefault(stmt.target.id, dotted)
        for body_node in ast.walk(node):
            target = self._self_attr_target(body_node)
            if target is None:
                continue
            attr, value, lineno = target
            if isinstance(value, ast.Call):
                dotted = self._callable_ref(value.func)
                if dotted is not None:
                    klass.attr_types.setdefault(attr, dotted)
            elif isinstance(value, (ast.Name, ast.Attribute)):
                dotted = self._callable_ref(value)
                if dotted is not None:
                    klass.attr_aliases.setdefault(attr, (dotted, lineno))

    @staticmethod
    def _self_attr_target(node: ast.AST
                          ) -> Optional[Tuple[str, ast.expr, int]]:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            return None
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return target.attr, value, node.lineno
        return None

    def _callable_ref(self, node: ast.expr) -> Optional[str]:
        """Resolve a Name/Attribute reference to a dotted target,
        falling back to module top-level definitions."""
        if isinstance(node, ast.Name) and node.id in self.toplevel:
            return self.toplevel[node.id]
        if isinstance(node, (ast.Name, ast.Attribute)):
            head: ast.expr = node
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name) and head.id == "self":
                return None
            return self.ctx.qualified_name(node)
        return None

    # -- reference recording ------------------------------------------------

    def _record_binding(self, stmt: ast.stmt, scope: _FunctionCollector,
                        class_ctx: Optional[ClassFacts]) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or \
                    not isinstance(stmt.targets[0], ast.Name):
                return
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            dotted = self._annotation_type(stmt.annotation)
            if dotted is not None:
                scope.types[name] = dotted
            if stmt.value is None:
                return
            value = stmt.value
        else:
            return
        if isinstance(value, (ast.Name, ast.Attribute)):
            dotted = self._callable_ref(value)
            if dotted is not None:
                scope.aliases[name] = (dotted, stmt.lineno, "alias")
                if scope.facts.name == "<module>":
                    self.facts.module_aliases.setdefault(
                        name, (dotted, stmt.lineno, "alias"))
        elif isinstance(value, ast.Call):
            func_target = self.ctx.qualified_name(value.func)
            if func_target in ("functools.partial", "partial") and \
                    value.args:
                inner = self._callable_ref(value.args[0])
                if inner is not None:
                    scope.aliases[name] = (inner, stmt.lineno, "partial")
                    if scope.facts.name == "<module>":
                        self.facts.module_aliases.setdefault(
                            name, (inner, stmt.lineno, "partial"))
            else:
                ctor = self._callable_ref(value.func)
                if ctor is not None:
                    scope.types.setdefault(name, ctor)

    def _record_raise(self, stmt: ast.Raise,
                      scope: _FunctionCollector) -> None:
        exc = stmt.exc
        if exc is None:
            return  # bare re-raise: not an origin
        node = exc.func if isinstance(exc, ast.Call) else exc
        dotted = self._callable_ref(node) if \
            isinstance(node, (ast.Name, ast.Attribute)) else None
        scope.facts.raises.append(RaiseRef(
            line=stmt.lineno, exc=dotted or "",
            snippet=self.ctx.line_text(stmt.lineno)))

    def _record_retry_regions(self, stmt: ast.Try,
                              scope: _FunctionCollector) -> None:
        if not self._inside_loop(stmt):
            return
        body_lines = [n.lineno for n in stmt.body]
        body_end = max((getattr(n, "end_lineno", n.lineno) or n.lineno)
                       for n in stmt.body)
        for handler in stmt.handlers:
            caught = self._caught_types(handler)
            guarded = self._references_guard(handler)
            reraises = self._always_reraises(handler)
            scope.facts.retry_regions.append(RetryRegion(
                handler_line=handler.lineno,
                handler_col=handler.col_offset + 1,
                caught=caught, guarded=guarded, reraises=reraises,
                body_start=min(body_lines), body_end=body_end,
                snippet=self.ctx.line_text(handler.lineno)))

    def _inside_loop(self, stmt: ast.Try) -> bool:
        node: Optional[ast.AST] = self.ctx.parent(stmt)
        while node is not None:
            if isinstance(node, (ast.While, ast.For)):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return False
            node = self.ctx.parent(node)
        return False

    def _caught_types(self, handler: ast.ExceptHandler) -> Tuple[str, ...]:
        if handler.type is None:
            return ("",)
        entries = handler.type.elts if \
            isinstance(handler.type, ast.Tuple) else [handler.type]
        caught: List[str] = []
        for entry in entries:
            dotted = self._callable_ref(entry) if \
                isinstance(entry, (ast.Name, ast.Attribute)) else None
            caught.append(dotted or "")
        return tuple(caught)

    @staticmethod
    def _references_guard(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=list(handler.body),
                                        type_ignores=[])):
            if isinstance(node, ast.Name) and \
                    node.id in _TRANSIENT_GUARDS:
                return True
            if isinstance(node, ast.Attribute) and \
                    node.attr in _TRANSIENT_GUARDS:
                return True
        return False

    @staticmethod
    def _always_reraises(handler: ast.ExceptHandler) -> bool:
        if not handler.body:
            return False
        last = handler.body[-1]
        return isinstance(last, ast.Raise) and last.exc is None

    def _record_call(self, node: ast.Call, scope: _FunctionCollector,
                     class_ctx: Optional[ClassFacts]) -> None:
        self._record_reserved_write(node, scope)
        self._record_briefcase_mutation(node, scope)
        snippet = self.ctx.line_text(node.lineno)
        line, col = node.lineno, node.col_offset + 1
        nargs = len(node.args)
        func = node.func

        def add(kind: str, target: str, via: str = "",
                bind_line: int = 0) -> None:
            scope.facts.calls.append(CallRef(
                line=line, col=col, kind=kind, target=target, via=via,
                bind_line=bind_line, nargs=nargs, snippet=snippet))

        # Inline functools.partial(f, ...)(...) application.
        if isinstance(func, ast.Call):
            inner_target = self.ctx.qualified_name(func.func)
            if inner_target in ("functools.partial", "partial") and \
                    func.args:
                wrapped = self._callable_ref(func.args[0])
                if wrapped is not None:
                    add("name", wrapped, via="partial",
                        bind_line=func.lineno)
                    return
            add("unknown", "<call-result>")
            return

        if isinstance(func, ast.Name):
            name = func.id
            if name in scope.aliases:
                target, bind_line, via = scope.aliases[name]
                add("name", target, via=via, bind_line=bind_line)
                return
            if name in self.facts.module_aliases and \
                    name not in scope.types:
                target, bind_line, via = self.facts.module_aliases[name]
                add("name", target, via=via, bind_line=bind_line)
                return
            if name in self.toplevel:
                add("name", self.toplevel[name])
                return
            dotted = self.ctx.qualified_name(func)
            if dotted is not None:
                add("name", dotted)
            else:
                add("unknown", name)
            return

        if isinstance(func, ast.Attribute):
            self._record_attribute_call(func, scope, class_ctx, add)
            return

        add("unknown", "<dynamic>")

    def _record_attribute_call(
            self, func: ast.Attribute, scope: _FunctionCollector,
            class_ctx: Optional[ClassFacts],
            add: Any) -> None:
        receiver = func.value
        method = func.attr
        # self.<x>() — an attribute alias, or a method on our class.
        if isinstance(receiver, ast.Name) and receiver.id == "self" and \
                class_ctx is not None:
            alias = class_ctx.attr_aliases.get(method)
            if alias is not None:
                add("name", alias[0], via="alias", bind_line=alias[1])
                return
            add("method", f"{class_ctx.qname}.{method}")
            return
        # self.<attr>.<m>() — method on a typed attribute.
        if isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id == "self" and class_ctx is not None:
            attr_type = class_ctx.attr_types.get(receiver.attr)
            if attr_type is not None:
                add("method", f"{attr_type}.{method}")
                return
            add("unknown", f"self.{receiver.attr}.{method}")
            return
        # <local>.<m>() — method on an annotated/constructed local.
        if isinstance(receiver, ast.Name):
            local_type = scope.types.get(receiver.id)
            if local_type is not None:
                add("method", f"{local_type}.{method}")
                return
            if receiver.id in self.toplevel:
                add("name", f"{self.toplevel[receiver.id]}.{method}")
                return
        # Module-qualified (or class-qualified) dotted reference.
        dotted = self.ctx.qualified_name(func)
        if dotted is not None:
            head: ast.expr = func
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name) and (
                    head.id in self.ctx.aliases or
                    head.id not in self.ctx.shadowed):
                add("name", dotted)
                return
        parts: List[str] = [method]
        node: ast.expr = receiver
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        parts.append(node.id if isinstance(node, ast.Name) else "?")
        add("unknown", ".".join(reversed(parts)))

    def _record_reserved_write(self, node: ast.Call,
                               scope: _FunctionCollector) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and
                func.attr in _FOLDER_WRITE_METHODS and node.args):
            return
        folder = self._reserved_folder_name(node.args[0])
        if folder is not None:
            scope.facts.reserved_writes.append(ReservedWrite(
                line=node.lineno, col=node.col_offset + 1, folder=folder,
                snippet=self.ctx.line_text(node.lineno)))

    def _reserved_folder_name(self, arg: ast.expr) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value if arg.value in RESERVED_WIRE_FOLDERS else None
        if isinstance(arg, (ast.Name, ast.Attribute)):
            dotted = self.ctx.qualified_name(arg)
            if dotted is None:
                return None
            const = dotted.rsplit(".", 1)[-1]
            return _RESERVED_CONSTS.get(const)
        return None

    def _record_briefcase_mutation(self, node: ast.Call,
                                   scope: _FunctionCollector) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _BRIEFCASE_MUTATORS:
            receiver = func.value
            name = receiver.id if isinstance(receiver, ast.Name) else (
                receiver.attr if isinstance(receiver, ast.Attribute)
                else "")
            if name in ("briefcase", "bc", "folder") or \
                    name.endswith("briefcase"):
                scope.facts.briefcase_mutations.append(node.lineno)
