"""The interprocedural rule pack: rules over the whole-program view.

Two kinds of rules live here.  The *upgraded* determinism rules
(DET001–003, KER001 — same stable ids as their local counterparts)
report effects the per-function rules cannot see: a wall-clock read
laundered through an alias or ``functools.partial``, or an environment
read reached from deterministic code through a helper module outside
DET003's scope.  The *new* rules (ERR002, WIRE001, ASY001) only exist
at this layer — they are properties of paths, not of lines.

Reporting policy ("innermost uncovered"): an effect chain produces at
most one finding, at the innermost in-scope function whose origin the
local rule pack does not already cover.  A visible origin (a direct,
resolvable call on an unsuppressed line in an in-scope module) is the
local rule's business — the transitive layer stays silent rather than
duplicating it.  Suppressed lines and sanctuary modules never enter
the dataflow at all (see :mod:`repro.analysis.summaries`), so a
justified ``# lint: disable=`` keeps sanctioning the whole chain.

Every finding carries a witness path: caller context down to the
reported function, then the cause chain to the origin line.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import Cause, Dataflow
from repro.analysis.findings import Finding, WitnessStep
from repro.analysis.rules import ENV_SCOPES
from repro.analysis.summaries import (
    BLOCKING_IO,
    ENV_READ,
    KERNEL_BYPASS,
    RAISES_PERMANENT,
    READS_WALL_CLOCK,
    SIM_COUPLED,
    UNSEEDED_RANDOM,
)
from repro.analysis.symbols import FunctionFacts, RetryRegion

#: How many caller-context hops to prepend to a witness chain.
_CALLER_CONTEXT_HOPS = 3

#: Strip sites for the reserved wire-only folders: the PR 6/7 receive
#: path helpers that remove ``TRACE-CONTEXT`` / ``DELIVERY-SEQ`` /
#: ``LANDING-ID`` before a briefcase reaches agent code.
WIRE_STRIP_ROOTS = (
    "repro.firewall.dedup.extract_landing",
    "repro.firewall.dedup.extract_seq",
    "repro.obs.propagation.extract",
)

#: Modules the real-transport roadmap item calls transport-clean: the
#: firewall/codec/TAX data plane that must run unchanged on the asyncio
#: backend.  ASY001 keeps them free of blocking calls and of edges into
#: the virtual-time simulation.
ASY001_SCOPES = (
    "repro.core.briefcase",
    "repro.core.codec",
    "repro.core.element",
    "repro.core.errors",
    "repro.core.folder",
    "repro.core.identity",
    "repro.core.limits",
    "repro.core.retry",
    "repro.core.uri",
    "repro.core.wellknown",
    "repro.firewall.auth",
    "repro.firewall.dedup",
    # The reference monitor itself is the component the backend swap
    # re-hosts; its one residual edge into the simulated network
    # (breaker configuration) is baselined against the roadmap item.
    "repro.firewall.firewall",
    "repro.firewall.message",
    "repro.firewall.policy",
    "repro.firewall.routing",
)

#: Exception names that catch everything (plus the bare ``except:``
#: sentinel "").
_BROAD_CATCHES = frozenset({"", "Exception", "BaseException"})


class ProjectRule:
    """Base class for whole-program rules."""

    id = "PRJ000"
    severity = "error"
    description = ""

    def check(self, project: Project,
              flow: Dataflow) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - generator template

    def finding(self, project: Project, qname: str, line: int, col: int,
                message: str, snippet: str,
                witness: Sequence[WitnessStep]) -> Finding:
        function = project.functions[qname]
        return Finding(rule=self.id, severity=self.severity,
                       path=function.path, line=line, col=col,
                       message=message, snippet=snippet,
                       witness=tuple(witness))


#: The default project-rule registry, in registration order.
PROJECT_RULES: List[ProjectRule] = []


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    PROJECT_RULES.append(cls())
    return cls


def project_rule_index() -> Dict[str, Tuple[str, str]]:
    """rule id -> (severity, description) for SARIF/docs, *excluding*
    ids shared with the local pack (the local entry wins there)."""
    return {rule.id: (rule.severity, rule.description)
            for rule in PROJECT_RULES}


def _caller_context(project: Project, qname: str) -> List[WitnessStep]:
    """Up to :data:`_CALLER_CONTEXT_HOPS` callers above ``qname``
    (outermost first), chosen lexicographically for determinism."""
    chain: List[str] = [qname]
    seen = {qname}
    current = qname
    for _ in range(_CALLER_CONTEXT_HOPS):
        callers = [c for c in project.callers.get(current, ())
                   if c not in seen and not c.endswith(".<module>")]
        if not callers:
            break
        parent = callers[0]
        seen.add(parent)
        chain.append(parent)
        current = parent
    steps: List[WitnessStep] = []
    for index in range(len(chain) - 1, 0, -1):
        caller, callee = chain[index], chain[index - 1]
        caller_facts = project.functions[caller]
        line = caller_facts.line
        for edge in project.graph[caller]:
            if edge.kind == "call" and edge.callee == callee:
                line = edge.line
                break
        short = callee.rsplit(".", 1)[-1]
        steps.append(WitnessStep(function=caller, path=caller_facts.path,
                                 line=line, note=f"calls {short}()"))
    return steps


def _chain_steps(flow: Dataflow, qname: str,
                 effect: str) -> List[WitnessStep]:
    return [WitnessStep(function=fn, path=path, line=line, note=note)
            for fn, path, line, note in flow.chain(qname, effect)]


class TransitiveEffectRule(ProjectRule):
    """Shared machinery for the upgraded DET/KER/ASY effect rules."""

    #: The dataflow effect this rule reports.
    effect = ""
    #: True when a *local* rule can already flag visible origins (the
    #: transitive layer then defers to it).
    has_local_rule = True

    def in_scope(self, module: str) -> bool:
        return True

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        raise NotImplementedError

    def check(self, project: Project,
              flow: Dataflow) -> Iterator[Finding]:
        status: Dict[str, str] = {}
        for qname in sorted(project.functions):
            if flow.cause(qname, self.effect) is None:
                continue
            if self._status(project, flow, qname, status) != "reported":
                continue
            cause = flow.cause(qname, self.effect)
            assert cause is not None
            root = flow.root(qname, self.effect)
            if root is None:
                continue
            root_qname, root_cause = root
            witness = _caller_context(project, qname) + \
                _chain_steps(flow, qname, self.effect)
            yield self.finding(
                project, qname, cause.line, cause.col,
                self.message(project, qname, root_qname, root_cause),
                cause.snippet, witness)

    def _status(self, project: Project, flow: Dataflow, qname: str,
                memo: Dict[str, str]) -> str:
        """``"covered"`` (a local finding or a deeper transitive finding
        exists), ``"reported"`` (this function gets the finding), or
        ``"unscoped"`` (tainted, but outside the rule's scope)."""
        cached = memo.get(qname)
        if cached is not None:
            return cached
        memo[qname] = "covered"  # cycle guard: stay quiet on revisits
        cause = flow.cause(qname, self.effect)
        if cause is None:
            result = "covered"
        elif cause.kind == "intrinsic":
            function = project.functions[qname]
            if not self.in_scope(function.module):
                result = "unscoped"
            elif cause.visible and self.has_local_rule:
                result = "covered"
            else:
                result = "reported"
        else:
            below = self._status(project, flow, cause.callee, memo)
            if below in ("covered", "reported"):
                result = "covered"
            else:
                function = project.functions[qname]
                result = "reported" if self.in_scope(function.module) \
                    else "unscoped"
        memo[qname] = result
        return result


@register_project
class TransitiveWallClockRule(TransitiveEffectRule):
    id = "DET001"
    severity = "error"
    description = ("Wall-clock read reached through the call graph "
                   "(aliased or laundered past the local rule)")
    effect = READS_WALL_CLOCK

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"reaches a wall-clock read ({root.note} in {short}) "
                f"invisible to the local rule; deterministic code must "
                f"use the kernel's virtual clock (kernel.now / ctx.now)")


@register_project
class TransitiveRandomRule(TransitiveEffectRule):
    id = "DET002"
    severity = "error"
    description = ("Unseeded randomness reached through the call graph "
                   "outside repro.sim.rng")
    effect = UNSEEDED_RANDOM

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"reaches unseeded randomness ({root.note} in {short}) "
                f"the simulation cannot replay; route randomness "
                f"through repro.sim.rng")


@register_project
class TransitiveEnvReadRule(TransitiveEffectRule):
    id = "DET003"
    severity = "error"
    description = ("Environment read reached from sim/core through "
                   "helpers outside the local rule's scope")
    effect = ENV_READ

    def in_scope(self, module: str) -> bool:
        return module.startswith(ENV_SCOPES)

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"deterministic code reaches an environment read "
                f"({root.note} in {short}); thread configuration "
                f"through explicit parameters instead")


@register_project
class TransitiveKernelBypassRule(TransitiveEffectRule):
    id = "KER001"
    severity = "error"
    description = ("Kernel-bypassing scheduling primitive reached "
                   "through the call graph outside repro.sim.eventloop")
    effect = KERNEL_BYPASS

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"reaches a kernel-bypassing scheduler ({root.note} in "
                f"{short}); every scheduling decision must flow "
                f"through repro.sim.eventloop")


@register_project
class RetryBurnRule(ProjectRule):
    id = "ERR002"
    severity = "error"
    description = ("Retry-shaped handler catches (and retries) a path "
                   "that raises a permanent error — retries are burned "
                   "on an outcome that cannot change")

    def check(self, project: Project,
              flow: Dataflow) -> Iterator[Finding]:
        for qname in sorted(project.functions):
            function = project.functions[qname]
            module_facts = project.modules[function.module]
            if self.id in module_facts.file_suppressed:
                continue
            for region in function.retry_regions:
                if region.reraises or region.guarded:
                    continue
                if module_facts.suppressed(region.handler_line, self.id):
                    continue
                caught = self._effective_catches(project, region.caught)
                if caught is None:
                    continue
                hit = self._permanent_in_body(project, flow, function,
                                              region, caught)
                if hit is None:
                    continue
                line, steps, root_qname, root = hit
                exc_short = root.detail.rsplit(".", 1)[-1] \
                    if root.detail else "a permanent error"
                yield self.finding(
                    project, qname, region.handler_line,
                    region.handler_col,
                    f"retry loop catches {exc_short} "
                    f"(transient=False) raised on the retried path: "
                    f"each attempt fails identically and burns the "
                    f"RetryPolicy budget; check is_transient(exc) or "
                    f"narrow the except to transient types",
                    region.snippet, steps)

    @staticmethod
    def _effective_catches(project: Project,
                           caught: Tuple[str, ...]
                           ) -> Optional[List[str]]:
        """The caught entries that could swallow a permanent error:
        broad names, or taxonomy classes not provably transient.
        None when every entry is taxonomy-transient (a safe handler)."""
        effective: List[str] = []
        for entry in caught:
            short = entry.rsplit(".", 1)[-1]
            if short in _BROAD_CATCHES:
                effective.append("")
                continue
            kind, resolved = project.resolve(entry)
            if kind != "class":
                # Unresolvable/builtin exception: it cannot catch the
                # project taxonomy's permanent errors.
                continue
            if project.class_transient(resolved) == "true":
                continue
            effective.append(resolved)
        return effective or None

    def _permanent_in_body(
            self, project: Project, flow: Dataflow,
            function: FunctionFacts, region: RetryRegion,
            caught: List[str]) -> Optional[
                Tuple[int, List[WitnessStep], str, Cause]]:
        # A permanent raise directly inside the retried body.
        for raise_ref in function.raises:
            if not region.body_start <= raise_ref.line <= region.body_end:
                continue
            if not raise_ref.exc:
                continue
            kind, resolved = project.resolve(raise_ref.exc)
            if kind != "class" or \
                    project.class_transient(resolved) != "false":
                continue
            if not self._catchable(project, caught, resolved):
                continue
            short = resolved.rsplit(".", 1)[-1]
            cause = Cause(kind="intrinsic", line=raise_ref.line, col=1,
                          note=f"raises {short} (transient=False)",
                          snippet=raise_ref.snippet, detail=resolved)
            step = WitnessStep(function=function.qname,
                               path=function.path, line=raise_ref.line,
                               note=cause.note)
            return (raise_ref.line, [step], function.qname, cause)
        # A call in the retried body reaching a permanent raise.
        for call in function.calls:
            if not region.body_start <= call.line <= region.body_end:
                continue
            edge = next((e for e in project.graph[function.qname]
                         if e.line == call.line and e.kind == "call"),
                        None)
            if edge is None:
                continue
            if flow.cause(edge.callee, RAISES_PERMANENT) is None:
                continue
            root = flow.root(edge.callee, RAISES_PERMANENT)
            if root is None:
                continue
            root_qname, root_cause = root
            if root_cause.detail and \
                    not self._catchable(project, caught,
                                        root_cause.detail):
                continue
            short = edge.callee.rsplit(".", 1)[-1]
            steps = [WitnessStep(function=function.qname,
                                 path=function.path, line=call.line,
                                 note=f"retried call to {short}()")]
            steps.extend(_chain_steps(flow, edge.callee,
                                      RAISES_PERMANENT))
            return (call.line, steps, root_qname, root_cause)
        return None

    @staticmethod
    def _catchable(project: Project, caught: List[str],
                   raised: str) -> bool:
        mro = project.mro(raised)
        for entry in caught:
            if entry == "":
                return True
            if entry in mro:
                return True
        return False


@register_project
class ReservedFolderRule(ProjectRule):
    id = "WIRE001"
    severity = "error"
    description = ("Reserved wire-only folder written by code that "
                   "cannot reach a receive_wire strip — the value "
                   "would leak into agent-visible briefcases")

    def check(self, project: Project,
              flow: Dataflow) -> Iterator[Finding]:
        strippers = project.reaches(WIRE_STRIP_ROOTS, reverse=True)
        stripper_modules = {project.functions[q].module
                            for q in strippers}
        for qname in sorted(project.functions):
            function = project.functions[qname]
            if not function.reserved_writes:
                continue
            module_facts = project.modules[function.module]
            if self.id in module_facts.file_suppressed:
                continue
            sanctioned = qname in strippers or \
                function.module in stripper_modules
            if not sanctioned:
                forward = project.reaches([qname])
                sanctioned = any(root in forward
                                 for root in WIRE_STRIP_ROOTS)
            if sanctioned:
                continue
            for write in function.reserved_writes:
                if module_facts.suppressed(write.line, self.id):
                    continue
                witness = _caller_context(project, qname)
                witness.append(WitnessStep(
                    function=qname, path=function.path, line=write.line,
                    note=f"writes reserved folder {write.folder} with "
                         f"no path to a strip site "
                         f"(extract/extract_seq/extract_landing)"))
                yield self.finding(
                    project, qname, write.line, write.col,
                    f"writes reserved wire-only folder {write.folder} "
                    f"outside the inject/strip pairing: nothing on "
                    f"this path strips it at receive_wire, so the "
                    f"value leaks into agent-visible briefcases and "
                    f"pollutes dedup/tracing state",
                    write.snippet, witness)


@register_project
class TransportCleanRule(TransitiveEffectRule):
    id = "ASY001"
    severity = "warning"
    description = ("Transport-clean module reaches blocking I/O or the "
                   "virtual-time simulation; the real asyncio backend "
                   "must land on clean ground")
    effect = BLOCKING_IO
    has_local_rule = False

    def in_scope(self, module: str) -> bool:
        return module in ASY001_SCOPES

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"transport-clean code reaches blocking I/O "
                f"({root.note} in {short}); the asyncio transport "
                f"backend cannot run this on its event loop — make the "
                f"wait explicit at the transport layer")


@register_project
class TransportSimCouplingRule(TransitiveEffectRule):
    id = "ASY001"
    severity = "warning"
    description = ("Transport-clean module reaches blocking I/O or the "
                   "virtual-time simulation; the real asyncio backend "
                   "must land on clean ground")
    effect = SIM_COUPLED
    has_local_rule = False

    def in_scope(self, module: str) -> bool:
        return module in ASY001_SCOPES

    def message(self, project: Project, qname: str, root_qname: str,
                root: Cause) -> str:
        short = root_qname.rsplit(".", 1)[-1]
        return (f"transport-clean code is coupled to virtual time "
                f"({root.note}, via {short}); the real-transport "
                f"backend shares this code path — inject the clock/"
                f"scheduler through an interface instead")


def all_project_rule_ids() -> Tuple[str, ...]:
    seen: List[str] = []
    for rule in PROJECT_RULES:
        if rule.id not in seen:
            seen.append(rule.id)
    return tuple(seen)
