"""Worklist effect propagation over the SCC-condensed call graph.

Each function starts from its *intrinsic* effects
(:func:`repro.analysis.summaries.intrinsic_effects`, plus
``raises-permanent`` which needs the project-wide error taxonomy) and
absorbs the effects of every resolved callee, bottom-up: Tarjan's
algorithm (iterative, over sorted nodes and sorted adjacency, so the
SCC order is a pure function of the graph) emits strongly connected
components callees-first, and mutually recursive functions reach a
fixpoint within their component.

Two kinds of *barriers* stop propagation, both meaning "a human already
sanctioned this":

* an inline ``# lint: disable=<rule>`` on the call site (or origin
  line) of the rule mapped to the effect;
* the per-effect sanctuary modules (``repro.sim.rng`` may draw entropy,
  ``repro.sim.eventloop`` may keep its heap) — effects never escape a
  sanctuary function.

For every (function, effect) the pass records the *first* cause found
— an intrinsic origin or the call edge it arrived through — in
deterministic processing order, and :meth:`Dataflow.chain` replays
cause links into the witness path rendered with interprocedural
findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import Edge, Project
from repro.analysis.summaries import (
    EFFECT_RULE,
    RAISES_PERMANENT,
    in_sanctuary,
    intrinsic_effects,
)


@dataclass(frozen=True)
class Cause:
    """Why a function carries an effect."""

    #: ``"intrinsic"`` (its own body) or ``"edge"`` (a callee).
    kind: str
    line: int
    col: int
    #: Human phrase for the witness chain.
    note: str
    #: Callee qname for ``"edge"`` causes, else "".
    callee: str = ""
    #: Intrinsic only: True when the local rule pack can already see
    #: this origin (a direct resolvable call on an unsuppressed line).
    visible: bool = False
    snippet: str = ""
    #: Machine-readable payload (the resolved exception class qname for
    #: ``raises-permanent`` origins — ERR002 checks catchability).
    detail: str = ""


class Dataflow:
    """Effect summaries for every function in a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qname -> effect -> first cause.
        self.effects: Dict[str, Dict[str, Cause]] = {}
        self._propagate()

    # -- seeding ------------------------------------------------------------

    def _seed(self, qname: str) -> Dict[str, Cause]:
        function = self.project.functions[qname]
        module_facts = self.project.modules[function.module]
        seeded: Dict[str, Cause] = {}
        for intrinsic in intrinsic_effects(function, module_facts):
            if intrinsic.effect not in seeded:
                seeded[intrinsic.effect] = Cause(
                    kind="intrinsic", line=intrinsic.line,
                    col=intrinsic.col, note=intrinsic.note,
                    visible=intrinsic.visible, snippet=intrinsic.snippet)
        permanent = self._permanent_raise(qname)
        if permanent is not None and RAISES_PERMANENT not in seeded:
            seeded[RAISES_PERMANENT] = permanent
        return seeded

    def _permanent_raise(self, qname: str) -> Optional[Cause]:
        function = self.project.functions[qname]
        module_facts = self.project.modules[function.module]
        rule = EFFECT_RULE[RAISES_PERMANENT]
        for raise_ref in function.raises:
            if not raise_ref.exc:
                continue
            kind, resolved = self.project.resolve(raise_ref.exc)
            if kind != "class":
                continue
            if self.project.class_transient(resolved) != "false":
                continue
            if module_facts.suppressed(raise_ref.line, rule):
                continue
            short = resolved.rsplit(".", 1)[-1]
            return Cause(kind="intrinsic", line=raise_ref.line, col=1,
                         note=f"raises {short} (transient=False)",
                         visible=False, snippet=raise_ref.snippet,
                         detail=resolved)
        return None

    # -- propagation --------------------------------------------------------

    def _adjacency(self) -> Dict[str, List[str]]:
        adjacency: Dict[str, List[str]] = {}
        for qname in sorted(self.project.functions):
            callees = {edge.callee for edge in self.project.graph[qname]
                       if edge.kind == "call" and
                       edge.callee in self.project.functions}
            adjacency[qname] = sorted(callees)
        return adjacency

    def _sccs(self, adjacency: Dict[str, List[str]]) -> List[List[str]]:
        """Iterative Tarjan; components are emitted callees-first and
        each component's member list is sorted."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = 0
        for root in sorted(adjacency):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                descended = False
                successors = adjacency[node]
                while position < len(successors):
                    successor = successors[position]
                    position += 1
                    if successor not in index:
                        work.append((node, position))
                        work.append((successor, 0))
                        descended = True
                        break
                    if successor in on_stack:
                        low[node] = min(low[node], index[successor])
                if descended:
                    continue
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    def _propagate(self) -> None:
        adjacency = self._adjacency()
        for qname in sorted(self.project.functions):
            self.effects[qname] = self._seed(qname)
        for component in self._sccs(adjacency):
            members = set(component)
            changed = True
            while changed:
                changed = False
                for qname in component:
                    for edge in self.project.graph[qname]:
                        if edge.kind != "call":
                            continue
                        if edge.callee not in self.project.functions:
                            continue
                        if self._absorb(qname, edge):
                            changed = True
                # A single pass suffices unless the component is a
                # genuine cycle that grew new effects this round.
                if len(members) == 1:
                    break

    def _absorb(self, caller: str, edge: Edge) -> bool:
        """Pull the callee's effects across one edge; returns True when
        the caller gained an effect."""
        callee_function = self.project.functions[edge.callee]
        caller_function = self.project.functions[caller]
        module_facts = self.project.modules[caller_function.module]
        gained = False
        callee_effects = self.effects[edge.callee]
        caller_effects = self.effects[caller]
        for effect in sorted(callee_effects):
            if effect in caller_effects:
                continue
            if in_sanctuary(effect, callee_function.module):
                continue
            rule = EFFECT_RULE.get(effect)
            if rule is not None and \
                    module_facts.suppressed(edge.line, rule):
                continue
            short = edge.callee.rsplit(".", 1)[-1]
            note = f"calls {short}()"
            if edge.via == "alias":
                note = (f"calls {short}() through an alias bound at "
                        f"line {edge.bind_line}")
            elif edge.via == "partial":
                note = (f"calls {short}() through functools.partial "
                        f"bound at line {edge.bind_line}")
            elif edge.via == "decorator":
                note = f"applies {short} as a decorator"
            caller_effects[effect] = Cause(
                kind="edge", line=edge.line, col=edge.col, note=note,
                callee=edge.callee, snippet=edge.snippet)
            gained = True
        return gained

    # -- witnesses ----------------------------------------------------------

    def cause(self, qname: str, effect: str) -> Optional[Cause]:
        return self.effects.get(qname, {}).get(effect)

    def chain(self, qname: str,
              effect: str) -> List[Tuple[str, str, int, str]]:
        """The cause chain for (function, effect), innermost last:
        ``(function qname, display path, line, note)`` tuples."""
        steps: List[Tuple[str, str, int, str]] = []
        seen: Set[str] = set()
        current: Optional[str] = qname
        while current is not None and current not in seen:
            seen.add(current)
            cause = self.cause(current, effect)
            if cause is None:
                break
            function = self.project.functions[current]
            steps.append((current, function.path, cause.line, cause.note))
            current = cause.callee if cause.kind == "edge" else None
        return steps

    def root(self, qname: str, effect: str) -> Optional[Tuple[str, Cause]]:
        """The chain's origin: ``(function qname, intrinsic cause)``,
        or None when the chain is broken (cache corruption, cycles)."""
        seen: Set[str] = set()
        current = qname
        while current not in seen:
            seen.add(current)
            cause = self.cause(current, effect)
            if cause is None:
                return None
            if cause.kind == "intrinsic":
                return (current, cause)
            current = cause.callee
        return None
