"""Findings: what the static analyzer and the runtime sanitizer report.

A :class:`Finding` is one diagnosed hazard, static (a source location
plus a rule id) or dynamic (a runtime scenario plus a rule id).  Both
producers feed the same rendering pipeline, so ``repro lint`` emits one
deterministic document whether it ran rules over the AST, scenarios
under the sanitizer, or both.

Determinism contract: every renderer in this module is a pure function
of its finding list.  Findings are totally ordered by
``(path, line, col, rule, message)``, JSON is rendered with sorted keys
and a trailing newline, and fingerprints hash only stable inputs (never
absolute paths, ids, or timestamps) — so two runs over the same tree
produce byte-identical output, which CI diffs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterable, List, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Ordering used everywhere a finding list is rendered or compared.
_SORT_KEY = ("path", "line", "col", "rule", "message")


@dataclass(frozen=True)
class WitnessStep:
    """One hop of an interprocedural finding's witness call chain."""

    function: str
    path: str
    line: int
    note: str


@dataclass(frozen=True)
class Finding:
    """One diagnosed hazard."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line (static) or a stable scenario label
    #: (dynamic); feeds the fingerprint, so baselines survive pure line
    #: drift.
    snippet: str = ""
    #: Stable identity for baselining; assigned by :func:`fingerprinted`.
    fingerprint: str = ""
    #: True when a committed baseline grandfathers this finding.
    baselined: bool = False
    #: Interprocedural findings carry the call chain from the reported
    #: function down to the effect's origin.  Deliberately excluded
    #: from both the fingerprint and the sort key: a baselined finding
    #: must survive unrelated callee edits that only reshape the path.
    witness: Tuple[WitnessStep, ...] = ()

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def fingerprinted(findings: Iterable[Finding]) -> List[Finding]:
    """Sorted findings with stable fingerprints assigned.

    The fingerprint hashes ``(path, rule, snippet, occurrence-index)``:
    line numbers are deliberately excluded so a baseline entry survives
    unrelated edits above it, while the occurrence index keeps repeated
    identical lines in one file distinct.
    """
    ordered = sort_findings(findings)
    seen: Dict[Tuple[str, str, str], int] = {}
    result: List[Finding] = []
    for finding in ordered:
        key = (finding.path, finding.rule, finding.snippet)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.path}::{finding.rule}::{finding.snippet}::{index}"
            .encode("utf-8")).hexdigest()[:16]
        result.append(replace(finding, fingerprint=digest))
    return result


@dataclass
class Report:
    """A finding list plus the run's bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    #: Paths (or scenario labels) that were analyzed.
    analyzed: List[str] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def to_dict(self) -> Dict[str, Any]:
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "tool": "repro-lint",
            "analyzed": sorted(self.analyzed),
            "findings": [asdict(f) for f in sort_findings(self.findings)],
            "summary": {
                "total": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.findings) - len(self.new_findings),
                "by_rule": by_rule,
            },
        }


def render_json(report: Report) -> str:
    """The canonical machine-readable document (byte-reproducible)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"


def render_text(report: Report) -> str:
    """Human-oriented one-line-per-finding text (witness chains are
    indented under their finding)."""
    lines = []
    for finding in sort_findings(report.findings):
        tag = " (baselined)" if finding.baselined else ""
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.severity}: {finding.message}{tag}")
        for step in finding.witness:
            lines.append(f"    via {step.function} "
                         f"({step.path}:{step.line}): {step.note}")
    summary = report.to_dict()["summary"]
    lines.append(f"{summary['total']} finding(s): {summary['new']} new, "
                 f"{summary['baselined']} baselined")
    return "\n".join(lines) + "\n"


def render_sarif(report: Report,
                 rule_index: Dict[str, Tuple[str, str]]) -> str:
    """A minimal SARIF 2.1.0 document (CI code-scanning artifact).

    ``rule_index`` maps rule id -> (severity, description) for the
    driver's rule table; rules seen only in findings fall back to their
    finding's severity.
    """
    levels = {SEVERITY_ERROR: "error", SEVERITY_WARNING: "warning"}
    rules = []
    for rule_id in sorted(rule_index):
        severity, description = rule_index[rule_id]
        rules.append({
            "id": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {
                "level": levels.get(severity, "warning")},
        })
    results = []
    for finding in sort_findings(report.findings):
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": levels.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "partialFingerprints": {"reproLint/v1": finding.fingerprint},
            "baselineState": "unchanged" if finding.baselined else "new",
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line),
                               "startColumn": max(1, finding.col)},
                },
            }],
        }
        if finding.witness:
            result["relatedLocations"] = [{
                "message": {"text": f"{step.function}: {step.note}"},
                "physicalLocation": {
                    "artifactLocation": {"uri": step.path},
                    "region": {"startLine": max(1, step.line)},
                },
            } for step in finding.witness]
        results.append(result)
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "version": "1.0.0",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
