"""The rule engine: AST visiting, suppressions, and the rule registry.

Rules are small classes registered with :func:`register`; the
:class:`Analyzer` parses each file once, annotates the tree with parent
links and an import-alias table, and hands a :class:`LintContext` to
every applicable rule.  Findings flow through inline suppressions
(``# lint: disable=RULE`` on the offending line, or
``# lint: disable-file=RULE`` anywhere in the file) before they are
fingerprinted and, optionally, filtered against a committed baseline
(:mod:`repro.analysis.baseline`).

Determinism: files are analyzed in sorted path order, rules run in
registration order within a file, and the resulting finding list is
totally ordered by :func:`repro.analysis.findings.sort_findings` — the
engine never consults wall-clock time, environment, or hash order that
could vary between runs.
"""

from __future__ import annotations

import ast
import os
import re
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # circular at runtime (iprules -> rules -> engine)
    from repro.analysis.callgraph import Project
    from repro.analysis.iprules import ProjectRule

from repro.analysis.findings import (
    Finding,
    Report,
    fingerprinted,
    sort_findings,
)

#: Rule lists are comma-separated ids; anything after the list (a
#: justification, ``- why this is fine``) is ignored.
_RULE_LIST = r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
_DISABLE_LINE_RE = re.compile(r"#\s*lint:\s*disable=" + _RULE_LIST)
_DISABLE_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=" + _RULE_LIST)


def _parse_rule_list(text: str) -> Set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


class LintContext:
    """Everything a rule needs to inspect one module."""

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module):
        #: Display path (posix, relative to the analysis invocation).
        self.path = path
        #: Dotted module name inferred from the package layout (used by
        #: scope-limited rules, e.g. "only repro.sim / repro.core").
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local name -> fully qualified import target ("t" -> "time",
        #: "dt" -> "datetime.datetime", ...).
        self.aliases: Dict[str, str] = {}
        #: names rebound by assignment/def at module level; qualified
        #: name resolution refuses these (a local ``time = ...`` shadows
        #: the module).
        self.shadowed: Set[str] = set()
        #: line -> the full line span of the statement header it belongs
        #: to (decorators + def/class signature), so a suppression
        #: comment anywhere on a decorated ``def`` header suppresses
        #: findings attributed to any of its lines.
        self._header_spans: Dict[int, Tuple[int, ...]] = {}
        self._collect_imports()
        self._link_parents()
        self._collect_header_spans()

    # -- tree preparation ---------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.asname is not None:
                        self.aliases[item.asname] = item.name
                    else:
                        head = item.name.split(".", 1)[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: targets stay local
                for item in node.names:
                    local = item.asname or item.name
                    self.aliases[local] = f"{node.module}.{item.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.shadowed.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.shadowed.add(target.id)

    def _link_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._lint_parent = node  # type: ignore[attr-defined]

    def _collect_header_spans(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            start = node.lineno
            for decorator in node.decorator_list:
                start = min(start, decorator.lineno)
            end = node.body[0].lineno - 1 if node.body else node.lineno
            end = max(end, node.lineno)
            if end <= start:
                continue
            span = tuple(range(start, end + 1))
            for lineno in span:
                self._header_spans.setdefault(lineno, span)

    # -- helpers rules call -------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_lint_parent", None)

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``node`` (a Name/Attribute chain) through the import
        table to a dotted name, or None when it is not statically
        resolvable (calls on computed objects, shadowed names)."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = current.id
        resolved = self.aliases.get(head)
        if resolved is None:
            # Unimported bare name: builtins resolve to themselves
            # unless shadowed by a module-level binding.
            if head in self.shadowed:
                return None
            resolved = head
        parts.append(resolved)
        return ".".join(reversed(parts))

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    # -- suppressions -------------------------------------------------------

    def suppressed_rules(self, lineno: int) -> Set[str]:
        """Inline suppressions effective for ``lineno``.

        Lookup is normalized over statement header spans: a finding on
        a decorator line honours a ``# lint: disable=`` comment on the
        decorated ``def`` line (and vice versa) — the header is one
        statement even though it covers several physical lines.
        """
        rules: Set[str] = set()
        for span_line in self._header_spans.get(lineno, (lineno,)):
            if 1 <= span_line <= len(self.lines):
                match = _DISABLE_LINE_RE.search(self.lines[span_line - 1])
                if match:
                    rules |= _parse_rule_list(match.group(1))
        return rules

    def file_suppressed_rules(self) -> Set[str]:
        rules: Set[str] = set()
        for line in self.lines:
            match = _DISABLE_FILE_RE.search(line)
            if match:
                rules |= _parse_rule_list(match.group(1))
        return rules


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``severity``/``description`` and implement
    :meth:`check`; :meth:`applies_to` scopes a rule to part of the tree
    (by dotted module name).
    """

    id = "RULE000"
    severity = "error"
    description = ""

    def applies_to(self, module: str) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - generator template

    def finding(self, ctx: LintContext, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=self.id, severity=self.severity, path=ctx.path,
                       line=lineno, col=col, message=message,
                       snippet=ctx.line_text(lineno))


#: The default rule registry, in registration order.
RULES: List[Rule] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    RULES.append(cls())
    return cls


def rule_index(rules: Optional[Sequence[Rule]] = None
               ) -> Dict[str, Tuple[str, str]]:
    """rule id -> (severity, description), for SARIF and docs."""
    return {rule.id: (rule.severity, rule.description)
            for rule in (RULES if rules is None else rules)}


class Analyzer:
    """Runs a rule set over files / directory trees.

    :meth:`analyze_file` / :meth:`analyze_source` stay strictly
    per-file (they power unit tests and editor integrations);
    :meth:`analyze_paths` additionally assembles the whole-program
    view (:mod:`repro.analysis.symbols` / ``callgraph`` / ``dataflow``)
    and runs the interprocedural rule pack over it.  ``cache_dir``
    enables the content-hash facts cache; ``project_rules=()``
    disables the interprocedural pass.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 project_rules: Optional[Sequence["ProjectRule"]] = None,
                 cache_dir: Optional[str] = None):
        self.rules: List[Rule] = list(RULES if rules is None else rules)
        if project_rules is None:
            from repro.analysis.iprules import PROJECT_RULES
            project_rules = PROJECT_RULES
        self.project_rules: List["ProjectRule"] = list(project_rules)
        self.cache_dir = cache_dir

    # -- file discovery -----------------------------------------------------

    @staticmethod
    def _iter_python_files(path: str) -> List[str]:
        if os.path.isfile(path):
            return [path]
        found: List[str] = []
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
        return found

    @staticmethod
    def _module_name(file_path: str) -> str:
        """Dotted module inferred by walking up through ``__init__.py``
        package directories (so ``src/repro/core/errors.py`` becomes
        ``repro.core.errors`` regardless of where the tree lives)."""
        parts = [os.path.splitext(os.path.basename(file_path))[0]]
        directory = os.path.dirname(os.path.abspath(file_path))
        while os.path.isfile(os.path.join(directory, "__init__.py")):
            parts.append(os.path.basename(directory))
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
        module = ".".join(reversed(parts))
        if module.endswith(".__init__"):
            module = module[:-len(".__init__")]
        return module

    @staticmethod
    def _display_path(file_path: str) -> str:
        absolute = os.path.abspath(file_path)
        cwd = os.getcwd()
        if absolute.startswith(cwd + os.sep):
            absolute = absolute[len(cwd) + 1:]
        return absolute.replace(os.sep, "/")

    # -- analysis -----------------------------------------------------------

    def analyze_source(self, source: str, path: str = "<memory>",
                       module: str = "") -> List[Finding]:
        """Run the rules over one source string (suppression-filtered,
        unsorted, not yet fingerprinted)."""
        tree = ast.parse(source, filename=path)
        ctx = LintContext(path=path, module=module or "<memory>",
                          source=source, tree=tree)
        file_suppressed = ctx.file_suppressed_rules()
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.id in file_suppressed:
                continue
            if not rule.applies_to(ctx.module):
                continue
            for finding in rule.check(ctx):
                if rule.id in ctx.suppressed_rules(finding.line):
                    continue
                findings.append(finding)
        return findings

    def analyze_file(self, file_path: str) -> List[Finding]:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.analyze_source(
            source, path=self._display_path(file_path),
            module=self._module_name(file_path))

    def analyze_paths(self, paths: Iterable[str]) -> Report:
        """Analyze files/trees; returns a fingerprinted, sorted report.

        Runs the per-function rules file by file, then the
        interprocedural pack over the project assembled from the same
        files.
        """
        files: List[str] = []
        for path in paths:
            files.extend(self._iter_python_files(path))
        files = sorted(set(files))
        findings: List[Finding] = []
        analyzed: List[str] = []
        for file_path in files:
            analyzed.append(self._display_path(file_path))
            findings.extend(self.analyze_file(file_path))
        if self.project_rules:
            from repro.analysis.dataflow import Dataflow
            project = self.build_project(files)
            flow = Dataflow(project)
            for rule in self.project_rules:
                findings.extend(rule.check(project, flow))
        report = Report(findings=fingerprinted(findings), analyzed=analyzed)
        report.findings = sort_findings(report.findings)
        return report

    def build_project(self, paths: Iterable[str]) -> "Project":
        """Assemble the whole-program view (symbol tables + call graph)
        for the given files/trees, consulting the facts cache when
        ``cache_dir`` is set.  Facts are re-extracted whenever the
        source hash *or* the display path changed, so cache entries
        never leak stale paths into findings."""
        from repro.analysis.callgraph import Project
        from repro.analysis.summaries import FactsCache, source_digest
        from repro.analysis.symbols import ModuleFacts, extract_module
        files: List[str] = []
        for path in paths:
            files.extend(self._iter_python_files(path))
        # Kept on the analyzer so callers can observe hit/miss counts
        # (the cache-equivalence CI check asserts warm runs never parse).
        cache = self.cache = FactsCache(self.cache_dir)
        modules: Dict[str, ModuleFacts] = {}
        for file_path in sorted(set(files)):
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = self._module_name(file_path)
            display = self._display_path(file_path)
            digest = source_digest(source)
            facts = cache.load(module, digest, display)
            if facts is None or facts.path != display:
                try:
                    tree = ast.parse(source, filename=display)
                except SyntaxError:
                    continue
                ctx = LintContext(path=display, module=module,
                                  source=source, tree=tree)
                facts = extract_module(ctx)
                cache.store(module, digest, facts)
            # Module-name collisions (two loose fixture files sharing a
            # stem): first in sorted path order wins, deterministically.
            modules.setdefault(facts.module, facts)
        return Project(modules)
