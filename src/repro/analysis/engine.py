"""The rule engine: AST visiting, suppressions, and the rule registry.

Rules are small classes registered with :func:`register`; the
:class:`Analyzer` parses each file once, annotates the tree with parent
links and an import-alias table, and hands a :class:`LintContext` to
every applicable rule.  Findings flow through inline suppressions
(``# lint: disable=RULE`` on the offending line, or
``# lint: disable-file=RULE`` anywhere in the file) before they are
fingerprinted and, optionally, filtered against a committed baseline
(:mod:`repro.analysis.baseline`).

Determinism: files are analyzed in sorted path order, rules run in
registration order within a file, and the resulting finding list is
totally ordered by :func:`repro.analysis.findings.sort_findings` — the
engine never consults wall-clock time, environment, or hash order that
could vary between runs.
"""

from __future__ import annotations

import ast
import os
import re
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.analysis.findings import (
    Finding,
    Report,
    fingerprinted,
    sort_findings,
)

#: Rule lists are comma-separated ids; anything after the list (a
#: justification, ``- why this is fine``) is ignored.
_RULE_LIST = r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
_DISABLE_LINE_RE = re.compile(r"#\s*lint:\s*disable=" + _RULE_LIST)
_DISABLE_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=" + _RULE_LIST)


def _parse_rule_list(text: str) -> Set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


class LintContext:
    """Everything a rule needs to inspect one module."""

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module):
        #: Display path (posix, relative to the analysis invocation).
        self.path = path
        #: Dotted module name inferred from the package layout (used by
        #: scope-limited rules, e.g. "only repro.sim / repro.core").
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local name -> fully qualified import target ("t" -> "time",
        #: "dt" -> "datetime.datetime", ...).
        self.aliases: Dict[str, str] = {}
        #: names rebound by assignment/def at module level; qualified
        #: name resolution refuses these (a local ``time = ...`` shadows
        #: the module).
        self.shadowed: Set[str] = set()
        self._collect_imports()
        self._link_parents()

    # -- tree preparation ---------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.asname is not None:
                        self.aliases[item.asname] = item.name
                    else:
                        head = item.name.split(".", 1)[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: targets stay local
                for item in node.names:
                    local = item.asname or item.name
                    self.aliases[local] = f"{node.module}.{item.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.shadowed.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.shadowed.add(target.id)

    def _link_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._lint_parent = node  # type: ignore[attr-defined]

    # -- helpers rules call -------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_lint_parent", None)

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``node`` (a Name/Attribute chain) through the import
        table to a dotted name, or None when it is not statically
        resolvable (calls on computed objects, shadowed names)."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = current.id
        resolved = self.aliases.get(head)
        if resolved is None:
            # Unimported bare name: builtins resolve to themselves
            # unless shadowed by a module-level binding.
            if head in self.shadowed:
                return None
            resolved = head
        parts.append(resolved)
        return ".".join(reversed(parts))

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    # -- suppressions -------------------------------------------------------

    def suppressed_rules(self, lineno: int) -> Set[str]:
        rules: Set[str] = set()
        if 1 <= lineno <= len(self.lines):
            match = _DISABLE_LINE_RE.search(self.lines[lineno - 1])
            if match:
                rules |= _parse_rule_list(match.group(1))
        return rules

    def file_suppressed_rules(self) -> Set[str]:
        rules: Set[str] = set()
        for line in self.lines:
            match = _DISABLE_FILE_RE.search(line)
            if match:
                rules |= _parse_rule_list(match.group(1))
        return rules


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``severity``/``description`` and implement
    :meth:`check`; :meth:`applies_to` scopes a rule to part of the tree
    (by dotted module name).
    """

    id = "RULE000"
    severity = "error"
    description = ""

    def applies_to(self, module: str) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - generator template

    def finding(self, ctx: LintContext, node: ast.AST,
                message: str) -> Finding:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=self.id, severity=self.severity, path=ctx.path,
                       line=lineno, col=col, message=message,
                       snippet=ctx.line_text(lineno))


#: The default rule registry, in registration order.
RULES: List[Rule] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    RULES.append(cls())
    return cls


def rule_index(rules: Optional[Sequence[Rule]] = None
               ) -> Dict[str, Tuple[str, str]]:
    """rule id -> (severity, description), for SARIF and docs."""
    return {rule.id: (rule.severity, rule.description)
            for rule in (RULES if rules is None else rules)}


class Analyzer:
    """Runs a rule set over files / directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules: List[Rule] = list(RULES if rules is None else rules)

    # -- file discovery -----------------------------------------------------

    @staticmethod
    def _iter_python_files(path: str) -> List[str]:
        if os.path.isfile(path):
            return [path]
        found: List[str] = []
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
        return found

    @staticmethod
    def _module_name(file_path: str) -> str:
        """Dotted module inferred by walking up through ``__init__.py``
        package directories (so ``src/repro/core/errors.py`` becomes
        ``repro.core.errors`` regardless of where the tree lives)."""
        parts = [os.path.splitext(os.path.basename(file_path))[0]]
        directory = os.path.dirname(os.path.abspath(file_path))
        while os.path.isfile(os.path.join(directory, "__init__.py")):
            parts.append(os.path.basename(directory))
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
        module = ".".join(reversed(parts))
        if module.endswith(".__init__"):
            module = module[:-len(".__init__")]
        return module

    @staticmethod
    def _display_path(file_path: str) -> str:
        absolute = os.path.abspath(file_path)
        cwd = os.getcwd()
        if absolute.startswith(cwd + os.sep):
            absolute = absolute[len(cwd) + 1:]
        return absolute.replace(os.sep, "/")

    # -- analysis -----------------------------------------------------------

    def analyze_source(self, source: str, path: str = "<memory>",
                       module: str = "") -> List[Finding]:
        """Run the rules over one source string (suppression-filtered,
        unsorted, not yet fingerprinted)."""
        tree = ast.parse(source, filename=path)
        ctx = LintContext(path=path, module=module or "<memory>",
                          source=source, tree=tree)
        file_suppressed = ctx.file_suppressed_rules()
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.id in file_suppressed:
                continue
            if not rule.applies_to(ctx.module):
                continue
            for finding in rule.check(ctx):
                if rule.id in ctx.suppressed_rules(finding.line):
                    continue
                findings.append(finding)
        return findings

    def analyze_file(self, file_path: str) -> List[Finding]:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.analyze_source(
            source, path=self._display_path(file_path),
            module=self._module_name(file_path))

    def analyze_paths(self, paths: Iterable[str]) -> Report:
        """Analyze files/trees; returns a fingerprinted, sorted report."""
        files: List[str] = []
        for path in paths:
            files.extend(self._iter_python_files(path))
        files = sorted(set(files))
        findings: List[Finding] = []
        analyzed: List[str] = []
        for file_path in files:
            analyzed.append(self._display_path(file_path))
            findings.extend(self.analyze_file(file_path))
        report = Report(findings=fingerprinted(findings), analyzed=analyzed)
        report.findings = sort_findings(report.findings)
        return report
