"""The module-qualified call graph over extracted :class:`ModuleFacts`.

Resolution is a pure function of the facts: dotted references are
chased through each module's import-alias table (so package re-exports
like ``repro.obs.Tracer`` land on ``repro.obs.tracing.Tracer``), method
calls are resolved along a best-effort MRO over project classes, class
constructions resolve to the ``__init__`` actually inherited, and
everything else becomes an honest ``unknown``-kind edge — the dataflow
pass treats unknown callees as effect-free rather than guessing.

Determinism: nodes and adjacency lists are sorted wherever an order is
observable; the dot/json exports are byte-stable pure functions of the
graph (CI uploads the json form as an artifact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.symbols import ClassFacts, FunctionFacts, ModuleFacts

#: Bare names that resolve to builtins with analyzer-known behaviour;
#: any other dot-free external target is an unknown callee.
_KNOWN_BUILTINS = frozenset({
    "input", "print", "len", "sorted", "min", "max", "sum", "abs",
    "range", "enumerate", "zip", "map", "filter", "repr", "str", "int",
    "float", "bool", "bytes", "bytearray", "list", "dict", "set",
    "tuple", "frozenset", "type", "isinstance", "issubclass", "getattr",
    "setattr", "hasattr", "iter", "next", "open", "id", "hash", "round",
    "divmod", "vars", "super", "format", "ord", "chr", "any", "all",
    "reversed", "memoryview", "slice", "object", "callable",
})

_RESOLVE_DEPTH_LIMIT = 16


@dataclass(frozen=True)
class Edge:
    """One call edge out of a function."""

    line: int
    col: int
    #: ``"call"`` (project function), ``"external"`` (classified
    #: non-project target), or ``"unknown"`` (honest unresolved).
    kind: str
    #: Callee function qname / external dotted target / raw text.
    callee: str
    #: ``""`` | ``"alias"`` | ``"partial"`` | ``"decorator"``.
    via: str = ""
    bind_line: int = 0
    nargs: int = 0
    snippet: str = ""


class Project:
    """The whole-program view: facts, indexes, and the call graph."""

    def __init__(self, modules: Mapping[str, ModuleFacts]) -> None:
        #: module name -> facts, insertion in sorted module order.
        self.modules: Dict[str, ModuleFacts] = {
            name: modules[name] for name in sorted(modules)}
        self.functions: Dict[str, FunctionFacts] = {}
        self.classes: Dict[str, ClassFacts] = {}
        for facts in self.modules.values():
            for function in facts.functions:
                self.functions[function.qname] = function
            for klass in facts.classes:
                self.classes[klass.qname] = klass
        #: caller qname -> edges in call-site order.
        self.graph: Dict[str, Tuple[Edge, ...]] = {}
        #: callee qname -> sorted caller qnames (filled by build()).
        self.callers: Dict[str, Tuple[str, ...]] = {}
        self._resolve_cache: Dict[str, Tuple[str, str]] = {}
        self._build()

    # -- name resolution ----------------------------------------------------

    def module_facts(self, qname: str) -> Optional[ModuleFacts]:
        function = self.functions.get(qname)
        if function is None:
            return None
        return self.modules.get(function.module)

    def resolve(self, dotted: str) -> Tuple[str, str]:
        """Resolve a dotted reference to ``(kind, name)`` where kind is
        ``"function"``, ``"class"``, or ``"external"``.

        Chases package re-exports through module alias tables with a
        depth cap; anything unresolved is external (by its final
        normalized spelling).
        """
        cached = self._resolve_cache.get(dotted)
        if cached is not None:
            return cached
        result = self._resolve_uncached(dotted)
        self._resolve_cache[dotted] = result
        return result

    def _resolve_uncached(self, dotted: str) -> Tuple[str, str]:
        current = dotted
        for _ in range(_RESOLVE_DEPTH_LIMIT):
            if current in self.functions:
                return ("function", current)
            if current in self.classes:
                return ("class", current)
            if "." not in current:
                break
            prefix, leaf = current.rsplit(".", 1)
            # Method reference spelled through the class.
            if prefix in self.classes:
                method = self.resolve_method(prefix, leaf)
                if method is not None:
                    return ("function", method)
                return ("external", current)
            # Re-export: prefix is a project module aliasing the leaf.
            module = self.modules.get(prefix)
            if module is not None:
                alias = module.aliases.get(leaf)
                if alias is not None and alias != current:
                    current = alias
                    continue
                bound = module.module_aliases.get(leaf)
                if bound is not None and bound[0] != current:
                    current = bound[0]
                    continue
            break
        return ("external", current)

    def mro(self, class_qname: str) -> List[str]:
        """Best-effort linearization: the class then its (project)
        bases depth-first, left-to-right, deduplicated."""
        order: List[str] = []
        seen: Set[str] = set()
        stack: List[str] = [class_qname]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            klass = self.classes.get(name)
            if klass is None:
                kind, resolved = self.resolve(name)
                if kind != "class":
                    continue
                name = resolved
                if name in seen:
                    continue
                seen.add(name)
                klass = self.classes[name]
            order.append(name)
            stack = list(klass.bases) + stack
        return order

    def resolve_method(self, class_qname: str,
                       method: str) -> Optional[str]:
        for klass in self.mro(class_qname):
            candidate = f"{klass}.{method}"
            if candidate in self.functions:
                return candidate
            facts = self.classes.get(klass)
            if facts is not None:
                alias = facts.attr_aliases.get(method)
                if alias is not None:
                    kind, resolved = self.resolve(alias[0])
                    if kind == "function":
                        return resolved
        return None

    def class_transient(self, class_qname: str) -> str:
        """The error taxonomy's ``transient`` marker along the MRO:
        ``"true"``/``"false"``/``"none"`` or ``"unset"``."""
        for klass in self.mro(class_qname):
            facts = self.classes.get(klass)
            if facts is not None and facts.transient != "unset":
                return facts.transient
        return "unset"

    # -- graph construction -------------------------------------------------

    def _build(self) -> None:
        for qname in sorted(self.functions):
            function = self.functions[qname]
            edges = [self._edge_for(call.line, call.col, call.kind,
                                    call.target, call.via, call.bind_line,
                                    call.nargs, call.snippet)
                     for call in function.calls]
            self.graph[qname] = tuple(edges)
        reverse: Dict[str, Set[str]] = {}
        for caller, edges in self.graph.items():
            for edge in edges:
                if edge.kind == "call":
                    reverse.setdefault(edge.callee, set()).add(caller)
        self.callers = {callee: tuple(sorted(callers))
                        for callee, callers in sorted(reverse.items())}

    def _edge_for(self, line: int, col: int, kind: str, target: str,
                  via: str, bind_line: int, nargs: int,
                  snippet: str) -> Edge:
        if kind == "unknown":
            return Edge(line, col, "unknown", target, via, bind_line,
                        nargs, snippet)
        if kind == "method":
            class_qname, method = target.rsplit(".", 1)
            resolved_kind, resolved = self.resolve(class_qname)
            if resolved_kind == "class":
                found = self.resolve_method(resolved, method)
                if found is not None:
                    return Edge(line, col, "call", found, via, bind_line,
                                nargs, snippet)
            return Edge(line, col, "unknown", target, via, bind_line,
                        nargs, snippet)
        resolved_kind, resolved = self.resolve(target)
        if resolved_kind == "function":
            return Edge(line, col, "call", resolved, via, bind_line,
                        nargs, snippet)
        if resolved_kind == "class":
            init = self.resolve_method(resolved, "__init__")
            if init is not None:
                return Edge(line, col, "call", init, via, bind_line,
                            nargs, snippet)
            return Edge(line, col, "external", f"{resolved}()", via,
                        bind_line, nargs, snippet)
        if "." not in resolved and resolved not in _KNOWN_BUILTINS:
            return Edge(line, col, "unknown", resolved, via, bind_line,
                        nargs, snippet)
        return Edge(line, col, "external", resolved, via, bind_line,
                    nargs, snippet)

    # -- reachability (WIRE001 and friends) ---------------------------------

    def reaches(self, roots: Iterable[str],
                reverse: bool = False) -> Set[str]:
        """Functions transitively connected to ``roots`` along call
        edges — callees of roots (forward) or callers of roots
        (``reverse=True``); includes the roots themselves."""
        seen: Set[str] = set()
        stack = sorted(set(roots))
        while stack:
            qname = stack.pop()
            if qname in seen or qname not in self.functions:
                continue
            seen.add(qname)
            if reverse:
                stack.extend(self.callers.get(qname, ()))
            else:
                stack.extend(edge.callee for edge in self.graph[qname]
                             if edge.kind == "call")
        return seen


# -- export -----------------------------------------------------------------


def export_json(project: Project,
                effects: Optional[Mapping[str, Mapping[str, object]]] = None
                ) -> str:
    """The canonical graph document (sorted keys, trailing newline)."""
    nodes = []
    for qname in sorted(project.functions):
        function = project.functions[qname]
        node: Dict[str, object] = {
            "function": qname,
            "module": function.module,
            "path": function.path,
            "line": function.line,
        }
        if effects is not None:
            node["effects"] = sorted(effects.get(qname, {}))
        nodes.append(node)
    edges = []
    for caller in sorted(project.graph):
        for edge in project.graph[caller]:
            entry: Dict[str, object] = {
                "from": caller,
                "to": edge.callee,
                "kind": edge.kind,
                "line": edge.line,
            }
            if edge.via:
                entry["via"] = edge.via
            edges.append(entry)
    edges.sort(key=lambda e: (str(e["from"]), int(str(e["line"])),
                              str(e["to"]), str(e["kind"])))
    document = {
        "version": 1,
        "tool": "repro-lint-graph",
        "nodes": nodes,
        "edges": edges,
        "summary": {
            "functions": len(nodes),
            "call_edges": sum(1 for e in edges if e["kind"] == "call"),
            "external_edges": sum(1 for e in edges
                                  if e["kind"] == "external"),
            "unknown_edges": sum(1 for e in edges
                                 if e["kind"] == "unknown"),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def export_dot(project: Project,
               effects: Optional[Mapping[str, Mapping[str, object]]] = None
               ) -> str:
    """A Graphviz rendering of the project-internal call graph.

    External/unknown callees are collapsed away; unknown-callee edges
    are kept (dashed) so blind spots stay visible in review.
    """
    def quote(name: str) -> str:
        return '"' + name.replace('"', '\\"') + '"'

    lines = ["digraph callgraph {", "  rankdir=LR;",
             '  node [shape=box, fontsize=10];']
    for qname in sorted(project.functions):
        attrs = []
        if effects is not None and effects.get(qname):
            tags = ",".join(sorted(effects[qname]))
            attrs.append(f'xlabel="{tags}"')
        attrs_text = (" [" + ", ".join(attrs) + "]") if attrs else ""
        lines.append(f"  {quote(qname)}{attrs_text};")
    for caller in sorted(project.graph):
        seen: Set[Tuple[str, str]] = set()
        for edge in project.graph[caller]:
            if edge.kind == "external":
                continue
            style = ' [style=dashed, label="?"]' \
                if edge.kind == "unknown" else ""
            key = (edge.callee, edge.kind)
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {quote(caller)} -> {quote(edge.callee)}"
                         f"{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"
