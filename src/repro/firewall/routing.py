"""Agent registry and partial-name resolution (paper section 3.2).

Virtual machines register the agents running inside them so the firewall
can locate them.  Resolution implements the paper's matching rules for
partially-specified addresses:

- name only → any instance of that name ("useful if one wishes to
  establish communication with a broader class of agents like service
  agents");
- instance only → that exact entity, whatever its name;
- principal left out → *"only two principals are considered as valid;
  the local system, or the principal of the mobile agent"* (the sender).

When several registrations match, the oldest wins — deterministic, and
the natural choice for service classes where any representative will do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import AgentNotFoundError
from repro.core.identity import SYSTEM_PRINCIPAL, AgentId
from repro.core.uri import AgentUri
from repro.firewall.message import Message


@dataclass
class Registration:
    """One agent known to the local firewall."""

    agent_id: AgentId
    principal: str
    vm_name: str
    deliver_fn: Callable[[Message], bool]
    start_time: float
    sequence: int = 0
    process: Optional[object] = None
    paused: bool = False
    meta: Dict[str, str] = field(default_factory=dict)
    _paused_backlog: List[Message] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.agent_id.name

    @property
    def instance(self) -> str:
        return self.agent_id.instance

    def deliver(self, message: Message) -> bool:
        if self.paused:
            self._paused_backlog.append(message)
            return True
        return self.deliver_fn(message)

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> int:
        """Un-pause and flush the backlog; returns messages flushed."""
        self.paused = False
        backlog, self._paused_backlog = self._paused_backlog, []
        for message in backlog:
            self.deliver_fn(message)
        return len(backlog)

    def uri(self, host: Optional[str] = None) -> AgentUri:
        return AgentUri(host=host, principal=self.principal,
                        name=self.name, instance=self.instance)


class Registry:
    """All agents currently registered at one firewall."""

    def __init__(self):
        self._by_instance: Dict[str, Registration] = {}
        self._sequence = 0

    def add(self, registration: Registration) -> Registration:
        key = registration.instance
        if key in self._by_instance:
            raise ValueError(f"instance {key!r} already registered")
        self._sequence += 1
        registration.sequence = self._sequence
        self._by_instance[key] = registration
        return registration

    def remove(self, agent_id: AgentId) -> Optional[Registration]:
        return self._by_instance.pop(agent_id.instance, None)

    def by_instance(self, instance: str) -> Optional[Registration]:
        return self._by_instance.get(instance.lower())

    def all(self) -> List[Registration]:
        return sorted(self._by_instance.values(), key=lambda r: r.sequence)

    def __len__(self) -> int:
        return len(self._by_instance)

    def matches(self, target: AgentUri,
                sender_principal: Optional[str]) -> List[Registration]:
        """Registrations selected by a (possibly partial) local address."""
        found = []
        for registration in self.all():
            if not target.matches_agent(registration.name,
                                        registration.instance,
                                        registration.principal):
                continue
            if target.principal is None:
                # The two-valid-principals rule.
                valid = {SYSTEM_PRINCIPAL}
                if sender_principal is not None:
                    valid.add(sender_principal)
                if registration.principal not in valid:
                    continue
            found.append(registration)
        return found

    def resolve_one(self, target: AgentUri,
                    sender_principal: Optional[str]) -> Registration:
        """The single registration a message should go to (oldest match)."""
        found = self.matches(target, sender_principal)
        if not found:
            raise AgentNotFoundError(f"no agent matching {target}")
        return found[0]
