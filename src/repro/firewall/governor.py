"""The governor: per-principal admission control for one firewall.

The paper's firewall is a reference monitor — it authenticates agents
and enforces *access* rights — but access control alone does not protect
a host from a well-behaved principal that is simply too hot.  The
governor adds the *resource* half of host protection: every message and
every agent arrival passes an admission check against per-principal
quotas before it may consume the host's queues, VMs, or cabinet.

Quotas (:class:`QuotaSpec`) cover the four resources a hot principal
can exhaust:

- **message rate** — a deterministic, virtual-time
  :class:`~repro.core.limits.TokenBucket` per principal;
- **bytes in flight** — encoded bytes the principal currently has
  parked in this firewall's pending queue;
- **resident agents** — live registrations owned by the principal;
- **cabinet bytes** — encoded bytes stored in ag_cabinet drawers.

Rejections raise the *transient* :class:`~repro.core.errors.OverloadError`
family (:class:`QuotaExceededError`, :class:`QueueFullError`), so a
sender equipped with the PR 2 :class:`~repro.core.retry.RetryPolicy`
backs off and retries instead of failing outright — graceful
degradation, not crash-under-load.

The governor's configuration (:class:`GovernorConfig`) also carries the
bounded-queue limits and overflow policy for the firewall's pending
queue, the wire limits admission enforces, and the circuit-breaker
config installed on the simulated network.  It is attached to a
:class:`~repro.firewall.policy.Policy` (``policy.governor``) so resource
rules deploy through the same object as access rules.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.core import codec
from repro.core.errors import (
    BriefcaseTooLargeError,
    QuotaExceededError,
)
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core.limits import (
    BreakerConfig,
    QueueLimits,
    TokenBucket,
    WireLimits,
)

#: Overflow policies for bounded queues.
OVERFLOW_REJECT = "reject"
OVERFLOW_DROP_OLDEST = "drop-oldest"
OVERFLOW_SHED_PRIORITY = "shed-priority"
OVERFLOW_POLICIES = (OVERFLOW_REJECT, OVERFLOW_DROP_OLDEST,
                     OVERFLOW_SHED_PRIORITY)

#: Default retained dead-letter records per queue.
DEFAULT_DEAD_LETTER_LIMIT = 1000


@dataclass(frozen=True)
class QuotaSpec:
    """Per-principal resource budget (``None`` disables a dimension)."""

    #: Sustained message admissions per virtual second.
    messages_per_second: Optional[float] = None
    #: Bucket capacity (burst size); defaults to ``2 * rate`` (min 1).
    burst: Optional[float] = None
    #: Encoded bytes the principal may have parked in the pending queue.
    max_bytes_in_flight: Optional[int] = None
    #: Live agent registrations the principal may hold at once.
    max_resident_agents: Optional[int] = None
    #: Encoded bytes the principal may store in cabinet drawers.
    max_cabinet_bytes: Optional[int] = None

    def __post_init__(self):
        if self.messages_per_second is not None and \
                self.messages_per_second <= 0:
            raise ValueError("messages_per_second must be positive")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be at least 1")
        for name in ("max_bytes_in_flight", "max_resident_agents",
                     "max_cabinet_bytes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def bucket_capacity(self) -> float:
        if self.burst is not None:
            return float(self.burst)
        return max(1.0, 2.0 * (self.messages_per_second or 0.0))

    def to_config(self) -> dict:
        return asdict(self)

    @classmethod
    def from_config(cls, config: Optional[dict]) -> Optional["QuotaSpec"]:
        if config is None:
            return None
        fields = ("messages_per_second", "burst", "max_bytes_in_flight",
                  "max_resident_agents", "max_cabinet_bytes")
        return cls(**{f: config[f] for f in fields if f in config})


@dataclass
class GovernorConfig:
    """Everything a firewall needs to become an admission controller."""

    #: principal → explicit quota.
    quotas: Dict[str, QuotaSpec] = field(default_factory=dict)
    #: Quota applied to principals without an explicit entry.  The
    #: system principal is exempt from the default (infrastructure —
    #: VMs, services, admin — must not starve), but an *explicit* entry
    #: for it is honoured.
    default_quota: Optional[QuotaSpec] = None
    #: Bounds on the firewall's pending queue (None = unbounded).
    queue_limits: Optional[QueueLimits] = None
    #: What to do when the pending queue is full.
    overflow: str = OVERFLOW_REJECT
    #: Wire limits enforced at admission (None = codec defaults only).
    wire_limits: Optional[WireLimits] = None
    #: Circuit-breaker configuration for inter-host links.
    breaker: Optional[BreakerConfig] = None
    #: Retained dead letters per queue before eviction.
    dead_letter_limit: int = DEFAULT_DEAD_LETTER_LIMIT

    def __post_init__(self):
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r} "
                f"(have {list(OVERFLOW_POLICIES)})")
        if self.dead_letter_limit < 1:
            raise ValueError("dead_letter_limit must be positive")

    def set_quota(self, principal: str, spec: QuotaSpec) -> None:
        self.quotas[principal] = spec


class Governor:
    """One firewall's admission controller."""

    def __init__(self, kernel, host_name: str,
                 config: Optional[GovernorConfig] = None):
        self.kernel = kernel
        self.host_name = host_name
        self.config = config or GovernorConfig()
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        #: reason → rejection count (deterministic, sorted in snapshots).
        self.rejections: Dict[str, int] = {}

    # -- bookkeeping --------------------------------------------------------------

    def _reject(self, reason: str, principal: str, detail: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("fw.quota_rejected", host=self.host_name,
                                  principal=principal, reason=reason)
        raise QuotaExceededError(
            f"{principal!r} at {self.host_name}: {detail}")

    def quota_for(self, principal: str) -> Optional[QuotaSpec]:
        explicit = self.config.quotas.get(principal)
        if explicit is not None:
            return explicit
        if principal == SYSTEM_PRINCIPAL:
            return None
        return self.config.default_quota

    def _bucket_for(self, principal: str,
                    quota: QuotaSpec) -> Optional[TokenBucket]:
        if quota.messages_per_second is None:
            return None
        bucket = self._buckets.get(principal)
        if bucket is None:
            bucket = self._buckets[principal] = TokenBucket(
                rate=quota.messages_per_second,
                capacity=quota.bucket_capacity,
                now=self.kernel.now)
        return bucket

    # -- admission checks ----------------------------------------------------------

    def check_wire(self, wire_bytes: int) -> None:
        """Size gate for an encoded briefcase about to enter/leave."""
        limits = self.config.wire_limits
        if limits is not None and limits.max_encoded_bytes is not None and \
                wire_bytes > limits.max_encoded_bytes:
            raise BriefcaseTooLargeError(
                f"message of {wire_bytes} wire bytes exceeds the "
                f"{limits.max_encoded_bytes}-byte limit at "
                f"{self.host_name}")

    def admit_message(self, principal: str, wire_bytes: int,
                      pending=None) -> None:
        """Admit one message from ``principal`` or raise.

        Raises :class:`BriefcaseTooLargeError` (permanent) on a wire
        violation, :class:`QuotaExceededError` (transient) on rate or
        bytes-in-flight exhaustion.
        """
        self.check_wire(wire_bytes)
        quota = self.quota_for(principal)
        if quota is None:
            self.admitted += 1
            return
        bucket = self._bucket_for(principal, quota)
        if bucket is not None and \
                not bucket.try_take(1.0, now=self.kernel.now):
            self._reject("rate", principal,
                         f"message rate quota exhausted "
                         f"({quota.messages_per_second:g}/s)")
        if quota.max_bytes_in_flight is not None and pending is not None:
            in_flight = pending.bytes_for_principal(principal)
            if in_flight + wire_bytes > quota.max_bytes_in_flight:
                self._reject(
                    "bytes-in-flight", principal,
                    f"{in_flight} + {wire_bytes} parked bytes would "
                    f"exceed the {quota.max_bytes_in_flight}-byte quota")
        self.admitted += 1

    def admit_agent(self, principal: str, resident_count: int) -> None:
        """Admit one more resident agent registration or raise."""
        quota = self.quota_for(principal)
        if quota is None or quota.max_resident_agents is None:
            return
        if resident_count >= quota.max_resident_agents:
            self._reject(
                "resident-agents", principal,
                f"{resident_count} resident agents already "
                f"(quota {quota.max_resident_agents})")

    def admit_cabinet(self, principal: str, stored_bytes: int,
                      new_bytes: int) -> None:
        """Admit ``new_bytes`` more cabinet storage or raise."""
        quota = self.quota_for(principal)
        if quota is None or quota.max_cabinet_bytes is None:
            return
        if stored_bytes + new_bytes > quota.max_cabinet_bytes:
            self._reject(
                "cabinet-bytes", principal,
                f"{stored_bytes} + {new_bytes} cabinet bytes would "
                f"exceed the {quota.max_cabinet_bytes}-byte quota")

    def wire_size_of(self, briefcase) -> int:
        return codec.encoded_size(briefcase)

    # -- introspection --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic JSON-able state for the admin ``stat`` op."""
        buckets = {}
        for principal in sorted(self._buckets):
            bucket = self._buckets[principal]
            buckets[principal] = {
                "level": round(bucket.peek(self.kernel.now), 6),
                "capacity": bucket.capacity,
                "rate": bucket.rate,
            }
        return {
            "admitted": self.admitted,
            "rejections": dict(sorted(self.rejections.items())),
            "buckets": buckets,
            "quotas": {p: self.config.quotas[p].to_config()
                       for p in sorted(self.config.quotas)},
            "default_quota": (self.config.default_quota.to_config()
                              if self.config.default_quota else None),
            "overflow": self.config.overflow,
            "queue_limits": (asdict(self.config.queue_limits)
                             if self.config.queue_limits else None),
        }
